#!/usr/bin/env bash
# Byte-identity gate: every RESULTS_<experiment>.json the repro CLI
# produces at tiny scale must equal the pinned artifact in ci/pinned/
# byte for byte.
#
# The pinned files were captured before the hot-path optimization work
# (scratch arenas, FxHash maps, dense port ledgers), so this gate proves
# those changes — and any future ones — are pure performance: same
# simulated cycles, same violation counts, same speedups, same bytes.
# Regenerate the pins ONLY for a deliberate, reviewed model change:
#
#   cargo build --release --offline -p mds-bench
#   MDS_RESULTS_DIR=ci/pinned target/release/repro --scale tiny --json all
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> building the repro CLI"
cargo build --release --offline -p mds-bench

fresh_dir=$(mktemp -d)
trap 'rm -rf "$fresh_dir"' EXIT

echo "==> running repro all at tiny scale"
MDS_RESULTS_DIR="$fresh_dir" target/release/repro --scale tiny --json all >/dev/null

status=0
for pinned in ci/pinned/RESULTS_*.json; do
  fresh="$fresh_dir/$(basename "$pinned")"
  if cmp -s "$pinned" "$fresh"; then
    echo "  identical: $(basename "$pinned")"
  else
    echo "  DIFFERS:   $(basename "$pinned")" >&2
    cmp "$pinned" "$fresh" >&2 || true
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "identity gate: FAIL — simulator output drifted from the pinned artifacts" >&2
  exit 1
fi
echo "identity gate: OK ($(ls ci/pinned/RESULTS_*.json | wc -l) documents byte-identical)"
