#!/usr/bin/env bash
# Byte-identity gate: every RESULTS_<experiment>.json the repro CLI
# produces at tiny scale must equal the pinned artifact in ci/pinned/
# byte for byte, and the small-scale fig5 document must equal its pin in
# ci/pinned/small/. The second scale exists because tiny traces fork at
# task 0-2 and exercise little of the cross-policy replay engine; the
# small fig5 run covers real fork points and long post-fork tails.
#
# The pinned files were captured before the hot-path optimization work
# (scratch arenas, FxHash maps, dense port ledgers, the planned replay
# engine), so this gate proves those changes — and any future ones — are
# pure performance: same simulated cycles, same violation counts, same
# speedups, same bytes.
# Regenerate the pins ONLY for a deliberate, reviewed model change:
#
#   cargo build --release --offline -p mds-bench
#   MDS_RESULTS_DIR=ci/pinned target/release/repro --scale tiny --json all
#   MDS_RESULTS_DIR=ci/pinned/small target/release/repro --scale small --json fig5
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> building the repro CLI"
cargo build --release --offline -p mds-bench

fresh_dir=$(mktemp -d)
trap 'rm -rf "$fresh_dir"' EXIT
mkdir -p "$fresh_dir/small"

echo "==> running repro all at tiny scale"
MDS_RESULTS_DIR="$fresh_dir" target/release/repro --scale tiny --json all >/dev/null

echo "==> running repro fig5 at small scale"
MDS_RESULTS_DIR="$fresh_dir/small" target/release/repro --scale small --json fig5 >/dev/null

status=0
check() {
  local pinned="$1" fresh="$2" label="$3"
  if cmp -s "$pinned" "$fresh"; then
    echo "  identical: $label"
  else
    echo "  DIFFERS:   $label" >&2
    cmp "$pinned" "$fresh" >&2 || true
    status=1
  fi
}

for pinned in ci/pinned/RESULTS_*.json; do
  check "$pinned" "$fresh_dir/$(basename "$pinned")" "$(basename "$pinned")"
done
for pinned in ci/pinned/small/RESULTS_*.json; do
  check "$pinned" "$fresh_dir/small/$(basename "$pinned")" "small/$(basename "$pinned")"
done

if [ "$status" -ne 0 ]; then
  echo "identity gate: FAIL — simulator output drifted from the pinned artifacts" >&2
  exit 1
fi
total=$(ls ci/pinned/RESULTS_*.json ci/pinned/small/RESULTS_*.json | wc -l)
echo "identity gate: OK ($total documents byte-identical)"
