#!/usr/bin/env bash
# Durability gate: warm state must survive kill -9.
#
# Part 1 (single server): serve with --store, warm a key, kill -9 the
# process, restart over the same directory, and assert the very first
# request is a result-cache hit with bytes identical to the repro CLI's
# RESULTS_fig5.json — no recompute, no emulation.
#
# Part 2 (cluster): front two stored backends with the gateway, warm a
# key, kill -9 whichever backend owns it, let the prober eject it, then
# restart a replacement on the same port with an EMPTY store: the
# gateway's neighbor handoff must push the warm entry into it, so the
# replacement answers identical bytes without recomputing anything.
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

body='{"experiment":"fig5","scale":"tiny"}'

wait_http() { # url [tries]
  local url=$1 tries=${2:-100}
  for _ in $(seq "$tries"); do
    curl -fsS "$url" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "error: $url never answered" >&2
  return 1
}

metric() { # addr family -> value (empty when absent)
  curl -fsS "http://$1/metrics" | awk -v f="$2" '$1 == f { print $2 }'
}

start_serve() { # addr store logfile — appends the pid to pids
  target/release/mds-serve --addr "$1" --workers 2 --jobs 2 \
    --store "$2" 2>>"$3" &
  pids+=("$!")
}

# The freed port can linger briefly after a kill, so give a restart a
# few bind attempts before declaring failure.
restart_serve() { # addr store logfile
  local attempt
  for attempt in 1 2 3; do
    target/release/mds-serve --addr "$1" --workers 2 --jobs 2 \
      --store "$2" 2>>"$3" &
    local pid=$!
    if wait_http "http://$1/healthz" 50; then
      pids+=("$pid")
      return 0
    fi
    kill -9 "$pid" 2>/dev/null || true
  done
  echo "error: could not restart a server on $1" >&2
  return 1
}

echo "==> building the server, the gateway, and the repro CLI"
cargo build --release --offline -p mds-serve -p mds-cluster -p mds-bench --bins

echo "==> canonical bytes from the repro CLI"
MDS_RESULTS_DIR="$work" target/release/repro fig5 --scale tiny --json >/dev/null

echo "==> lifetime 1: serve with --store, warm the key"
start_serve 127.0.0.1:7893 "$work/store" "$work/serve1.log"
serve_pid=${pids[-1]}
wait_http http://127.0.0.1:7893/healthz
curl -fsS -X POST --data "$body" -o "$work/first.json" \
  http://127.0.0.1:7893/v1/experiments
cmp "$work/RESULTS_fig5.json" "$work/first.json"

echo "==> kill -9, restart over the same store"
kill -9 "$serve_pid"
wait "$serve_pid" 2>/dev/null || true
restart_serve 127.0.0.1:7893 "$work/store" "$work/serve2.log"

echo "==> the first request after the restart is a byte-identical cache hit"
[ "$(metric 127.0.0.1:7893 mds_store_prewarmed_keys)" = 1 ]
curl -fsS -X POST --data "$body" -o "$work/warm.json" \
  http://127.0.0.1:7893/v1/experiments
cmp "$work/RESULTS_fig5.json" "$work/warm.json"
grep -q '"cache":"hit"' "$work/serve2.log"
! grep -q '"cache":"miss"' "$work/serve2.log"
[ "$(metric 127.0.0.1:7893 mds_trace_cache_misses_total)" = 0 ]
curl -fsS -X POST http://127.0.0.1:7893/v1/shutdown >/dev/null

echo "==> cluster: two stored backends behind the gateway"
start_serve 127.0.0.1:7894 "$work/a" "$work/backend_a.log"
start_serve 127.0.0.1:7895 "$work/b" "$work/backend_b.log"
wait_http http://127.0.0.1:7894/healthz
wait_http http://127.0.0.1:7895/healthz
target/release/mds-cluster --addr 127.0.0.1:7896 \
  --backend 127.0.0.1:7894 --backend 127.0.0.1:7895 \
  --probe-ms 100 2>"$work/gateway.log" &
pids+=("$!")
wait_http http://127.0.0.1:7896/readyz

echo "==> warm the key through the gateway, find its owner"
curl -fsS -X POST --data "$body" -o "$work/cluster_first.json" \
  http://127.0.0.1:7896/v1/experiments
cmp "$work/RESULTS_fig5.json" "$work/cluster_first.json"
if [ "$(metric 127.0.0.1:7894 mds_result_cache_entries)" = 1 ]; then
  owner=127.0.0.1:7894
else
  [ "$(metric 127.0.0.1:7895 mds_result_cache_entries)" = 1 ]
  owner=127.0.0.1:7895
fi
echo "    owner: $owner"

echo "==> kill -9 the owner; failover warms the survivor (the donor)"
pkill -9 -f "mds-serve --addr $owner" || true
curl -fsS -X POST --data "$body" -o "$work/failover.json" \
  http://127.0.0.1:7896/v1/experiments
cmp "$work/RESULTS_fig5.json" "$work/failover.json"
for _ in $(seq 100); do
  [ "$(metric 127.0.0.1:7896 "mds_gateway_backend_healthy{backend=\"$owner\"}")" = 0 ] && break
  sleep 0.1
done
[ "$(metric 127.0.0.1:7896 "mds_gateway_backend_healthy{backend=\"$owner\"}")" = 0 ]

echo "==> replacement on the same port with an EMPTY store"
restart_serve "$owner" "$work/replacement" "$work/replacement.log"
[ "$(metric "$owner" mds_store_prewarmed_keys)" = 0 ]

echo "==> the neighbor handoff warms the replacement without recompute"
for _ in $(seq 100); do
  [ "$(metric "$owner" mds_result_cache_entries)" = 1 ] && break
  sleep 0.1
done
[ "$(metric "$owner" mds_result_cache_entries)" = 1 ]
[ "$(metric "$owner" mds_trace_cache_misses_total)" = 0 ]
[ "$(metric 127.0.0.1:7896 mds_gateway_handoffs_total)" = 1 ]
curl -fsS -X POST --data "$body" -o "$work/handoff.json" "http://$owner/v1/experiments"
cmp "$work/RESULTS_fig5.json" "$work/handoff.json"
[ "$(metric "$owner" mds_trace_cache_misses_total)" = 0 ]

curl -fsS -X POST http://127.0.0.1:7896/v1/shutdown >/dev/null || true
curl -fsS -X POST http://127.0.0.1:7894/v1/shutdown >/dev/null || true
curl -fsS -X POST http://127.0.0.1:7895/v1/shutdown >/dev/null || true

echo "store gate: OK"
