#!/usr/bin/env bash
# WDL determinism gate: generated workloads are part of the repo's
# byte-identity contract. `repro --wdl <spec> --json` must produce
# byte-identical stdout and RESULTS_wdl.json across repeated runs and
# across worker counts (the `(spec, seed, scale)` identity promise in
# DESIGN.md §13), spec tooling must accept the checked-in examples, and
# malformed specs must be rejected with positioned diagnostics.
set -euo pipefail

cd "$(dirname "$0")/.."

run_a=$(mktemp -d)
run_b=$(mktemp -d)
trap 'rm -rf "$run_a" "$run_b"' EXIT

specs=(examples/compress_like.wdl examples/fpppp_like.wdl examples/swim_like.wdl)
wdl_flags=()
for s in "${specs[@]}"; do wdl_flags+=(--wdl "$s"); done

echo "==> building the repro CLI"
cargo build --release --offline -p mds-bench --bin repro

echo "==> validating the checked-in example specs"
target/release/repro wdl check "${specs[@]}"

echo "==> expansion is deterministic"
target/release/repro wdl expand "${specs[@]}" > "$run_a/expand.txt"
target/release/repro wdl expand "${specs[@]}" > "$run_b/expand.txt"
cmp "$run_a/expand.txt" "$run_b/expand.txt"

echo "==> run 1: serial (--jobs 1)"
MDS_RESULTS_DIR="$run_a" target/release/repro "${wdl_flags[@]}" \
  --scale tiny --jobs 1 --json > "$run_a/stdout.txt"

echo "==> run 2: parallel (--jobs 4)"
MDS_RESULTS_DIR="$run_b" target/release/repro "${wdl_flags[@]}" \
  --scale tiny --jobs 4 --json > "$run_b/stdout.txt"

echo "==> comparing stdout and RESULTS_wdl.json byte for byte"
cmp "$run_a/stdout.txt" "$run_b/stdout.txt"
cmp "$run_a/RESULTS_wdl.json" "$run_b/RESULTS_wdl.json"

echo "==> run 3: repeated parallel run is byte-identical too"
MDS_RESULTS_DIR="$run_b" target/release/repro "${wdl_flags[@]}" \
  --scale tiny --jobs 4 --json > "$run_b/stdout2.txt"
cmp "$run_a/stdout.txt" "$run_b/stdout2.txt"

echo "==> malformed specs are rejected with positioned diagnostics"
printf 'scenario bad { edges = 99 }\n' > "$run_a/bad.wdl"
if target/release/repro --wdl "$run_a/bad.wdl" --scale tiny >/dev/null 2>"$run_a/err.txt"; then
  echo "error: invalid spec was accepted" >&2
  exit 1
fi
grep -q 'bad.wdl:1:16: bad.edges' "$run_a/err.txt"

echo "wdl gate: OK"
