#!/usr/bin/env bash
# Grid gate: scatter-gather `POST /v1/grids` over real processes.
#
# Two claims, both against release binaries on real sockets:
#
# 1. Byte identity. The gateway's grid response — cells scattered across
#    both backends and merged from out-of-order partials — must be
#    `cmp`-identical to a lone backend answering the same grid AND to
#    the concatenation of the repro CLI's per-experiment RESULTS
#    documents. One merge contract, three independent producers.
#
# 2. Loss tolerance. `kill -9` of a backend in the middle of a sequence
#    of fresh (recomputing) grid requests must be invisible to clients:
#    every request answers 200 with byte-identical output, zero errors —
#    in-flight cells fail over to the surviving backend or are computed
#    locally by the gateway's merger.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> building the gateway, the server, and the repro CLI"
cargo build --release --offline -p mds-cluster -p mds-serve -p mds-bench

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]}"; do kill -9 "$pid" >/dev/null 2>&1 || true; done
  rm -rf "$work"
}
trap cleanup EXIT

b1=127.0.0.1:7981
b2=127.0.0.1:7982
gw=127.0.0.1:7990

echo "==> starting two backends and the gateway"
target/release/mds-serve --addr "$b1" --workers 4 --quiet &
pids+=($!)
target/release/mds-serve --addr "$b2" --workers 4 --quiet &
b2_pid=$!
pids+=("$b2_pid")
target/release/mds-cluster --addr "$gw" \
  --backend "$b1" --backend "$b2" --quiet &
pids+=($!)
for _ in $(seq 1 50); do
  curl -fsS "http://$gw/readyz" >/dev/null 2>&1 && break
  sleep 0.2
done
curl -fsS "http://$gw/readyz" >/dev/null

echo "==> reference documents from the repro CLI"
MDS_RESULTS_DIR="$work" target/release/repro --scale tiny --json fig5 table1 >/dev/null
cat "$work/RESULTS_fig5.json" "$work/RESULTS_table1.json" >"$work/expected_grid.json"

body='{"experiments":["fig5","table1"],"scale":"tiny"}'
curl -fsS -X POST --data "$body" -o "$work/gateway_grid.json" "http://$gw/v1/grids"
curl -fsS -X POST --data "$body" -o "$work/backend_grid.json" "http://$b1/v1/grids"

echo "==> gateway grid vs lone backend vs repro CLI (byte identity)"
cmp "$work/expected_grid.json" "$work/gateway_grid.json"
cmp "$work/gateway_grid.json" "$work/backend_grid.json"
echo "  identical: gateway == lone backend == repro CLI concatenation"

echo "==> grid metrics counted the scatter"
curl -fsS "http://$gw/metrics" >"$work/metrics.txt"
grep -q '^mds_gateway_grids_total' "$work/metrics.txt"
grep -q '^mds_gateway_grid_cells_total' "$work/metrics.txt"

echo "==> kill -9 one backend mid-grid: every response whole, zero errors"
# `fresh` keeps the backends recomputing so the kill lands while cells
# are genuinely in flight; `curl -f` makes any non-2xx fail the loop.
fresh='{"experiments":["fig5","table1"],"scale":"tiny","fresh":true}'
runs=6
(
  for i in $(seq 1 "$runs"); do
    curl -fsS -X POST --data "$fresh" -o "$work/grid_$i.json" "http://$gw/v1/grids"
  done
) &
loop_pid=$!
sleep 0.2
kill -9 "$b2_pid"
wait "$loop_pid"
for i in $(seq 1 "$runs"); do
  cmp "$work/expected_grid.json" "$work/grid_$i.json"
done
echo "  identical: $runs grid responses across the kill, 0 client errors"

echo "grid gate: OK"
