#!/usr/bin/env bash
# I/O-core gate: the event-driven (epoll) engine and the legacy threaded
# engine must be interchangeable transports for the same computation.
#
# Per engine (mds-serve --io epoll / --io threads):
#   1. The served fig5 document is byte-identical to what the repro CLI
#      writes — cmp, not a status-code smoke.
#   2. A closed-loop soak (4 clients) completes with zero errors and a
#      nonzero request count.
#
# Epoll only: the soak runs with 1000 idle keep-alive connections parked
# for its whole duration. While the fleet sits there the reactor's
# registered-fd gauge must reflect it and liveness must still answer —
# carrying quiet connections for free is the point of the reactor. The
# threaded engine is exempt because it holds one worker per connection:
# a parked fleet starving the pool is exactly the wall being removed.
#
# Knobs: MDS_IO_GATE_SECONDS (soak length, default 4),
# MDS_IO_GATE_IDLE (fleet size, default 1000).
set -euo pipefail

cd "$(dirname "$0")/.."

work=$(mktemp -d)
pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

body='{"experiment":"fig5","scale":"tiny"}'
seconds=${MDS_IO_GATE_SECONDS:-4}
fleet=${MDS_IO_GATE_IDLE:-1000}

wait_http() { # url [tries]
  local url=$1 tries=${2:-100}
  for _ in $(seq "$tries"); do
    curl -fsS "$url" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "error: $url never answered" >&2
  return 1
}

metric() { # addr family -> value (empty when absent)
  curl -fsS "http://$1/metrics" | awk -v f="$2" '$1 == f { print $2 }'
}

echo "==> building the server, the load generator, and the repro CLI"
cargo build --release --offline -p mds-serve -p mds-bench --bins

echo "==> canonical bytes from the repro CLI"
MDS_RESULTS_DIR="$work" target/release/repro fig5 --scale tiny --json >/dev/null

port=7897
for io in epoll threads; do
  addr=127.0.0.1:$port
  port=$((port + 1))

  echo "==> [$io] start the server on $addr"
  target/release/mds-serve --addr "$addr" --io "$io" --workers 4 --jobs 2 \
    2>"$work/serve_$io.log" &
  pids+=("$!")
  wait_http "http://$addr/healthz"

  echo "==> [$io] served fig5 is byte-identical to the repro CLI document"
  curl -fsS -X POST --data "$body" -o "$work/served_$io.json" \
    "http://$addr/v1/experiments"
  cmp "$work/RESULTS_fig5.json" "$work/served_$io.json"

  idle=0
  if [ "$io" = epoll ]; then
    idle=$fleet
  fi
  echo "==> [$io] closed-loop soak (${seconds}s, 4 clients, $idle idlers)"
  target/release/mds-load --addr "$addr" --clients 4 --seconds "$seconds" \
    --experiment fig5 --scale tiny --idle "$idle" --json \
    >"$work/load_$io.json" &
  load_pid=$!

  if [ "$io" = epoll ]; then
    parked=0
    for _ in $(seq 150); do
      fds=$(metric "$addr" mds_io_registered_fds)
      if [ "${fds:-0}" -ge "$idle" ]; then
        parked=1
        break
      fi
      sleep 0.1
    done
    if [ "$parked" != 1 ]; then
      echo "error: the idle fleet never showed up in mds_io_registered_fds" >&2
      exit 1
    fi
    # Liveness answers promptly while the fleet is parked.
    curl -fsS --max-time 2 "http://$addr/healthz" >/dev/null
  fi

  wait "$load_pid"
  cat "$work/load_$io.json"
  grep -q '"errors": 0' "$work/load_$io.json"
  requests=$(sed -n 's/.*"requests": \([0-9]*\).*/\1/p' "$work/load_$io.json" | head -n1)
  test "$requests" -gt 0
  if [ "$io" = epoll ]; then
    grep -q "\"idle\": $idle" "$work/load_$io.json"
  fi

  echo "==> [$io] graceful shutdown"
  curl -fsS -X POST "http://$addr/v1/shutdown" >/dev/null
  for _ in $(seq 50); do
    curl -fsS --max-time 1 "http://$addr/healthz" >/dev/null 2>&1 || break
    sleep 0.1
  done
done

echo "io gate: OK (both engines byte-identical, soaks error-free)"
