#!/usr/bin/env bash
# Tier-1 verification gate (see ROADMAP.md).
#
# The workspace is dependency-free by design, so everything here runs with
# --offline: a clean checkout must build and test with no registry access.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline"
cargo test -q --offline

echo "==> generative property smoke (policy orderings over sampled WDL scenarios)"
cargo test -q --offline -p mds-wdl --test policy_props

echo "tier-1 gate: OK"
