#!/usr/bin/env bash
# Bench-regression gate: measure the simulators suite fresh and compare
# it against the committed BENCH_simulators.json baseline.
#
# The comparison (see crates/bench/src/bin/bench_gate.rs) normalizes by
# the suite's median fresh/baseline ratio, so a uniformly slower CI
# runner passes while a single benchmark regressing relative to its
# peers fails. MDS_BENCH_TOLERANCE (default 1.6) sets the headroom.
#
# Knobs for faster CI runs: the harness honors MDS_BENCH_WARMUP_MS,
# MDS_BENCH_BATCH_MS, MDS_BENCH_BATCHES, MDS_BENCH_MAX_MS.
set -euo pipefail

cd "$(dirname "$0")/.."

fresh_dir=$(mktemp -d)
trap 'rm -rf "$fresh_dir"' EXIT

echo "==> building the bench suite and the gate"
cargo build --release --offline -p mds-bench --benches --bins

echo "==> measuring the simulators suite (small scale)"
MDS_BENCH_DIR="$fresh_dir" cargo bench -q --offline -p mds-bench \
  --bench simulators -- --scale small

echo "==> comparing against the committed baseline"
target/release/bench_gate BENCH_simulators.json "$fresh_dir/BENCH_simulators.json"
