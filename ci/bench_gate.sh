#!/usr/bin/env bash
# Bench-regression gate: measure the simulators, replay, wdl, serve, and
# cluster suites fresh and compare them against the committed
# BENCH_simulators.json / BENCH_replay.json / BENCH_wdl.json /
# BENCH_serve.json / BENCH_cluster.json baselines. Two suites additionally
# carry absolute, machine-independent claims checked within the fresh
# report: one fused cross-policy replay must stay >= 2x faster than six
# scratch replays, and restart-warm serving (cache prewarmed from the
# durable store) must stay within 10x of steady-warm serving.
#
# The comparison (see crates/bench/src/bin/bench_gate.rs) normalizes by
# the suite's median fresh/baseline ratio, so a uniformly slower CI
# runner passes while a single benchmark regressing relative to its
# peers fails. MDS_BENCH_TOLERANCE (default 1.6) sets the headroom.
#
# Knobs for faster CI runs: the harness honors MDS_BENCH_WARMUP_MS,
# MDS_BENCH_BATCH_MS, MDS_BENCH_BATCHES, MDS_BENCH_MAX_MS.
set -euo pipefail

cd "$(dirname "$0")/.."

fresh_dir=$(mktemp -d)
trap 'rm -rf "$fresh_dir"' EXIT

echo "==> building the bench suite and the gate"
cargo build --release --offline -p mds-bench --benches --bins

echo "==> measuring the simulators suite (small scale)"
MDS_BENCH_DIR="$fresh_dir" cargo bench -q --offline -p mds-bench \
  --bench simulators -- --scale small

echo "==> comparing against the committed baseline"
target/release/bench_gate BENCH_simulators.json "$fresh_dir/BENCH_simulators.json"

# The replay suite's headline benchmarks run ~0.5s per iteration; give
# the harness a longer wall-clock guard so each one collects its full 25
# batches — the speedup check below compares fastest-batch times, and a
# deep batch pool is what makes those robust on a noisy runner.
echo "==> measuring the replay suite (small scale)"
MDS_BENCH_DIR="$fresh_dir" \
MDS_BENCH_MAX_MS="${MDS_REPLAY_BENCH_MAX_MS:-12000}" \
  cargo bench -q --offline -p mds-bench --bench replay -- --scale small

echo "==> comparing the replay suite against its committed baseline"
target/release/bench_gate BENCH_replay.json "$fresh_dir/BENCH_replay.json"

echo "==> checking the fork-replay speedup claim (fused >= 2x six scratch walks)"
target/release/bench_gate --min-speedup "$fresh_dir/BENCH_replay.json" \
  multiscalar/compress_small_8st_scratch_x6 \
  multiscalar/compress_small_8st_fused_x6 \
  2.0

echo "==> measuring the wdl suite (spec parse, lowering, generated end-to-end)"
MDS_BENCH_DIR="$fresh_dir" cargo bench -q --offline -p mds-bench \
  --bench wdl -- --scale small

echo "==> comparing the wdl suite against its committed baseline"
target/release/bench_gate BENCH_wdl.json "$fresh_dir/BENCH_wdl.json"

echo "==> measuring the serve suite (cold / warm / restart-warm)"
cargo build --release --offline -p mds-serve --benches
MDS_BENCH_DIR="$fresh_dir" \
MDS_SERVE_BENCH_SECONDS="${MDS_SERVE_BENCH_SECONDS:-0.5}" \
  cargo bench -q --offline -p mds-serve --bench serve

# Serve medians are end-to-end request latencies over real sockets, so
# the headroom matches the cluster suite's.
echo "==> comparing the serve suite against its committed baseline"
MDS_BENCH_TOLERANCE="${MDS_SERVE_BENCH_TOLERANCE:-4.0}" \
  target/release/bench_gate BENCH_serve.json "$fresh_dir/BENCH_serve.json"

echo "==> checking the restart-warm claim (store-prewarmed within 10x of steady-warm)"
target/release/bench_gate --max-ratio "$fresh_dir/BENCH_serve.json" \
  serve/restart_warm/1c serve/warm/1c 10.0

echo "==> measuring the cluster suite (gateway over a local fleet)"
cargo build --release --offline -p mds-cluster --benches
MDS_BENCH_DIR="$fresh_dir" \
MDS_CLUSTER_BENCH_SECONDS="${MDS_CLUSTER_BENCH_SECONDS:-0.5}" \
  cargo bench -q --offline -p mds-cluster --bench cluster

# The cluster medians are end-to-end request latencies over real
# sockets, so the headroom is wider than the in-process suites need:
# scheduler jitter on a shared CI runner easily doubles a p50.
echo "==> comparing the cluster suite against its committed baseline"
MDS_BENCH_TOLERANCE="${MDS_CLUSTER_BENCH_TOLERANCE:-4.0}" \
  target/release/bench_gate BENCH_cluster.json "$fresh_dir/BENCH_cluster.json"

# The scatter-gather claim — one cold fig5 grid at 4 backends is >= 1.7x
# faster than at 1 backend — is a parallel-speedup claim: each backend
# runs a single simulation thread, and the gateway's balanced placement
# caps every backend at ceil(5/4) = 2 of fig5's 5 workload shards, so
# the fleet's emulation phase needs real cores to spread onto (the
# structural bound is 5/2 = 2.5x). On hosts with fewer than 4 cores the
# backends timeshare and the ratio is ~1.0 by construction, so the check
# only runs where the claim is measurable.
if [ "$(nproc)" -ge 4 ]; then
  echo "==> checking the cold-grid scale-out claim (4 backends >= 1.7x 1 backend)"
  target/release/bench_gate --min-speedup "$fresh_dir/BENCH_cluster.json" \
    gateway/grid_cold/1b gateway/grid_cold/4b 1.7
else
  echo "==> skipping the cold-grid scale-out claim ($(nproc) core(s) < 4)"
fi
