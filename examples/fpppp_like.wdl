# An fpppp-like phenotype: large floating-point tasks and *many* static
# dependence edges at dense short distances, sized to overflow a small
# MDPT (24 edges vs the 16-entry low end of the capacity ablation).
# Blind speculation squashes persistently; prediction needs capacity.
scenario fpppp_like {
  seed = 77
  tasks = 1024 .. 2048
  task_size = { medium: 0.2, large: 0.8 }
  distances = { 1: 0.25, 2: 0.25, 3: 0.25 }
  edges = 24
  locality = 0.90
  fp = 0.8
  expect_misspec_per_load = 0.0 .. 0.25
}
