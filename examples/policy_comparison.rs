//! Compare all six data dependence speculation policies on one workload —
//! a miniature of the paper's figures 5 and 6.
//!
//! ```sh
//! cargo run --release --example policy_comparison -- [workload] [stages]
//! cargo run --release --example policy_comparison -- espresso 8
//! ```

use mds::core::Policy;
use mds::multiscalar::{MsConfig, Multiscalar};
use mds::sim::table::Table;
use mds::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "espresso".to_string());
    let stages: usize = args.next().map(|s| s.parse()).transpose()?.unwrap_or(4);

    let workload = by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}` — see mds::workloads::all()"))?;
    println!("workload : {} — {}", workload.name, workload.description);
    println!("phenotype: {}", workload.phenotype);
    println!("machine  : {stages}-stage Multiscalar\n");

    let program = workload.build(Scale::Tiny);
    let baseline = Multiscalar::new(MsConfig::paper(stages, Policy::Never)).run(&program)?;

    let mut table = Table::new([
        "policy",
        "cycles",
        "IPC",
        "speedup vs NEVER (%)",
        "mis-speculations",
        "synchronized loads",
    ]);
    for policy in Policy::ALL {
        let r = Multiscalar::new(MsConfig::paper(stages, policy)).run(&program)?;
        table.row([
            policy.to_string(),
            r.cycles.to_string(),
            format!("{:.2}", r.ipc()),
            format!("{:+.1}", r.speedup_over(&baseline)),
            r.misspeculations.to_string(),
            r.synchronized_loads.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "Read it as the paper's figures 5/6: ALWAYS beats NEVER, PSYNC is the\n\
         oracle ceiling, and SYNC/ESYNC are the realizable mechanism."
    );
    Ok(())
}
