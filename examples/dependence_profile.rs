//! Profile a workload's dynamic memory dependence behavior under the
//! paper's "unrealistic OOO" model — a miniature of tables 3, 4, and 5.
//!
//! ```sh
//! cargo run --release --example dependence_profile -- [workload]
//! cargo run --release --example dependence_profile -- gcc
//! ```

use mds::emu::Emulator;
use mds::ooo::{WindowAnalyzer, WindowConfig};
use mds::sim::table::{fmt_count, Table};
use mds::workloads::{by_name, Scale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc".to_string());
    let workload = by_name(&name)
        .ok_or_else(|| format!("unknown workload `{name}` — see mds::workloads::all()"))?;

    println!("workload : {} — {}", workload.name, workload.description);
    let program = workload.build(Scale::Small);

    let mut analyzer = WindowAnalyzer::new(WindowConfig::default());
    Emulator::new(&program).run_with(|d| analyzer.observe(d))?;
    let report = analyzer.finish();

    println!(
        "trace    : {} instructions, {} loads, {} stores\n",
        fmt_count(report.instructions),
        fmt_count(report.loads),
        fmt_count(report.stores)
    );

    let mut table = Table::new([
        "window",
        "mis-speculations",
        "static edges",
        "edges for 99.9%",
        "DDC-32 miss %",
        "DDC-512 miss %",
    ]);
    for w in report.windows() {
        table.row([
            w.window_size.to_string(),
            fmt_count(w.misspeculations),
            w.static_edges().to_string(),
            w.edges_covering(0.999).to_string(),
            w.ddc_miss_rate(32)
                .map(|p| p.to_string())
                .unwrap_or_default(),
            w.ddc_miss_rate(512)
                .map(|p| p.to_string())
                .unwrap_or_default(),
        ]);
    }
    println!("{table}");

    let d = &report.dependence_distances;
    println!(
        "store->load distances: {} dependent loads, mean {:.0} instructions, max {}",
        fmt_count(d.count()),
        d.mean(),
        fmt_count(d.max())
    );
    let mut dist_table = Table::new(["distance <=", "dependent loads"]);
    for (bound, count) in d.iter() {
        dist_table.row([bound.to_string(), fmt_count(count)]);
    }
    println!("{dist_table}");
    println!(
        "The paper's observation: mis-speculations grow with the window, but\n\
         few static edges cause most of them, and a small dependence cache\n\
         (DDC) captures those edges — which is what makes the MDPT practical."
    );
    Ok(())
}
