# A swim-like streaming phenotype: pure floating-point medium tasks with
# no cross-task memory dependences at all — every policy should run it
# squash-free, and synchronization must not slow it down.
scenario swim_like {
  seed = 31
  tasks = 2048
  task_size = { medium: 1.0 }
  fp = 1.0
  expect_misspec_per_load = 0.0 .. 0.0
}
