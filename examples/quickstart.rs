//! Quickstart: build a tiny program, watch blind speculation mis-speculate
//! on its memory recurrence, and watch the paper's prediction +
//! synchronization mechanism fix it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use mds::core::Policy;
use mds::emu::Emulator;
use mds::isa::{ProgramBuilder, Reg};
use mds::multiscalar::{MsConfig, Multiscalar};
use mds::ooo::{WindowAnalyzer, WindowConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop whose iterations are Multiscalar tasks. Each task loads a
    // counter the *previous* task stored — a true memory dependence that
    // blind speculation will violate whenever the tasks overlap.
    let mut b = ProgramBuilder::new();
    b.alloc("counter", 1);
    b.alloc("scratch", 64);
    b.la(Reg::S0, "counter");
    b.la(Reg::S1, "scratch");
    b.li(Reg::T0, 2000); // iterations
    b.label("loop");
    b.task();
    b.ld(Reg::T1, Reg::S0, 0); // depends on the previous task's store
    b.addi(Reg::T1, Reg::T1, 1);
    b.mul(Reg::T2, Reg::T1, Reg::T1); // some work before the store
    b.sd(Reg::T2, Reg::S1, 0);
    b.sd(Reg::T1, Reg::S0, 0); // the recurrence store
    b.addi(Reg::T0, Reg::T0, -1);
    b.bne(Reg::T0, Reg::ZERO, "loop");
    b.halt();
    let program = b.build()?;

    // 1. Functional execution: the committed instruction stream.
    let summary = Emulator::new(&program).run_with(|_| {})?;
    println!(
        "functional run : {} instructions, {} tasks",
        summary.instructions, summary.tasks
    );

    // 2. The paper's "unrealistic OOO" question: how many loads have a
    //    producing store within an n-instruction window?
    let mut analyzer = WindowAnalyzer::new(WindowConfig::default());
    Emulator::new(&program).run_with(|d| analyzer.observe(d))?;
    let report = analyzer.finish();
    for ws in [8u32, 32, 128] {
        let w = report.for_window(ws).expect("configured");
        println!(
            "window {ws:>4}   : {} potential mis-speculations across {} static edges",
            w.misspeculations,
            w.static_edges()
        );
    }

    // 3. Timing: blind speculation vs the MDPT/MDST mechanism on a
    //    4-stage Multiscalar processor.
    for policy in [Policy::Never, Policy::Always, Policy::Esync, Policy::PSync] {
        let r = Multiscalar::new(MsConfig::paper(4, policy)).run(&program)?;
        println!(
            "{policy:<6}        : {:>8} cycles  ipc {:.2}  mis-speculations {}",
            r.cycles,
            r.ipc(),
            r.misspeculations
        );
    }
    println!(
        "\nBlind speculation (ALWAYS) squashes on every iteration of this\n\
         recurrence; the predictor+synchronization mechanism (ESYNC) removes\n\
         the squashes and lands within a few percent of the PSYNC oracle."
    );
    Ok(())
}
