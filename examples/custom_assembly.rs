//! Author a program in assembly text, run it through the whole stack —
//! assembler → emulator → dependence analysis → Multiscalar timing.
//!
//! ```sh
//! cargo run --release --example custom_assembly              # built-in demo
//! cargo run --release --example custom_assembly -- prog.asm  # your own file
//! ```

use mds::core::Policy;
use mds::emu::Emulator;
use mds::isa::asm::assemble;
use mds::multiscalar::{MsConfig, Multiscalar};

/// A bank-account ledger: most tasks post to different accounts, but every
/// other task updates the shared audit total — a classic hot dependence.
/// The audit read happens early in the task and the write at the end, so
/// blind speculation on an 8-stage machine violates it repeatedly.
const DEMO: &str = "
    .data accounts 64
    .data audit 1
    li   s0, %accounts
    li   s1, %audit
    li   t0, 600        # transactions
    li   s5, 2147480    # hash multiplier
task:
    .task
    andi t3, t0, 1
    bne  t3, zero, post
    ld   t4, 0(s1)      # audit total: the hot load, read early
post:
    mul  t1, t0, s5     # pseudo-random account index
    srli t2, t1, 9
    xor  t1, t1, t2
    andi t1, t1, 63
    slli t1, t1, 3
    add  t1, s0, t1
    ld   t2, 0(t1)      # account balance (usually independent)
    addi t2, t2, 10
    sd   t2, 0(t1)
    bne  t3, zero, skip
    add  t4, t4, t2
    sd   t4, 0(s1)      # audit total: published late
skip:
    addi t0, t0, -1
    bne  t0, zero, task
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };
    let program = assemble(&source)?;
    println!(
        "assembled {} instructions, {} task heads",
        program.len(),
        program.task_head_count()
    );

    // Round-trip sanity: disassembly reassembles to the same program.
    let round = assemble(&program.disassemble())?;
    assert_eq!(program.instructions(), round.instructions());

    let summary = Emulator::new(&program).run_with(|_| {})?;
    println!(
        "executed {} instructions over {} dynamic tasks",
        summary.instructions, summary.tasks
    );

    for policy in [Policy::Always, Policy::Esync, Policy::PSync] {
        let r = Multiscalar::new(MsConfig::paper(8, policy)).run(&program)?;
        println!(
            "{policy:<6}: {:>7} cycles  ipc {:.2}  mis-speculations {:>4}",
            r.cycles,
            r.ipc(),
            r.misspeculations
        );
    }
    Ok(())
}
