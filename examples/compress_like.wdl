# A compress-like dependence phenotype (cf. the hand-written `compress`
# workload): a couple of hot static edges, a mix of short dependence
# distances that keeps producer/consumer pairs co-resident in the stage
# ring, strong address locality, and some path-dependent consumer PCs.
# ALWAYS mis-speculates on the short distances; SYNC/ESYNC learn the two
# edges quickly and PSYNC removes the squashes entirely.
scenario compress_like {
  seed = 12
  tasks = 2048 .. 4096
  task_size = { small: 0.6, medium: 0.3, large: 0.1 }
  distances = { 1: 0.04, 3: 0.04, 8: 0.04 }
  edges = 2
  locality = 0.95
  path_dep = 0.25
  expect_misspec_per_load = 0.0 .. 0.10
}
