//! ESYNC's path refinement only has signal when different task types
//! exist; the go-like workload (three task types chosen by data) is the
//! suite's test bed for it.

use mds::core::Policy;
use mds::multiscalar::{MsConfig, Multiscalar};
use mds::workloads::{by_name, Scale};

#[test]
fn esync_filter_engages_on_multi_task_type_workloads() {
    let program = by_name("go").unwrap().build(Scale::Tiny);
    let sync = Multiscalar::new(MsConfig::paper(8, Policy::Sync))
        .run(&program)
        .unwrap();
    let esync = Multiscalar::new(MsConfig::paper(8, Policy::Esync))
        .run(&program)
        .unwrap();
    // Both must run the same committed stream and stay in the same
    // performance neighborhood; ESYNC must never be grossly worse.
    assert_eq!(sync.instructions, esync.instructions);
    let ratio = esync.cycles as f64 / sync.cycles as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "ESYNC {} vs SYNC {} cycles",
        esync.cycles,
        sync.cycles
    );
}

#[test]
fn go_is_control_bound() {
    // The paper: go "is limited by poor control prediction". Three
    // pseudo-randomly selected task types defeat the path predictor.
    let program = by_name("go").unwrap().build(Scale::Tiny);
    let r = Multiscalar::new(MsConfig::paper(8, Policy::Always))
        .run(&program)
        .unwrap();
    assert!(
        r.control_accuracy().value() < 75.0,
        "accuracy {} should be poor",
        r.control_accuracy()
    );
    // And the dependence mechanism's headroom is accordingly small.
    let psync = Multiscalar::new(MsConfig::paper(8, Policy::PSync))
        .run(&program)
        .unwrap();
    assert!(psync.speedup_over(&r) < 30.0);
}
