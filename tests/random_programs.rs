//! Property tests over randomly generated programs: every speculation
//! policy must execute the identical committed stream, the PSYNC oracle
//! must never mis-speculate, and timing must be deterministic — for *any*
//! program, not just the curated workloads.

use mds::core::Policy;
use mds::emu::Emulator;
use mds::isa::{Program, ProgramBuilder, Reg};
use mds::multiscalar::{MsConfig, Multiscalar};
use mds_harness::prelude::*;

/// One random task-body operation.
#[derive(Debug, Clone)]
enum Op {
    /// `arr[slot] = f(arr[slot])` — a potential cross-task dependence.
    Rmw { slot: u8 },
    /// Load from a slot into the accumulator.
    Load { slot: u8 },
    /// Store the accumulator to a slot.
    Store { slot: u8 },
    /// ALU work on the accumulator.
    Alu { imm: i8 },
    /// Multiply (long latency).
    Mul,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..32).prop_map(|slot| Op::Rmw { slot }),
        (0u8..32).prop_map(|slot| Op::Load { slot }),
        (0u8..32).prop_map(|slot| Op::Store { slot }),
        any::<i8>().prop_map(|imm| Op::Alu { imm }),
        Just(Op::Mul),
    ]
}

/// Builds a terminating program: a counted loop whose body is the random
/// op sequence, each iteration a Multiscalar task.
fn build_program(ops: &[Op], iters: u8) -> Program {
    let mut b = ProgramBuilder::new();
    b.alloc("arr", 32);
    b.la(Reg::S0, "arr");
    b.li(Reg::A0, 1); // accumulator
    b.li(Reg::T0, iters as i32 + 1);
    b.label("loop");
    b.task();
    for op in ops {
        match *op {
            Op::Rmw { slot } => {
                b.ld(Reg::T1, Reg::S0, slot as i32 * 8);
                b.addi(Reg::T1, Reg::T1, 1);
                b.sd(Reg::T1, Reg::S0, slot as i32 * 8);
            }
            Op::Load { slot } => {
                b.ld(Reg::A0, Reg::S0, slot as i32 * 8);
            }
            Op::Store { slot } => {
                b.sd(Reg::A0, Reg::S0, slot as i32 * 8);
            }
            Op::Alu { imm } => {
                b.addi(Reg::A0, Reg::A0, imm as i32);
            }
            Op::Mul => {
                b.mul(Reg::A0, Reg::A0, Reg::A0);
            }
        }
    }
    b.addi(Reg::T0, Reg::T0, -1);
    b.bne(Reg::T0, Reg::ZERO, "loop");
    b.halt();
    b.build().expect("generated program builds")
}

properties! {
    #![config(PropConfig { cases: 24, ..PropConfig::default() })]

    /// Every policy commits exactly the functional instruction stream.
    #[test]
    fn all_policies_commit_the_functional_stream(
        ops in vec_of(arb_op(), 1..12),
        iters in 4u8..40,
    ) {
        let program = build_program(&ops, iters);
        let expected = Emulator::new(&program).run_with(|_| {}).unwrap().instructions;
        for policy in Policy::ALL {
            let r = Multiscalar::new(MsConfig::paper(4, policy)).run(&program).unwrap();
            prop_assert_eq!(r.instructions, expected, "{}", policy);
            prop_assert!(r.cycles > 0);
        }
    }

    /// The oracle policies never mis-speculate, on any program.
    #[test]
    fn oracles_never_misspeculate(
        ops in vec_of(arb_op(), 1..12),
        iters in 4u8..40,
    ) {
        let program = build_program(&ops, iters);
        for policy in [Policy::Never, Policy::Wait, Policy::PSync] {
            let r = Multiscalar::new(MsConfig::paper(8, policy)).run(&program).unwrap();
            prop_assert_eq!(r.misspeculations, 0, "{}", policy);
        }
    }

    /// Timing is a pure function of (program, config).
    #[test]
    fn timing_is_deterministic(
        ops in vec_of(arb_op(), 1..10),
        iters in 4u8..24,
    ) {
        let program = build_program(&ops, iters);
        let sim = Multiscalar::new(MsConfig::paper(8, Policy::Esync));
        let a = sim.run(&program).unwrap();
        let b = sim.run(&program).unwrap();
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.misspeculations, b.misspeculations);
    }

    /// The emulator's architectural result is independent of how the trace
    /// is consumed (collected vs streamed).
    #[test]
    fn collected_and_streamed_traces_agree(
        ops in vec_of(arb_op(), 1..10),
        iters in 4u8..24,
    ) {
        let program = build_program(&ops, iters);
        let collected = Emulator::new(&program).run().unwrap();
        let mut streamed = Vec::new();
        Emulator::new(&program).run_with(|d| streamed.push(*d)).unwrap();
        prop_assert_eq!(collected, streamed);
    }
}
