//! The paper's worked examples and design-issue scenarios, reproduced as
//! executable tests against the public API. Section numbers refer to the
//! ISCA 1997 paper.

use mds::core::{DepEdge, LoadDecision, Mdst, Policy, SyncUnit, SyncUnitConfig};
use mds::isa::{ProgramBuilder, Reg};
use mds::multiscalar::{MsConfig, Multiscalar};

/// §2, figure 1: ideal dependence speculation lets the independent load go
/// early and synchronizes only the dependent one; selective (WAIT) delays
/// the dependent load behind unrelated stores.
#[test]
fn figure1_selective_overdelays_dependent_loads() {
    // Two stores per task: ST_1 (the true producer, early address) and
    // ST_2 (unrelated, very late address via a divide). LD_1 in the next
    // task depends on ST_1 only.
    let mut b = ProgramBuilder::new();
    b.alloc("x", 1);
    b.alloc("unrelated", 512);
    b.la(Reg::S0, "x");
    b.la(Reg::S1, "unrelated");
    b.li(Reg::T6, 1);
    b.li(Reg::T0, 400);
    b.label("loop");
    b.task();
    b.ld(Reg::T1, Reg::S0, 0); // LD_1: depends on previous ST_1
    b.addi(Reg::T1, Reg::T1, 1);
    b.sd(Reg::T1, Reg::S0, 0); // ST_1 (early address)
    b.div(Reg::T2, Reg::T0, Reg::T6); // 12-cycle address computation
    b.andi(Reg::T2, Reg::T2, 511);
    b.slli(Reg::T2, Reg::T2, 3);
    b.add(Reg::T2, Reg::S1, Reg::T2);
    b.sd(Reg::T0, Reg::T2, 0); // ST_2 (unrelated, late address)
    b.addi(Reg::T0, Reg::T0, -1);
    b.bne(Reg::T0, Reg::ZERO, "loop");
    b.halt();
    let program = b.build().unwrap();

    let run = |p| {
        Multiscalar::new(MsConfig::paper(4, p))
            .run(&program)
            .unwrap()
    };
    let wait = run(Policy::Wait);
    let psync = run(Policy::PSync);
    // PSYNC waits only for ST_1; WAIT additionally waits for ST_2's late
    // address on every dependent load — the figure 1(d) over-delay.
    assert!(
        psync.cycles < wait.cycles,
        "PSYNC {} must beat WAIT {}",
        psync.cycles,
        wait.cycles
    );
}

/// §3, figure 2: the condition variable works in both execution orders.
#[test]
fn figure2_condition_variable_both_orders() {
    let mut mdst = Mdst::new(8);
    let edge = DepEdge {
        load_pc: 10,
        store_pc: 4,
    };
    // Load first: test fails, the load waits; the store signals it.
    assert_eq!(mdst.sync_load(edge, 7, 1), mds::core::LoadSync::Wait);
    assert_eq!(mdst.sync_store(edge, 7, 2), mds::core::StoreSync::Woke(1));
    // Store first: the signal is recorded; the load continues untouched.
    assert_eq!(mdst.sync_store(edge, 8, 3), mds::core::StoreSync::Recorded);
    assert_eq!(mdst.sync_load(edge, 8, 4), mds::core::LoadSync::Proceed);
}

/// §4.3, figure 4: the full working example — mis-speculation allocates
/// the MDPT entry; the next dynamic instance synchronizes through the
/// MDST whichever side arrives first.
#[test]
fn figure4_working_example() {
    let mut unit = SyncUnit::new(SyncUnitConfig {
        stages: 4,
        ..Default::default()
    });
    let edge = DepEdge {
        load_pc: 7,
        store_pc: 3,
    };

    // Part (b): ST1–LD2 mis-speculation allocates the entry with DIST 1.
    unit.record_misspeculation(edge, 1, None);

    // Parts (c)/(d): LD3 arrives first, waits; ST2 signals it.
    assert_eq!(unit.on_load_ready(7, 3, 30, None), LoadDecision::Wait);
    assert_eq!(unit.on_store_issue(3, 2, 20), vec![30]);

    // Parts (e)/(f): ST3 arrives first; LD4 continues without delay.
    assert!(unit.on_store_issue(3, 3, 21).is_empty());
    assert_eq!(unit.on_load_ready(7, 4, 31, None), LoadDecision::Proceed);
}

/// §4.4.2: incomplete synchronization — the predicted store never comes;
/// the load is released when it becomes non-speculative and the predictor
/// is weakened so the false prediction dies out.
#[test]
fn incomplete_synchronization_releases_and_decays() {
    let mut unit = SyncUnit::new(SyncUnitConfig {
        stages: 4,
        ..Default::default()
    });
    let edge = DepEdge {
        load_pc: 7,
        store_pc: 3,
    };
    unit.record_misspeculation(edge, 1, None);

    assert_eq!(unit.on_load_ready(7, 5, 50, None), LoadDecision::Wait);
    assert!(unit.is_waiting(50));
    let freed = unit.release_load(50);
    assert_eq!(freed, vec![edge]);
    for e in freed {
        unit.train(e, false);
    }
    // The counter fell below threshold: the next instance speculates.
    assert_eq!(
        unit.on_load_ready(7, 6, 51, None),
        LoadDecision::NotPredicted
    );
}

/// §4.4.3: squash invalidation drops the MDST entries of squashed loads
/// and stores without touching the others.
#[test]
fn squash_invalidation_by_identifier() {
    let mut unit = SyncUnit::new(SyncUnitConfig {
        stages: 4,
        ..Default::default()
    });
    let e1 = DepEdge {
        load_pc: 7,
        store_pc: 3,
    };
    let e2 = DepEdge {
        load_pc: 9,
        store_pc: 3,
    };
    unit.record_misspeculation(e1, 1, None);
    unit.record_misspeculation(e2, 1, None);
    assert_eq!(unit.on_load_ready(7, 4, 40, None), LoadDecision::Wait);
    assert_eq!(unit.on_load_ready(9, 5, 41, None), LoadDecision::Wait);
    // Squash the task holding LDID 41.
    unit.invalidate_squashed(|ldid| ldid == 41, |_| false);
    assert!(unit.is_waiting(40));
    assert!(!unit.is_waiting(41));
}

/// §4.4.4: multiple dependences per static load — the load must wait for
/// all of them, and the MDPT tracks each edge separately.
#[test]
fn multiple_dependences_per_load_wait_for_all() {
    let mut unit = SyncUnit::new(SyncUnitConfig {
        stages: 8,
        ..Default::default()
    });
    let from_a = DepEdge {
        load_pc: 20,
        store_pc: 3,
    };
    let from_b = DepEdge {
        load_pc: 20,
        store_pc: 5,
    };
    unit.record_misspeculation(from_a, 1, None);
    unit.record_misspeculation(from_b, 3, None);

    assert_eq!(unit.on_load_ready(20, 10, 99, None), LoadDecision::Wait);
    // One signal is not enough.
    assert_eq!(unit.on_store_issue(3, 9, 1), vec![99]);
    assert!(unit.is_waiting(99), "still blocked on the second edge");
    assert_eq!(unit.on_store_issue(5, 7, 2), vec![99]);
    assert!(!unit.is_waiting(99));
}

/// §6 (future work): the tables are general over "PC pairs" — register
/// dependence speculation works by keying edges on producer/consumer
/// instruction PCs instead of memory instructions.
#[test]
fn register_dependence_speculation_reuses_the_tables() {
    let mut unit = SyncUnit::new(SyncUnitConfig {
        stages: 4,
        ..Default::default()
    });
    // "Store PC" = the producing instruction; "load PC" = the consumer.
    let reg_edge = DepEdge {
        load_pc: 101,
        store_pc: 42,
    };
    unit.record_misspeculation(reg_edge, 2, None);
    assert_eq!(unit.on_load_ready(101, 6, 7, None), LoadDecision::Wait);
    assert_eq!(unit.on_store_issue(42, 4, 8), vec![7]);
}

/// §5.5: prediction updates are non-speculative — a squashed attempt's
/// events must not corrupt the counters (exercised here through the
/// timing model's determinism across replay-heavy runs).
#[test]
fn replay_heavy_run_remains_stable() {
    let mut b = ProgramBuilder::new();
    b.alloc("hot", 1);
    b.la(Reg::S0, "hot");
    b.li(Reg::T0, 600);
    b.label("loop");
    b.task();
    b.ld(Reg::T1, Reg::S0, 0);
    b.mul(Reg::T2, Reg::T1, Reg::T1);
    b.sd(Reg::T1, Reg::S0, 0);
    b.addi(Reg::T0, Reg::T0, -1);
    b.bne(Reg::T0, Reg::ZERO, "loop");
    b.halt();
    let program = b.build().unwrap();
    let r = Multiscalar::new(MsConfig::paper(8, Policy::Esync))
        .run(&program)
        .unwrap();
    // The hot edge must be captured: a handful of cold mis-speculations,
    // then synchronization.
    assert!(r.misspeculations < 20, "got {}", r.misspeculations);
    assert!(r.synchronized_loads > 400, "got {}", r.synchronized_loads);
}
