//! End-to-end integration tests: assemble or build programs, execute them
//! functionally, analyze their dependences, and replay them on the
//! Multiscalar timing model under every speculation policy.

use mds::core::Policy;
use mds::emu::Emulator;
use mds::isa::asm::assemble;
use mds::isa::{ProgramBuilder, Reg};
use mds::multiscalar::{MsConfig, Multiscalar};
use mds::ooo::{WindowAnalyzer, WindowConfig};
use mds::workloads::{by_name, Scale};

/// A recurrence microkernel used across several tests.
fn recurrence_program(iters: i32) -> mds::isa::Program {
    let mut b = ProgramBuilder::new();
    b.alloc("cell", 1);
    b.alloc("scratch", 8);
    b.la(Reg::S0, "cell");
    b.la(Reg::S1, "scratch");
    b.li(Reg::T0, iters);
    b.label("loop");
    b.task();
    b.ld(Reg::T1, Reg::S0, 0);
    b.addi(Reg::T1, Reg::T1, 1);
    b.mul(Reg::T2, Reg::T1, Reg::T1);
    b.sd(Reg::T2, Reg::S1, 0);
    b.sd(Reg::T1, Reg::S0, 0);
    b.addi(Reg::T0, Reg::T0, -1);
    b.bne(Reg::T0, Reg::ZERO, "loop");
    b.halt();
    b.build().unwrap()
}

#[test]
fn assembly_text_flows_through_the_whole_stack() {
    let program = assemble(
        "
        .data acc 1
        li   s0, %acc
        li   t0, 200
        loop:
        .task
        ld   t1, 0(s0)
        addi t1, t1, 2
        sd   t1, 0(s0)
        addi t0, t0, -1
        bne  t0, zero, loop
        halt
        ",
    )
    .expect("assembles");

    // Functional result is architecturally correct.
    let mut emu = Emulator::new(&program);
    emu.run_with(|_| {}).unwrap();
    let acc = program.symbol("acc").unwrap();
    assert_eq!(emu.state().mem.read_u64(acc), 400);

    // The timing model executes the identical committed stream.
    let r = Multiscalar::new(MsConfig::paper(4, Policy::Esync))
        .run(&program)
        .unwrap();
    assert_eq!(r.instructions, emu.summary().instructions);
    assert!(r.cycles > 0);
}

#[test]
fn every_policy_commits_the_same_instruction_stream() {
    let program = recurrence_program(300);
    let reference = Emulator::new(&program)
        .run_with(|_| {})
        .unwrap()
        .instructions;
    for policy in Policy::ALL {
        for stages in [1usize, 2, 4, 8] {
            let r = Multiscalar::new(MsConfig::paper(stages, policy))
                .run(&program)
                .unwrap();
            assert_eq!(r.instructions, reference, "{policy} at {stages} stages");
        }
    }
}

#[test]
fn policy_cycle_ordering_holds_on_a_recurrence() {
    let program = recurrence_program(500);
    let run = |p| {
        Multiscalar::new(MsConfig::paper(4, p))
            .run(&program)
            .unwrap()
    };
    let always = run(Policy::Always);
    let psync = run(Policy::PSync);
    let esync = run(Policy::Esync);
    // The oracle never loses to blind speculation, and the realizable
    // mechanism lands between them on this dependence-saturated kernel.
    assert!(psync.cycles <= always.cycles);
    assert!(esync.cycles <= always.cycles);
    assert!(psync.misspeculations == 0);
    assert!(esync.misspeculations < always.misspeculations / 4);
}

#[test]
fn window_analysis_matches_timing_model_intuition() {
    // A dependence at task distance 5 is invisible to a 4-stage machine
    // but visible to an 8-stage one — in both the unrealistic-OOO window
    // analysis and the Multiscalar mis-speculation counts.
    let mut b = ProgramBuilder::new();
    b.alloc("ring", 5);
    b.la(Reg::S2, "ring");
    b.la(Reg::S3, "ring");
    b.li(Reg::T5, 0);
    b.li(Reg::T6, 5);
    b.li(Reg::T0, 400);
    b.label("loop");
    b.task();
    b.ld(Reg::T1, Reg::S2, 0);
    b.mul(Reg::T2, Reg::T1, Reg::T1);
    b.addi(Reg::T1, Reg::T1, 1);
    b.sd(Reg::T1, Reg::S2, 0);
    b.addi(Reg::S2, Reg::S2, 8);
    b.addi(Reg::T5, Reg::T5, 1);
    b.bne(Reg::T5, Reg::T6, "noreset");
    b.mv(Reg::S2, Reg::S3);
    b.mv(Reg::T5, Reg::ZERO);
    b.label("noreset");
    b.addi(Reg::T0, Reg::T0, -1);
    b.bne(Reg::T0, Reg::ZERO, "loop");
    b.halt();
    let program = b.build().unwrap();

    // Window analysis: the recurrence spans 5 tasks (~45 instructions).
    let mut analyzer = WindowAnalyzer::new(WindowConfig {
        window_sizes: vec![16, 128],
        ddc_sizes: vec![],
    });
    Emulator::new(&program)
        .run_with(|d| analyzer.observe(d))
        .unwrap();
    let report = analyzer.finish();
    assert_eq!(report.for_window(16).unwrap().misspeculations, 0);
    assert!(report.for_window(128).unwrap().misspeculations > 300);

    // Timing model agrees.
    let four = Multiscalar::new(MsConfig::paper(4, Policy::Always))
        .run(&program)
        .unwrap();
    let eight = Multiscalar::new(MsConfig::paper(8, Policy::Always))
        .run(&program)
        .unwrap();
    assert_eq!(
        four.misspeculations, 0,
        "distance-5 edge outside a 4-stage window"
    );
    assert!(eight.misspeculations > 100, "got {}", eight.misspeculations);
}

#[test]
fn registered_workloads_run_under_the_timing_model() {
    for wl in mds::workloads::all() {
        let program = wl.build(Scale::Tiny);
        let r = Multiscalar::new(MsConfig::paper(4, Policy::Always))
            .run(&program)
            .unwrap_or_else(|e| panic!("{} failed: {e}", wl.name));
        assert!(r.ipc() > 0.05, "{}: ipc {}", wl.name, r.ipc());
        assert!(r.tasks > 8, "{}: too few tasks", wl.name);
    }
}

#[test]
fn fig5_shape_always_beats_never_on_the_int92_suite() {
    // The paper's central figure-5 observation: blind speculation beats no
    // speculation (gcc, the paper's worst case, is allowed to tie).
    for wl in mds::workloads::int92_suite() {
        let program = wl.build(Scale::Tiny);
        let never = Multiscalar::new(MsConfig::paper(8, Policy::Never))
            .run(&program)
            .unwrap();
        let always = Multiscalar::new(MsConfig::paper(8, Policy::Always))
            .run(&program)
            .unwrap();
        let speedup = always.speedup_over(&never);
        assert!(speedup > -8.0, "{}: ALWAYS {speedup:.1}% vs NEVER", wl.name);
    }
}

#[test]
fn fig6_shape_psync_dominates_always_on_the_int92_suite() {
    for wl in mds::workloads::int92_suite() {
        let program = wl.build(Scale::Tiny);
        let always = Multiscalar::new(MsConfig::paper(8, Policy::Always))
            .run(&program)
            .unwrap();
        let psync = Multiscalar::new(MsConfig::paper(8, Policy::PSync))
            .run(&program)
            .unwrap();
        assert!(
            psync.cycles <= always.cycles + always.cycles / 50,
            "{}: PSYNC {} vs ALWAYS {}",
            wl.name,
            psync.cycles,
            always.cycles
        );
        assert_eq!(psync.misspeculations, 0, "{}", wl.name);
    }
}

#[test]
fn espresso_mechanism_recovers_nearly_all_of_the_oracle() {
    let program = by_name("espresso").unwrap().build(Scale::Tiny);
    let always = Multiscalar::new(MsConfig::paper(8, Policy::Always))
        .run(&program)
        .unwrap();
    let esync = Multiscalar::new(MsConfig::paper(8, Policy::Esync))
        .run(&program)
        .unwrap();
    let psync = Multiscalar::new(MsConfig::paper(8, Policy::PSync))
        .run(&program)
        .unwrap();
    let gain_esync = esync.speedup_over(&always);
    let gain_psync = psync.speedup_over(&always);
    assert!(gain_psync > 10.0, "oracle gain {gain_psync:.1}%");
    assert!(
        gain_esync > 0.7 * gain_psync,
        "mechanism {gain_esync:.1}% of oracle {gain_psync:.1}%"
    );
}

#[test]
fn deterministic_across_repeated_runs() {
    let program = by_name("sc").unwrap().build(Scale::Tiny);
    let sim = Multiscalar::new(MsConfig::paper(8, Policy::Esync));
    let a = sim.run(&program).unwrap();
    let b = sim.run(&program).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.misspeculations, b.misspeculations);
    assert_eq!(a.breakdown, b.breakdown);
    assert_eq!(a.dcache.misses, b.dcache.misses);
}
