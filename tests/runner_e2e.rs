//! End-to-end test of the experiment runner: push the figure-5 grid
//! (the int92 suite under every figure-5 policy at 4 and 8 stages)
//! through `mds::runner` and check that the parallel path reproduces the
//! same policy-ordering shapes the serial integration tests assert, while
//! emulating each workload exactly once.

use mds::core::Policy;
use mds::multiscalar::{MsConfig, MsResult};
use mds::runner::{Grid, RunOutcome, Runner};
use mds::workloads::{int92_suite, Scale};

const STAGES: [usize; 2] = [4, 8];
const POLICIES: [Policy; 4] = [Policy::Never, Policy::Always, Policy::Wait, Policy::PSync];

fn fig5_grid() -> Grid {
    let mut grid = Grid::new(Scale::Tiny);
    for wl in int92_suite() {
        for stages in STAGES {
            for policy in POLICIES {
                grid.multiscalar(&wl, MsConfig::paper(stages, policy));
            }
        }
    }
    grid
}

fn cell<'a>(outcome: &'a RunOutcome, name: &str, stages: usize, policy: Policy) -> &'a MsResult {
    let id = format!("{name}/ms/s{stages}/{policy}");
    outcome
        .get(&id)
        .unwrap_or_else(|| panic!("missing cell {id}"))
        .output
        .as_multiscalar()
        .expect("multiscalar cell")
}

#[test]
fn fig5_grid_through_the_runner_matches_serial_shapes() {
    let grid = fig5_grid();
    // 5 workloads x 2 stage counts x 4 policies.
    assert_eq!(grid.len(), 40);
    assert_eq!(grid.distinct_workloads(), 5);

    let outcome = Runner::from_env(None).run(&grid);
    assert_eq!(outcome.results.len(), 40);

    // Each workload was emulated exactly once; every other cell replayed
    // the cached trace.
    assert_eq!(outcome.stats.cache_misses, 5);
    assert_eq!(outcome.stats.cache_hits, 40 - 5);

    for wl in int92_suite() {
        for stages in STAGES {
            let never = cell(&outcome, wl.name, stages, Policy::Never);
            let always = cell(&outcome, wl.name, stages, Policy::Always);
            let psync = cell(&outcome, wl.name, stages, Policy::PSync);

            // The paper's central figure-5 observation: blind speculation
            // beats no speculation (gcc is allowed to tie).
            let speedup = always.speedup_over(never);
            assert!(
                speedup > -8.0,
                "{} at {stages} stages: ALWAYS {speedup:.1}% vs NEVER",
                wl.name
            );

            // The selective oracle never mis-speculates and never loses
            // to blind speculation.
            assert_eq!(psync.misspeculations, 0, "{}", wl.name);
            assert!(
                psync.cycles <= always.cycles + always.cycles / 50,
                "{} at {stages} stages: PSYNC {} vs ALWAYS {}",
                wl.name,
                psync.cycles,
                always.cycles
            );
        }
    }
}

#[test]
fn runner_cells_match_direct_serial_simulation() {
    // One cell cross-checked against running the simulator by hand: the
    // runner's trace-replay path is the same computation.
    let wl = mds::workloads::by_name("espresso").unwrap();
    let mut grid = Grid::new(Scale::Tiny);
    grid.multiscalar(&wl, MsConfig::paper(8, Policy::Esync));
    let outcome = Runner::from_env(None).run(&grid);
    let via_runner = cell(&outcome, "espresso", 8, Policy::Esync);

    let direct = mds::multiscalar::Multiscalar::new(MsConfig::paper(8, Policy::Esync))
        .run(&wl.build(Scale::Tiny))
        .unwrap();
    assert_eq!(via_runner.cycles, direct.cycles);
    assert_eq!(via_runner.misspeculations, direct.misspeculations);
    assert_eq!(via_runner.instructions, direct.instructions);
}
