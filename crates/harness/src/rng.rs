//! Seedable, reproducible pseudo-random number generation.
//!
//! The generator is xoshiro256** (Blackman & Vigna) seeded through
//! SplitMix64, the standard pairing: SplitMix64 decorrelates nearby seeds
//! so that `seed_from_u64(1)` and `seed_from_u64(2)` produce unrelated
//! streams, while xoshiro256** provides a fast, high-quality 256-bit-state
//! stream for everything downstream.
//!
//! The API mirrors the small slice of `rand` this workspace used —
//! [`Rng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`] — so call
//! sites read identically, but the implementation is in-tree and the
//! streams are stable across releases: a seed recorded in a test failure
//! or an experiment log replays the exact same values forever.
//!
//! # Examples
//!
//! ```
//! use mds_harness::rng::Rng;
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.gen::<u64>(), b.gen::<u64>());
//! let x: u64 = a.gen_range(10..20);
//! assert!((10..20).contains(&x));
//! ```

use std::ops::Range;

/// Advances a SplitMix64 state and returns the next output.
///
/// Exposed because the property-testing shrinker and the case scheduler
/// also use it to derive independent per-case seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256** generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** is ill-defined on the all-zero state; SplitMix64
        // cannot produce four zero outputs in a row, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Generates a uniformly distributed value of a primitive type.
    #[inline]
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Generates a value uniformly distributed over `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

/// Primitive types [`Rng::gen`] can produce.
pub trait FromRng {
    /// Draws one uniformly distributed value from `rng`.
    fn from_rng(rng: &mut Rng) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng(rng: &mut Rng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng(rng: &mut Rng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges [`Rng::gen_range`] can sample values of `T` from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() % span as u64) as u128
                };
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample(self, rng: &mut Rng) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + (self.end - self.start) * rng.gen::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let s: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&s));
            let f: f64 = rng.gen_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.gen_range(0..8u64) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn stream_is_pinned() {
        // The exact stream is part of the reproducibility contract: if
        // this test fails, recorded seeds everywhere replay differently.
        let mut rng = Rng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            first,
            vec![
                11091344671253066420,
                13793997310169335082,
                1900383378846508768,
                7684712102626143532
            ]
        );
    }
}
