//! A benchmark harness with machine-readable baselines.
//!
//! The in-tree replacement for `criterion`, covering what this workspace
//! needs: per-benchmark warmup, fixed-size iteration batches, a robust
//! median/MAD summary, a wall-clock guard so no benchmark can run away,
//! and a `BENCH_<suite>.json` report written through the in-tree
//! [`json`](crate::json) codec so the performance trajectory of the hot
//! paths is tracked in version control.
//!
//! A bench target is a plain `main`:
//!
//! ```no_run
//! use mds_harness::bench::Harness;
//! use std::hint::black_box;
//!
//! fn main() {
//!     let mut h = Harness::new("structures");
//!     h.bench("add", |b| {
//!         let mut x = 0u64;
//!         b.iter(|| {
//!             x = x.wrapping_add(1);
//!             black_box(x)
//!         });
//!     });
//!     h.finish();
//! }
//! ```
//!
//! `cargo bench` passes `--bench`, which selects measurement mode and
//! writes the JSON report; under `cargo test` (no `--bench`) every
//! routine runs once as a smoke test and nothing is written. Extra
//! arguments: `--scale <name>` forwards a workload scale to the bench
//! (see [`Harness::scale`]), and any bare argument filters benchmarks by
//! substring, as with libtest.
//!
//! Environment knobs (all optional): `MDS_BENCH_WARMUP_MS`,
//! `MDS_BENCH_BATCH_MS`, `MDS_BENCH_BATCHES`, `MDS_BENCH_MAX_MS`,
//! `MDS_BENCH_DIR` (report directory, default: the workspace root).

use crate::json::{Json, ParseError, ToJson};
use std::hint::black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Timing parameters for every benchmark in a harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchConfig {
    /// Warmup duration before measurement, in milliseconds.
    pub warmup_ms: u64,
    /// Target wall-clock length of one measurement batch, in milliseconds.
    pub batch_ms: u64,
    /// Number of measurement batches per benchmark.
    pub batches: u32,
    /// Wall-clock guard: hard cap on one benchmark's total measurement
    /// time, in milliseconds. Batches past the cap are skipped.
    pub max_ms: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            warmup_ms: 60,
            batch_ms: 12,
            batches: 25,
            max_ms: 3000,
        }
    }
}

impl BenchConfig {
    fn from_env() -> Self {
        let get = |key: &str, dflt: u64| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(dflt)
        };
        let d = BenchConfig::default();
        BenchConfig {
            warmup_ms: get("MDS_BENCH_WARMUP_MS", d.warmup_ms),
            batch_ms: get("MDS_BENCH_BATCH_MS", d.batch_ms),
            batches: get("MDS_BENCH_BATCHES", d.batches as u64) as u32,
            max_ms: get("MDS_BENCH_MAX_MS", d.max_ms),
        }
    }
}

impl ToJson for BenchConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            ("warmup_ms", Json::from(self.warmup_ms)),
            ("batch_ms", Json::from(self.batch_ms)),
            ("batches", Json::from(self.batches)),
            ("max_ms", Json::from(self.max_ms)),
        ])
    }
}

impl BenchConfig {
    /// Reads a config back from its [`ToJson`] form.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(BenchConfig {
            warmup_ms: v.get("warmup_ms")?.as_u64()?,
            batch_ms: v.get("batch_ms")?.as_u64()?,
            batches: v.get("batches")?.as_u64()? as u32,
            max_ms: v.get("max_ms")?.as_u64()?,
        })
    }
}

/// The measured summary of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (unique within a suite).
    pub name: String,
    /// Iterations per measurement batch (fixed after calibration).
    pub iters_per_batch: u64,
    /// Batches actually measured (may be short of the configured count if
    /// the wall-clock guard fired).
    pub batches: u32,
    /// Median per-iteration time across batches, in nanoseconds.
    pub median_ns: f64,
    /// Median absolute deviation of per-iteration time, in nanoseconds.
    pub mad_ns: f64,
    /// Fastest batch's per-iteration time, in nanoseconds.
    pub min_ns: f64,
    /// Slowest batch's per-iteration time, in nanoseconds.
    pub max_ns: f64,
    /// Optional elements-per-iteration, for throughput reporting.
    pub throughput_elems: Option<u64>,
}

impl BenchResult {
    /// Elements processed per second, if a throughput was declared.
    pub fn elems_per_sec(&self) -> Option<f64> {
        let elems = self.throughput_elems?;
        if self.median_ns <= 0.0 {
            return None;
        }
        Some(elems as f64 * 1e9 / self.median_ns)
    }
}

impl ToJson for BenchResult {
    fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            ("iters_per_batch", Json::from(self.iters_per_batch)),
            ("batches", Json::from(self.batches)),
            ("median_ns", Json::from(self.median_ns)),
            ("mad_ns", Json::from(self.mad_ns)),
            ("min_ns", Json::from(self.min_ns)),
            ("max_ns", Json::from(self.max_ns)),
            ("throughput_elems", self.throughput_elems.to_json()),
            (
                "elems_per_sec",
                self.elems_per_sec().map(Json::from).unwrap_or(Json::Null),
            ),
        ])
    }
}

impl BenchResult {
    /// Reads a result back from its [`ToJson`] form.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(BenchResult {
            name: v.get("name")?.as_str()?.to_string(),
            iters_per_batch: v.get("iters_per_batch")?.as_u64()?,
            batches: v.get("batches")?.as_u64()? as u32,
            median_ns: v.get("median_ns")?.as_f64()?,
            mad_ns: v.get("mad_ns")?.as_f64()?,
            min_ns: v.get("min_ns")?.as_f64()?,
            max_ns: v.get("max_ns")?.as_f64()?,
            throughput_elems: match v.get("throughput_elems")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
        })
    }
}

/// A whole suite's report: what `BENCH_<suite>.json` holds.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (the `BENCH_<suite>.json` stem).
    pub suite: String,
    /// Workload scale the suite ran at.
    pub scale: String,
    /// Timing parameters the measurements used.
    pub config: BenchConfig,
    /// Per-benchmark summaries, in declaration order.
    pub results: Vec<BenchResult>,
}

impl ToJson for BenchReport {
    fn to_json(&self) -> Json {
        Json::obj([
            ("suite", Json::from(self.suite.as_str())),
            ("scale", Json::from(self.scale.as_str())),
            ("config", self.config.to_json()),
            ("results", self.results.to_json()),
        ])
    }
}

impl BenchReport {
    /// Parses a report from `BENCH_*.json` text.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let v = Json::parse(text)?;
        Self::from_json(&v).ok_or(ParseError {
            message: "not a bench report".to_string(),
            offset: 0,
        })
    }

    /// Reads a report back from its [`ToJson`] form.
    pub fn from_json(v: &Json) -> Option<Self> {
        Some(BenchReport {
            suite: v.get("suite")?.as_str()?.to_string(),
            scale: v.get("scale")?.as_str()?.to_string(),
            config: BenchConfig::from_json(v.get("config")?)?,
            results: v
                .get("results")?
                .as_array()?
                .iter()
                .map(BenchResult::from_json)
                .collect::<Option<Vec<_>>>()?,
        })
    }
}

/// Handed to each benchmark closure; call [`Bencher::iter`] once with the
/// routine to measure.
pub struct Bencher {
    cfg: BenchConfig,
    smoke: bool,
    samples_ns: Vec<f64>,
    iters_per_batch: u64,
    measured_batches: u32,
}

impl Bencher {
    fn new(cfg: BenchConfig, smoke: bool) -> Self {
        Bencher {
            cfg,
            smoke,
            samples_ns: Vec::new(),
            iters_per_batch: 0,
            measured_batches: 0,
        }
    }

    /// Measures `routine`: calibrates an iteration count so one batch
    /// lasts about `batch_ms`, warms up for `warmup_ms`, then times
    /// `batches` fixed-size batches (stopping early at the `max_ms`
    /// wall-clock guard).
    ///
    /// In smoke mode (under `cargo test`) the routine runs exactly once.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        if self.smoke {
            black_box(routine());
            self.iters_per_batch = 1;
            self.measured_batches = 0;
            return;
        }
        let batch_target = Duration::from_millis(self.cfg.batch_ms);
        let guard = Duration::from_millis(self.cfg.max_ms);
        let started = Instant::now();

        // Calibrate: double the batch size until a batch reaches the
        // target length (or the guard budget says stop growing).
        let mut n = 1u64;
        loop {
            let took = time_batch(&mut routine, n);
            if took >= batch_target || started.elapsed() >= guard / 4 {
                break;
            }
            n = n.saturating_mul(2);
        }
        self.iters_per_batch = n;

        // Warmup.
        let warmup = Duration::from_millis(self.cfg.warmup_ms);
        let warmup_started = Instant::now();
        while warmup_started.elapsed() < warmup && started.elapsed() < guard {
            time_batch(&mut routine, n);
        }

        // Measurement batches under the wall-clock guard.
        for _ in 0..self.cfg.batches {
            if self.measured_batches > 0 && started.elapsed() >= guard {
                break;
            }
            let took = time_batch(&mut routine, n);
            self.samples_ns.push(took.as_nanos() as f64 / n as f64);
            self.measured_batches += 1;
        }
        if self.samples_ns.is_empty() {
            // Guard fired before any batch ran: take a single sample so
            // the result is still meaningful.
            let took = time_batch(&mut routine, 1);
            self.samples_ns.push(took.as_nanos() as f64);
            self.iters_per_batch = 1;
            self.measured_batches = 1;
        }
    }
}

fn time_batch<R>(routine: &mut impl FnMut() -> R, n: u64) -> Duration {
    let start = Instant::now();
    for _ in 0..n {
        black_box(routine());
    }
    start.elapsed()
}

/// Median of a sample set; 0 when empty.
pub fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

/// Median absolute deviation around the median; a robust spread measure.
pub fn median_abs_deviation(samples: &[f64]) -> f64 {
    let m = median(samples);
    let deviations: Vec<f64> = samples.iter().map(|s| (s - m).abs()).collect();
    median(&deviations)
}

enum Mode {
    /// `cargo bench`: measure and write the JSON report.
    Measure,
    /// `cargo test` on a `harness = false` bench target: run each routine
    /// once so the code is exercised, write nothing.
    Smoke,
}

/// Collects benchmarks of one suite and writes `BENCH_<suite>.json`.
pub struct Harness {
    suite: String,
    cfg: BenchConfig,
    mode: Mode,
    scale: String,
    filters: Vec<String>,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Creates a harness, reading mode, scale, and name filters from the
    /// process arguments (see the module docs).
    pub fn new(suite: &str) -> Self {
        let mut mode = Mode::Smoke;
        let mut scale = "tiny".to_string();
        let mut filters = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                "--scale" => {
                    if let Some(s) = args.next() {
                        scale = s;
                    }
                }
                "--test" | "--nocapture" | "--quiet" | "-q" => {}
                a if a.starts_with("--") => {}
                a => filters.push(a.to_string()),
            }
        }
        let cfg = BenchConfig::from_env();
        match mode {
            Mode::Measure => eprintln!("benchmarking suite '{suite}' (scale {scale})"),
            Mode::Smoke => eprintln!("smoke-running suite '{suite}' (pass --bench to measure)"),
        }
        Harness {
            suite: suite.to_string(),
            cfg,
            mode,
            scale,
            filters,
            results: Vec::new(),
        }
    }

    /// The workload scale requested with `--scale` (default `"tiny"`).
    pub fn scale(&self) -> &str {
        &self.scale
    }

    /// Declares one benchmark. The closure does its setup, then calls
    /// [`Bencher::iter`] with the routine to measure.
    pub fn bench(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        self.bench_inner(name, None, f);
    }

    /// Like [`Harness::bench`], declaring that one iteration processes
    /// `elems` elements so the report includes throughput.
    pub fn bench_with_throughput(&mut self, name: &str, elems: u64, f: impl FnOnce(&mut Bencher)) {
        self.bench_inner(name, Some(elems), f);
    }

    fn bench_inner(&mut self, name: &str, elems: Option<u64>, f: impl FnOnce(&mut Bencher)) {
        if !self.filters.is_empty() && !self.filters.iter().any(|p| name.contains(p.as_str())) {
            return;
        }
        let smoke = matches!(self.mode, Mode::Smoke);
        let mut b = Bencher::new(self.cfg.clone(), smoke);
        f(&mut b);
        if smoke {
            eprintln!("  {name}: ok (smoke)");
            return;
        }
        let result = BenchResult {
            name: name.to_string(),
            iters_per_batch: b.iters_per_batch,
            batches: b.measured_batches,
            median_ns: median(&b.samples_ns),
            mad_ns: median_abs_deviation(&b.samples_ns),
            min_ns: b.samples_ns.iter().copied().fold(f64::INFINITY, f64::min),
            max_ns: b.samples_ns.iter().copied().fold(0.0, f64::max),
            throughput_elems: elems,
        };
        let throughput = result
            .elems_per_sec()
            .map(|eps| format!(", {:.2} Melem/s", eps / 1e6))
            .unwrap_or_default();
        eprintln!(
            "  {:<32} {:>12.1} ns/iter (±{:.1} MAD, {} batches × {} iters{})",
            result.name,
            result.median_ns,
            result.mad_ns,
            result.batches,
            result.iters_per_batch,
            throughput
        );
        self.results.push(result);
    }

    /// The report accumulated so far (measurement mode only).
    pub fn report(&self) -> BenchReport {
        BenchReport {
            suite: self.suite.clone(),
            scale: self.scale.clone(),
            config: self.cfg.clone(),
            results: self.results.clone(),
        }
    }

    /// In measurement mode, writes `BENCH_<suite>.json` and prints its
    /// path; in smoke mode, does nothing.
    pub fn finish(self) {
        if matches!(self.mode, Mode::Smoke) {
            return;
        }
        let path = report_dir().join(format!("BENCH_{}.json", self.suite));
        let text = self.report().to_json().pretty();
        match std::fs::write(&path, text) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}

/// The directory reports are written to: `MDS_BENCH_DIR` if set, else the
/// enclosing workspace root, else the current directory.
///
/// Public because other machine-readable artifacts (the `repro` binary's
/// `RESULTS_*.json` files) follow the same placement convention.
pub fn report_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("MDS_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    let start = std::env::var_os("CARGO_MANIFEST_DIR")
        .map(PathBuf::from)
        .or_else(|| std::env::current_dir().ok())
        .unwrap_or_else(|| PathBuf::from("."));
    let mut dir = start.as_path();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return dir.to_path_buf();
                }
            }
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_and_mad() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[3.0]), 3.0);
        assert_eq!(median(&[1.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median_abs_deviation(&[1.0, 3.0, 5.0]), 2.0);
        assert_eq!(median_abs_deviation(&[4.0, 4.0, 4.0]), 0.0);
    }

    #[test]
    fn smoke_bencher_runs_routine_once() {
        let mut b = Bencher::new(BenchConfig::default(), true);
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.samples_ns.is_empty());
    }

    #[test]
    fn measured_bencher_collects_samples() {
        let cfg = BenchConfig {
            warmup_ms: 1,
            batch_ms: 1,
            batches: 5,
            max_ms: 200,
        };
        let mut b = Bencher::new(cfg, false);
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            black_box(x)
        });
        assert!(!b.samples_ns.is_empty());
        assert!(b.iters_per_batch >= 1);
        assert!(b.samples_ns.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = BenchReport {
            suite: "structures".into(),
            scale: "small".into(),
            config: BenchConfig::default(),
            results: vec![
                BenchResult {
                    name: "mdpt_lookup_hit".into(),
                    iters_per_batch: 1 << 16,
                    batches: 25,
                    median_ns: 13.25,
                    mad_ns: 0.5,
                    min_ns: 12.0,
                    max_ns: 19.75,
                    throughput_elems: None,
                },
                BenchResult {
                    name: "emulator/compress_tiny".into(),
                    iters_per_batch: 8,
                    batches: 25,
                    median_ns: 1.5e6,
                    mad_ns: 2.5e4,
                    min_ns: 1.4e6,
                    max_ns: 1.9e6,
                    throughput_elems: Some(120_000),
                },
            ],
        };
        let text = report.to_json().pretty();
        assert_eq!(BenchReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn elems_per_sec_derivation() {
        let r = BenchResult {
            name: "x".into(),
            iters_per_batch: 1,
            batches: 1,
            median_ns: 1000.0,
            mad_ns: 0.0,
            min_ns: 1000.0,
            max_ns: 1000.0,
            throughput_elems: Some(2000),
        };
        assert_eq!(r.elems_per_sec(), Some(2e9));
    }
}
