//! A fast, deterministic, non-cryptographic hasher and reusable
//! scratch-container pool for simulator hot paths.
//!
//! The std `HashMap` defaults to SipHash-1-3 behind a per-process random
//! seed. That is the right default for servers facing untrusted keys, but
//! the simulators hash *trusted, small* keys (cycle numbers, PCs, word
//! addresses, dependence edges) millions of times per run, where SipHash's
//! per-lookup cost dominates the inner loops. [`FxHasher`] is the
//! multiply-and-rotate hash used by the Rust compiler itself ("FxHash"):
//! one rotate, one xor, and one multiply per 8-byte word, no seed, no
//! allocation.
//!
//! Determinism is load-bearing here: every simulator result must be
//! byte-identical across runs, machines, and thread counts. `FxHasher`
//! has **no random state**, so two processes hashing the same keys agree
//! — which also means iteration order of an [`FxHashMap`] is stable for a
//! fixed insertion history (std's `RandomState` cannot promise that).
//! Nothing in the workspace may depend on map iteration order for output
//! anyway (the parallel runner proves that property), but stability
//! removes a whole class of heisenbugs while debugging.
//!
//! The exact hash function is a **pinned contract**: the
//! `pinned_hash_contract` test hard-codes known input/output pairs, and
//! changing the constants or the mixing is a breaking change that must be
//! made deliberately (update the pins in the same commit and say why).
//!
//! The second half of this module is [`Pool`]: an arena of reusable
//! containers for code that would otherwise allocate fresh maps in a loop
//! (the Multiscalar squash-and-replay path re-ran `HashMap::new` four
//! times per task attempt before this existed). `Pool::take` hands out a
//! recycled container, `Pool::put` clears and shelves it.
//!
//! This module is hot-path infrastructure; treat keys from untrusted
//! clients (HTTP headers, JSON fields) with the std default instead.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (64-bit golden-ratio-derived odd constant).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
/// Rotation applied before each word is mixed in.
const ROTATE: u32 = 5;

/// The FxHash streaming hasher: `state = (rotl(state, 5) ^ word) * SEED`
/// per 8-byte word, with shorter writes zero-extended.
///
/// Not cryptographic and not DoS-resistant — for trusted keys only.
///
/// # Examples
///
/// ```
/// use mds_harness::hash::FxHashMap;
/// let mut m: FxHashMap<u64, &str> = FxHashMap::default();
/// m.insert(7, "seven");
/// assert_eq!(m.get(&7), Some(&"seven"));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// Seedless `BuildHasher` for [`FxHasher`] (every build starts at state 0).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`FxHasher`] — drop-in for trusted hot-path keys.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`] — drop-in for trusted hot-path keys.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// A container that can be wiped for reuse without releasing its
/// allocation. Implemented for the std collections the simulators pool.
pub trait Recycle: Default {
    /// Clears contents; must leave the value equal to a fresh one while
    /// retaining capacity.
    fn recycle(&mut self);
}

impl<K, V, S: Default + std::hash::BuildHasher> Recycle for HashMap<K, V, S> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T, S: Default + std::hash::BuildHasher> Recycle for HashSet<T, S> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T> Recycle for Vec<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

impl<T> Recycle for std::collections::VecDeque<T> {
    fn recycle(&mut self) {
        self.clear();
    }
}

/// An arena of reusable containers: [`Pool::take`] pops a recycled value
/// (or makes a fresh one), [`Pool::put`] wipes a value and shelves it for
/// the next `take`.
///
/// Capacity is retained across the take/put cycle, so a steady-state loop
/// performs zero allocation once its containers have grown to their
/// working size — the whole point for squash-and-replay inner loops.
///
/// # Examples
///
/// ```
/// use mds_harness::hash::{FxHashMap, Pool};
/// let mut pool: Pool<FxHashMap<u64, u64>> = Pool::new();
/// let mut m = pool.take();
/// m.insert(1, 2);
/// pool.put(m);
/// let m = pool.take(); // same allocation, now empty
/// assert!(m.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct Pool<T: Recycle> {
    free: Vec<T>,
}

impl<T: Recycle> Pool<T> {
    /// An empty pool.
    pub fn new() -> Pool<T> {
        Pool { free: Vec::new() }
    }

    /// A recycled container, or `T::default()` when the shelf is empty.
    pub fn take(&mut self) -> T {
        self.free.pop().unwrap_or_default()
    }

    /// Wipes `value` and shelves it for the next [`Pool::take`].
    pub fn put(&mut self, mut value: T) {
        value.recycle();
        self.free.push(value);
    }

    /// Containers currently shelved.
    pub fn idle(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: T) -> u64 {
        FxBuildHasher::default().hash_one(value)
    }

    /// THE PINNED HASHING CONTRACT. These exact values are frozen: the
    /// simulators' scratch structures and any on-disk artifact that ever
    /// derives from hash values depend on them. If this test fails, you
    /// changed the hash function — do it deliberately, update the pins in
    /// the same commit, and re-verify `repro all --json` byte-identity.
    #[test]
    fn pinned_hash_contract() {
        assert_eq!(hash_of(0u64), 0);
        assert_eq!(hash_of(1u64), 0x517c_c1b7_2722_0a95);
        assert_eq!(hash_of(0xdead_beefu64), 0x67f3_c037_2953_771b);
        assert_eq!(hash_of(42u32), 0x5e77_c80c_6b95_bc72);
        assert_eq!(hash_of(7u8), 0x3a69_4c02_11ee_4a13);
        assert_eq!(hash_of((4u32, 12u32)), 0xbf8a_69f7_9e85_86d4);
        assert_eq!(hash_of(u64::MAX), 0xae83_3e48_d8dd_f56b);
    }

    #[test]
    fn byte_stream_equals_word_stream_for_whole_words() {
        let mut a = FxHasher::default();
        a.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0102_0304_0506_0708);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn short_tails_are_zero_extended() {
        let mut a = FxHasher::default();
        a.write(&[0xab, 0xcd]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([0xab, 0xcd, 0, 0, 0, 0, 0, 0]));
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn deterministic_across_builders() {
        // No RandomState anywhere: two independently built hashers agree.
        let h1 = FxBuildHasher::default().hash_one(0x1234_5678u64);
        let h2 = FxBuildHasher::default().hash_one(0x1234_5678u64);
        assert_eq!(h1, h2);
    }

    #[test]
    fn distinct_small_keys_do_not_collide() {
        // The simulators key maps by cycle number, PC, and word address —
        // small dense integers. A hash that collapses them would degrade
        // every map to a list silently.
        let mut seen = HashSet::new();
        for k in 0u64..100_000 {
            assert!(seen.insert(hash_of(k)), "collision at {k}");
        }
    }

    #[test]
    fn fx_map_behaves_like_a_map() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(7)), u64::from(i));
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(7))), Some(&u64::from(i)));
        }
        assert_eq!(m.get(&(5, 0)), None);
    }

    #[test]
    fn pool_recycles_allocations() {
        let mut pool: Pool<Vec<u64>> = Pool::new();
        let mut v = pool.take();
        v.extend(0..100);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.idle(), 1);
        let v = pool.take();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap, "capacity must survive the recycle");
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn pool_take_on_empty_shelf_is_fresh_default() {
        let mut pool: Pool<FxHashSet<u32>> = Pool::new();
        assert!(pool.take().is_empty());
    }
}
