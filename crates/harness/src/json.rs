//! A hand-rolled JSON value type, writer, and parser.
//!
//! This replaces the `serde` derives the workspace used to carry: the few
//! result structs that need machine-readable output implement [`ToJson`]
//! by hand, and the benchmark harness reads its committed `BENCH_*.json`
//! baselines back through [`Json::parse`]. The writer is deterministic —
//! object keys keep insertion order, floats print in Rust's shortest
//! round-trip form — so emitted files diff cleanly across runs.
//!
//! # Examples
//!
//! ```
//! use mds_harness::json::Json;
//! let v = Json::obj([
//!     ("name", Json::from("mdpt")),
//!     ("hits", Json::from(42u64)),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"name":"mdpt","hits":42}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt;

/// A JSON document.
///
/// Numbers keep their source flavor (`Int`/`UInt`/`Float`) so that `u64`
/// counters round-trip exactly — cycle counts exceed the 53-bit mantissa
/// a single `f64` variant could carry.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A negative integer.
    Int(i64),
    /// A non-negative integer.
    UInt(u64),
    /// A floating-point number. Non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved when writing.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn obj<'a>(pairs: impl IntoIterator<Item = (&'a str, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Starts an empty object for builder-style construction with
    /// [`Json::field`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key/value pair to an object, builder style.
    ///
    /// ```
    /// use mds_harness::json::Json;
    /// let v = Json::object().field("hits", 3u64).field("name", "mdpt");
    /// assert_eq!(v.to_string(), r#"{"hits":3,"name":"mdpt"}"#);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn field(mut self, key: &str, value: impl ToJson) -> Json {
        match &mut self {
            Json::Object(pairs) => pairs.push((key.to_string(), value.to_json())),
            other => panic!("Json::field on non-object {other}"),
        }
        self
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::UInt(v) => Some(v),
            Json::Int(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Float(v) => Some(v),
            Json::UInt(v) => Some(v as f64),
            Json::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice of elements if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation (for committed baselines,
    /// where line-oriented diffs matter).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Array(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Object(pairs) if !pairs.is_empty() => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    indent(out, depth + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                out.push_str(&v.to_string());
            }
            Json::UInt(v) => {
                out.push_str(&v.to_string());
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` always includes a decimal point or exponent,
                    // so the value reparses as Float, not Int.
                    out.push_str(&format!("{v:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_string(out, s),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// Accepts exactly the output of the writer plus ordinary JSON
    /// whitespace; rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write_compact(&mut out);
        f.write_str(&out)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        if v < 0 {
            Json::Int(v)
        } else {
            Json::UInt(v as u64)
        }
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Conversion into a [`Json`] document.
///
/// The in-tree replacement for `#[derive(Serialize)]`: result structs
/// implement it by hand, field by field, so the wire format is explicit
/// and reviewable.
pub trait ToJson {
    /// Converts `self` into a JSON value.
    fn to_json(&self) -> Json;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

macro_rules! impl_to_json_prim {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::from(*self)
            }
        }
    )*};
}
impl_to_json_prim!(bool, u32, u64, usize, i64, f64);

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}
impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}
impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

/// Typed decoding out of a [`Json`] document.
///
/// The counterpart to [`ToJson`] and the in-tree replacement for
/// `#[derive(Deserialize)]`: request bodies and committed baselines are
/// parsed with [`Json::parse`] (which reports byte offsets) and then
/// decoded field-by-field through this trait (which reports JSONPath-style
/// locations like `$.table[3].name`).
pub trait FromJson: Sized {
    /// Decodes a value, or reports where in the document it went wrong.
    fn from_json(v: &Json) -> Result<Self, DecodeError>;
}

/// A typed-decoding failure: a JSONPath-style location plus what was
/// expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Where the offending value sits, e.g. `$.table[3].name`.
    pub path: String,
    /// What was expected or wrong at that location.
    pub message: String,
}

impl DecodeError {
    /// An error at the document root (`$`).
    pub fn new(message: impl Into<String>) -> DecodeError {
        DecodeError {
            path: "$".to_string(),
            message: message.into(),
        }
    }

    /// Re-roots the error under `key` of an enclosing object.
    pub fn in_field(mut self, key: &str) -> DecodeError {
        self.path = format!("$.{key}{}", &self.path[1..]);
        self
    }

    /// Re-roots the error under index `i` of an enclosing array.
    pub fn in_index(mut self, i: usize) -> DecodeError {
        self.path = format!("$[{i}]{}", &self.path[1..]);
        self
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at {}: {}", self.path, self.message)
    }
}

impl std::error::Error for DecodeError {}

impl Json {
    /// Decodes this value as a `T`, with path-labeled errors.
    ///
    /// ```
    /// use mds_harness::json::Json;
    /// let v = Json::parse(r#"{"hits":[1,2,3]}"#).unwrap();
    /// let hits: Vec<u64> = v.field_as("hits").unwrap();
    /// assert_eq!(hits, [1, 2, 3]);
    /// let err = v.field_as::<Vec<u64>>("misses").unwrap_err();
    /// assert_eq!(err.path, "$.misses");
    /// ```
    pub fn decode<T: FromJson>(&self) -> Result<T, DecodeError> {
        T::from_json(self)
    }

    /// The value under `key`, or an error naming the missing field.
    pub fn required(&self, key: &str) -> Result<&Json, DecodeError> {
        match self {
            Json::Object(_) => self
                .get(key)
                .ok_or_else(|| DecodeError::new("missing field").in_field(key)),
            other => Err(DecodeError::new(format!(
                "expected an object, found {}",
                kind_name(other)
            ))),
        }
    }

    /// Decodes the value under `key` as a `T`; errors carry the field in
    /// their path.
    pub fn field_as<T: FromJson>(&self, key: &str) -> Result<T, DecodeError> {
        self.required(key)?
            .decode::<T>()
            .map_err(|e| e.in_field(key))
    }
}

fn kind_name(v: &Json) -> &'static str {
    match v {
        Json::Null => "null",
        Json::Bool(_) => "a bool",
        Json::Int(_) | Json::UInt(_) => "an integer",
        Json::Float(_) => "a float",
        Json::Str(_) => "a string",
        Json::Array(_) => "an array",
        Json::Object(_) => "an object",
    }
}

impl FromJson for Json {
    fn from_json(v: &Json) -> Result<Json, DecodeError> {
        Ok(v.clone())
    }
}

impl FromJson for bool {
    fn from_json(v: &Json) -> Result<bool, DecodeError> {
        match v {
            Json::Bool(b) => Ok(*b),
            other => Err(DecodeError::new(format!(
                "expected a bool, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl FromJson for u64 {
    fn from_json(v: &Json) -> Result<u64, DecodeError> {
        v.as_u64().ok_or_else(|| {
            DecodeError::new(format!(
                "expected a non-negative integer, found {}",
                kind_name(v)
            ))
        })
    }
}

impl FromJson for u32 {
    fn from_json(v: &Json) -> Result<u32, DecodeError> {
        let wide = u64::from_json(v)?;
        u32::try_from(wide).map_err(|_| DecodeError::new(format!("{wide} is out of range for u32")))
    }
}

impl FromJson for usize {
    fn from_json(v: &Json) -> Result<usize, DecodeError> {
        let wide = u64::from_json(v)?;
        usize::try_from(wide)
            .map_err(|_| DecodeError::new(format!("{wide} is out of range for usize")))
    }
}

impl FromJson for i64 {
    fn from_json(v: &Json) -> Result<i64, DecodeError> {
        match *v {
            Json::Int(n) => Ok(n),
            Json::UInt(n) => i64::try_from(n)
                .map_err(|_| DecodeError::new(format!("{n} is out of range for i64"))),
            ref other => Err(DecodeError::new(format!(
                "expected an integer, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl FromJson for f64 {
    fn from_json(v: &Json) -> Result<f64, DecodeError> {
        v.as_f64()
            .ok_or_else(|| DecodeError::new(format!("expected a number, found {}", kind_name(v))))
    }
}

impl FromJson for String {
    fn from_json(v: &Json) -> Result<String, DecodeError> {
        match v {
            Json::Str(s) => Ok(s.clone()),
            other => Err(DecodeError::new(format!(
                "expected a string, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(v: &Json) -> Result<Vec<T>, DecodeError> {
        match v {
            Json::Array(items) => items
                .iter()
                .enumerate()
                .map(|(i, item)| T::from_json(item).map_err(|e| e.in_index(i)))
                .collect(),
            other => Err(DecodeError::new(format!(
                "expected an array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(v: &Json) -> Result<Option<T>, DecodeError> {
        match v {
            Json::Null => Ok(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(v: &Json) -> Result<(A, B), DecodeError> {
        match v {
            Json::Array(items) if items.len() == 2 => Ok((
                A::from_json(&items[0]).map_err(|e| e.in_index(0))?,
                B::from_json(&items[1]).map_err(|e| e.in_index(1))?,
            )),
            Json::Array(items) => Err(DecodeError::new(format!(
                "expected a 2-element array, found {} elements",
                items.len()
            ))),
            other => Err(DecodeError::new(format!(
                "expected a 2-element array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<A: FromJson, B: FromJson, C: FromJson> FromJson for (A, B, C) {
    fn from_json(v: &Json) -> Result<(A, B, C), DecodeError> {
        match v {
            Json::Array(items) if items.len() == 3 => Ok((
                A::from_json(&items[0]).map_err(|e| e.in_index(0))?,
                B::from_json(&items[1]).map_err(|e| e.in_index(1))?,
                C::from_json(&items[2]).map_err(|e| e.in_index(2))?,
            )),
            Json::Array(items) => Err(DecodeError::new(format!(
                "expected a 3-element array, found {} elements",
                items.len()
            ))),
            other => Err(DecodeError::new(format!(
                "expected a 3-element array, found {}",
                kind_name(other)
            ))),
        }
    }
}

/// A parse failure: what was wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the problem.
    pub message: String,
    /// Byte offset into the input where parsing stopped.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.err("bad number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::UInt(0),
            Json::UInt(u64::MAX),
            Json::Int(-42),
            Json::Int(i64::MIN),
            Json::Float(0.1),
            Json::Float(-1.5e300),
            Json::Str("hello \"world\"\n\t\\".to_string()),
            Json::Str("unicode: π ≈ 3".to_string()),
        ] {
            assert_eq!(Json::parse(&v.to_string()).unwrap(), v, "{v}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Json::obj([
            (
                "list",
                Json::Array(vec![Json::UInt(1), Json::Null, Json::Str("x".into())]),
            ),
            ("empty_list", Json::Array(vec![])),
            ("empty_obj", Json::Object(vec![])),
            ("nested", Json::obj([("f", Json::Float(2.5))])),
        ]);
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
        assert_eq!(Json::parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn u64_counters_keep_full_precision() {
        let big = u64::MAX - 1;
        let text = Json::UInt(big).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(big));
    }

    #[test]
    fn floats_never_reparse_as_ints() {
        let text = Json::Float(3.0).to_string();
        assert_eq!(text, "3.0");
        assert_eq!(Json::parse(&text).unwrap(), Json::Float(3.0));
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::Float(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn parse_accepts_whitespace() {
        let v = Json::parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn accessors() {
        let v = Json::obj([("n", Json::UInt(7)), ("s", Json::from("x"))]);
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
        assert_eq!(Json::Null.get("x"), None);
    }

    #[test]
    fn error_display_mentions_offset() {
        let e = Json::parse("[1,").unwrap_err();
        assert!(e.to_string().contains("byte 3"), "{e}");
    }

    #[test]
    fn typed_decoding_succeeds_on_well_shaped_input() {
        let doc =
            Json::parse(r#"{"n":7,"s":"x","list":[1,2],"pair":[3,"y"],"none":null}"#).unwrap();
        assert_eq!(doc.field_as::<u64>("n").unwrap(), 7);
        assert_eq!(doc.field_as::<u32>("n").unwrap(), 7);
        assert_eq!(doc.field_as::<i64>("n").unwrap(), 7);
        assert_eq!(doc.field_as::<f64>("n").unwrap(), 7.0);
        assert_eq!(doc.field_as::<String>("s").unwrap(), "x");
        assert_eq!(doc.field_as::<Vec<u64>>("list").unwrap(), [1, 2]);
        assert_eq!(
            doc.field_as::<(u64, String)>("pair").unwrap(),
            (3, "y".to_string())
        );
        assert_eq!(doc.field_as::<Option<u64>>("none").unwrap(), None);
        assert_eq!(doc.field_as::<Option<u64>>("n").unwrap(), Some(7));
    }

    #[test]
    fn typed_decoding_reports_nested_paths() {
        let doc = Json::parse(r#"{"rows":[[1,2],[3,"x"]]}"#).unwrap();
        let err = doc.field_as::<Vec<(u64, u64)>>("rows").unwrap_err();
        assert_eq!(err.path, "$.rows[1][1]");
        assert!(err.message.contains("non-negative integer"), "{err}");
        assert!(err.to_string().starts_with("decode error at $.rows[1][1]"));
    }

    #[test]
    fn typed_decoding_reports_missing_fields_and_wrong_roots() {
        let doc = Json::parse(r#"{"a":1}"#).unwrap();
        let missing = doc.field_as::<u64>("b").unwrap_err();
        assert_eq!(missing.path, "$.b");
        assert_eq!(missing.message, "missing field");
        let non_object = Json::parse("[1]").unwrap().required("a").unwrap_err();
        assert_eq!(non_object.path, "$");
        assert!(non_object.message.contains("expected an object"));
    }

    #[test]
    fn typed_decoding_enforces_integer_ranges() {
        let err = Json::UInt(u64::MAX).decode::<u32>().unwrap_err();
        assert!(err.message.contains("out of range for u32"), "{err}");
        let err = Json::UInt(u64::MAX).decode::<i64>().unwrap_err();
        assert!(err.message.contains("out of range for i64"), "{err}");
        assert_eq!(Json::Int(-3).decode::<i64>().unwrap(), -3);
        assert!(Json::Int(-3).decode::<u64>().is_err());
    }
}
