//! Zero-dependency development harness for the `mds` workspace.
//!
//! This crate exists so that `cargo build --release && cargo test -q`
//! succeeds **offline, from a cold registry**: the workspace's claims
//! rest on exact determinism and must not depend on dependency
//! resolution against crates.io. It packages the four pieces of
//! infrastructure the workspace used to pull from external crates:
//!
//! - [`rng`] — a seedable xoshiro256** PRNG with a stable stream
//!   (replaces `rand`),
//! - [`prop`] — a property-testing runner with generators and
//!   word-stream shrinking (replaces `proptest`),
//! - [`bench`] — a benchmark harness emitting `BENCH_*.json` baselines
//!   (replaces `criterion`),
//! - [`json`] — a hand-rolled JSON value/writer/parser and the
//!   [`json::ToJson`] trait (replaces `serde` derives),
//! - [`hash`] — a deterministic FxHash-style hasher with a pinned
//!   contract plus a reusable scratch-container [`hash::Pool`] (replaces
//!   `rustc-hash`) for allocation-free simulator inner loops,
//! - [`stats`] — a lock-free fixed-bucket latency histogram with a
//!   Prometheus text rendering, shared by every serving tier,
//! - [`backoff`] — capped exponential backoff with deterministic jitter,
//!   the retry-delay policy shared by the load generator and the cluster
//!   gateway's robustness layer,
//! - [`tempdir`] — uniquely named scratch directories removed on drop,
//!   so tests that write disk state (e.g. `mds-store` directories) are
//!   rerun-safe (replaces `tempfile`).
//!
//! Everything here is plain `std` Rust: no dependencies, no unsafe code,
//! no build scripts.

pub mod backoff;
pub mod bench;
pub mod hash;
pub mod json;
pub mod prop;
pub mod rng;
pub mod stats;
pub mod tempdir;

/// One-stop imports for property tests.
///
/// ```
/// use mds_harness::prelude::*;
/// ```
pub mod prelude {
    pub use crate::prop::{
        any, option_of, vec_of, Arbitrary, DataSource, Just, PropConfig, Strategy, StrategyExt,
        Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, properties};
}
