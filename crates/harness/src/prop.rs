//! A minimal property-based testing runner with shrinking.
//!
//! The in-tree replacement for the slice of `proptest` this workspace
//! used. A [`Strategy`] describes how to generate a value from a stream
//! of random words; the [`properties!`](crate::properties) macro wraps a
//! test body into a standard `#[test]` that runs the body over many
//! generated cases and, on failure, shrinks the input to a minimal
//! counterexample before panicking.
//!
//! # Design: word-stream shrinking
//!
//! Generation draws `u64` words from a [`DataSource`]; every strategy is
//! a pure function of that stream. A failing case is therefore fully
//! described by its recorded word buffer, and shrinking operates on the
//! buffer alone (delete blocks of words, minimize individual words by
//! binary search) while re-running generation to obtain candidate values
//! — the Hypothesis approach. This gives every strategy, including
//! [`prop_map`](StrategyExt::prop_map)ped and
//! [`prop_oneof!`](crate::prop_oneof) composites, shrinking for free:
//! bounded draws record their *reduced* word, so minimizing a word
//! minimizes the generated value directly.
//!
//! # Determinism
//!
//! Case seeds derive from the test name by default, so a test run is
//! exactly reproducible without any persisted state. A failure report
//! prints the case seed; `MDS_PROP_SEED=<seed>` replays that single case.
//!
//! # Examples
//!
//! ```
//! use mds_harness::prelude::*;
//!
//! // In a test module each `fn` would also carry `#[test]`.
//! properties! {
//!     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

use crate::rng::{splitmix64, Rng};
use std::cell::Cell;
use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

/// Configuration for one property test.
#[derive(Debug, Clone)]
pub struct PropConfig {
    /// Number of random cases to run (default 64).
    pub cases: u32,
    /// Base seed; defaults to a hash of the test name so runs are
    /// reproducible with no recorded state.
    pub seed: Option<u64>,
    /// Upper bound on test executions spent shrinking a failure.
    pub max_shrink_iters: u32,
}

impl Default for PropConfig {
    fn default() -> Self {
        PropConfig {
            cases: 64,
            seed: None,
            max_shrink_iters: 4096,
        }
    }
}

/// The word stream strategies draw from.
///
/// In live mode words come from the PRNG and are recorded; in replay mode
/// they come from a buffer (the shrinker's candidate), with draws past
/// the end yielding zero.
#[derive(Debug)]
pub struct DataSource {
    replay: Vec<u64>,
    pos: usize,
    live: Option<Rng>,
    record: Vec<u64>,
}

impl DataSource {
    /// A live source seeded with `seed`.
    pub fn live(seed: u64) -> Self {
        DataSource {
            replay: Vec::new(),
            pos: 0,
            live: Some(Rng::seed_from_u64(seed)),
            record: Vec::new(),
        }
    }

    /// A replay source that reads `words`, then zeros.
    pub fn replay(words: Vec<u64>) -> Self {
        DataSource {
            replay: words,
            pos: 0,
            live: None,
            record: Vec::new(),
        }
    }

    /// The words drawn so far.
    pub fn record(&self) -> &[u64] {
        &self.record
    }

    /// Draws a full 64-bit word.
    pub fn draw(&mut self) -> u64 {
        let w = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else if let Some(rng) = &mut self.live {
            rng.next_u64()
        } else {
            0
        };
        self.pos += 1;
        self.record.push(w);
        w
    }

    /// Draws a word uniformly below `n` (`n >= 1`).
    ///
    /// The *reduced* word is recorded, so the shrinker's word-minimization
    /// maps monotonically onto the generated value.
    pub fn draw_below(&mut self, n: u64) -> u64 {
        let w = if self.pos < self.replay.len() {
            self.replay[self.pos]
        } else if let Some(rng) = &mut self.live {
            rng.next_u64()
        } else {
            0
        };
        let reduced = if n <= 1 { 0 } else { w % n };
        self.pos += 1;
        self.record.push(reduced);
        reduced
    }
}

/// A recipe for generating test values from a [`DataSource`].
pub trait Strategy {
    /// The type of generated values.
    type Value: fmt::Debug;
    /// Generates one value by drawing from `source`.
    fn generate(&self, source: &mut DataSource) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, source: &mut DataSource) -> Self::Value {
        (**self).generate(source)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, source: &mut DataSource) -> $t {
                assert!(self.start < self.end, "strategy range is empty");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = if span > u64::MAX as u128 {
                    source.draw() as u128
                } else {
                    source.draw_below(span as u64) as u128
                };
                (self.start as i128).wrapping_add(off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, source: &mut DataSource) -> $t {
                assert!(self.start() <= self.end(), "strategy range is empty");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let off = if span > u64::MAX as u128 {
                    source.draw() as u128
                } else {
                    source.draw_below(span as u64) as u128
                };
                (*self.start() as i128).wrapping_add(off as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy, via [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Builds a value from one uniformly distributed word.
    fn from_word(word: u64) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn from_word(word: u64) -> Self {
                word as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn from_word(word: u64) -> Self {
        word & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing any value of `T` (the full domain).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, source: &mut DataSource) -> T {
        T::from_word(source.draw())
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _source: &mut DataSource) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// A strategy for vectors whose length is drawn from `len` and whose
/// elements come from `elem`.
pub fn vec_of<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec_of length range is empty");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, source: &mut DataSource) -> Vec<S::Value> {
        let span = (self.len.end - self.len.start) as u64;
        let n = self.len.start + source.draw_below(span) as usize;
        (0..n).map(|_| self.elem.generate(source)).collect()
    }
}

/// The strategy returned by [`option_of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S>(S);

/// A strategy yielding `None` or `Some` of the inner strategy's values.
///
/// Shrinks toward `None`.
pub fn option_of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy(inner)
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, source: &mut DataSource) -> Option<S::Value> {
        if source.draw_below(2) == 1 {
            Some(self.0.generate(source))
        } else {
            None
        }
    }
}

/// The strategy returned by [`StrategyExt::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
    O: fmt::Debug,
{
    type Value = O;
    fn generate(&self, source: &mut DataSource) -> O {
        (self.f)(self.inner.generate(source))
    }
}

/// Combinator methods on every [`Strategy`].
pub trait StrategyExt: Strategy + Sized {
    /// Applies `f` to every generated value.
    ///
    /// Shrinking passes through: the underlying stream shrinks and the
    /// mapped value is regenerated.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

impl<S: Strategy + Sized> StrategyExt for S {}

/// A choice among several strategies with a common value type; built by
/// [`prop_oneof!`](crate::prop_oneof).
///
/// Shrinks toward earlier alternatives.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T: fmt::Debug> Union<T> {
    /// An empty union; must gain at least one alternative via [`Union::or`]
    /// before generating.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one alternative.
    pub fn or(mut self, option: impl Strategy<Value = T> + 'static) -> Self {
        self.options.push(Box::new(option));
        self
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, source: &mut DataSource) -> T {
        assert!(
            !self.options.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let i = source.draw_below(self.options.len() as u64) as usize;
        self.options[i].generate(source)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} options)", self.options.len())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, source: &mut DataSource) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(source),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

thread_local! {
    static SILENCE_PANICS: Cell<bool> = const { Cell::new(false) };
}

/// Installs (once) a panic hook that suppresses reports from expected
/// panics while the runner probes failing cases.
fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Runs `test` on one value, capturing a panic as `Err(message)`.
fn run_case<S: Strategy>(strat: &S, test: &impl Fn(S::Value), words: &[u64]) -> Result<(), String> {
    let mut source = DataSource::replay(words.to_vec());
    let value = strat.generate(&mut source);
    SILENCE_PANICS.with(|s| s.set(true));
    let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
    SILENCE_PANICS.with(|s| s.set(false));
    outcome.map_err(panic_message)
}

/// FNV-1a hash of the test name, for the default base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Shrinker<'a, S: Strategy, F: Fn(S::Value)> {
    strat: &'a S,
    test: &'a F,
    runs: u32,
    max_runs: u32,
}

impl<'a, S: Strategy, F: Fn(S::Value)> Shrinker<'a, S, F> {
    /// Tests a candidate buffer; `Some(message)` if it still fails.
    fn attempt(&mut self, words: &[u64]) -> Option<String> {
        if self.runs >= self.max_runs {
            return None;
        }
        self.runs += 1;
        run_case(self.strat, self.test, words).err()
    }

    fn shrink(&mut self, mut best: Vec<u64>, mut message: String) -> (Vec<u64>, String) {
        loop {
            let mut improved = false;

            // Pass 1: delete blocks of words, large to small. Deleting a
            // span both shortens collections and simplifies whatever the
            // following words used to mean.
            let mut size = (best.len() / 2).max(1);
            loop {
                let mut i = 0;
                while i + size <= best.len() && self.runs < self.max_runs {
                    let mut candidate = best.clone();
                    candidate.drain(i..i + size);
                    if let Some(m) = self.attempt(&candidate) {
                        best = candidate;
                        message = m;
                        improved = true;
                    } else {
                        i += size;
                    }
                }
                if size == 1 {
                    break;
                }
                size /= 2;
            }

            // Pass 2: minimize each word — zero first, then binary search
            // for the smallest still-failing value.
            for i in 0..best.len() {
                if best[i] == 0 || self.runs >= self.max_runs {
                    continue;
                }
                let mut candidate = best.clone();
                candidate[i] = 0;
                if let Some(m) = self.attempt(&candidate) {
                    best = candidate;
                    message = m;
                    improved = true;
                    continue;
                }
                let (mut lo, mut hi) = (1u64, best[i]);
                while lo < hi && self.runs < self.max_runs {
                    let mid = lo + (hi - lo) / 2;
                    let mut candidate = best.clone();
                    candidate[i] = mid;
                    if let Some(m) = self.attempt(&candidate) {
                        hi = mid;
                        message = m;
                    } else {
                        lo = mid + 1;
                    }
                }
                if hi < best[i] {
                    best[i] = hi;
                    improved = true;
                }
            }

            if !improved || self.runs >= self.max_runs {
                break;
            }
        }
        // Trim trailing zeros: replay pads with zeros anyway, so they are
        // pure noise in the report.
        while best.last() == Some(&0) {
            best.pop();
        }
        (best, message)
    }
}

/// Runs a property: `cfg.cases` random cases of `strat`, shrinking and
/// reporting the first failure.
///
/// This is the function the [`properties!`](crate::properties) macro
/// expands into; call it directly for programmatic use.
///
/// # Panics
///
/// Panics (failing the surrounding `#[test]`) if any case fails, after
/// shrinking the counterexample.
pub fn run<S: Strategy>(name: &str, cfg: &PropConfig, strat: &S, test: impl Fn(S::Value)) {
    install_quiet_hook();
    let env_seed = std::env::var("MDS_PROP_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok());
    let base = env_seed.or(cfg.seed).unwrap_or_else(|| name_seed(name));
    let cases = if env_seed.is_some() { 1 } else { cfg.cases };
    for case in 0..cases {
        let case_seed = if env_seed.is_some() {
            base
        } else {
            let mut mix = base ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            splitmix64(&mut mix)
        };
        let mut source = DataSource::live(case_seed);
        let value = strat.generate(&mut source);
        SILENCE_PANICS.with(|s| s.set(true));
        let outcome = catch_unwind(AssertUnwindSafe(|| test(value)));
        SILENCE_PANICS.with(|s| s.set(false));
        if let Err(payload) = outcome {
            let message = panic_message(payload);
            let words = source.record().to_vec();
            let mut shrinker = Shrinker {
                strat,
                test: &test,
                runs: 0,
                max_runs: cfg.max_shrink_iters,
            };
            let (minimal, message) = shrinker.shrink(words, message);
            let shrink_runs = shrinker.runs;
            let minimal_value = strat.generate(&mut DataSource::replay(minimal));
            panic!(
                "property '{name}' failed on case {case} (seed {case_seed}).\n\
                 minimal failing input (after {shrink_runs} shrink runs):\n\
                 {minimal_value:#?}\n\
                 failure: {message}\n\
                 replay this case alone with MDS_PROP_SEED={case_seed}"
            );
        }
    }
}

/// Declares property tests (in-tree replacement for `proptest!`).
///
/// Each `fn` takes arguments of the form `name in strategy` or
/// `name: Type` (shorthand for `name in any::<Type>()`) and becomes a
/// regular `#[test]` running [`run`] over the tuple of strategies. An
/// optional leading `#![config(expr)]` supplies a [`PropConfig`].
///
/// ```
/// use mds_harness::prelude::*;
///
/// // In a test module each `fn` would also carry `#[test]`.
/// properties! {
///     #![config(PropConfig { cases: 16, ..PropConfig::default() })]
///     fn reverse_is_involutive(v in vec_of(any::<u32>(), 0..50)) {
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         prop_assert_eq!(v, w);
///     }
/// }
/// reverse_is_involutive();
/// ```
#[macro_export]
macro_rules! properties {
    (
        #![config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__properties_inner! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__properties_inner! {
            (<$crate::prop::PropConfig as ::core::default::Default>::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __properties_inner {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($args:tt)* ) $body:block
    )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::prop::PropConfig = $cfg;
                $crate::__prop_case! { __cfg, $name, [] [] ($($args)*) $body }
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __prop_case {
    ($cfg:ident, $tname:ident, [$($n:ident)*] [$($s:expr;)*] () $body:block) => {{
        let __strategy = ( $($s,)* );
        $crate::prop::run(
            ::core::stringify!($tname),
            &$cfg,
            &__strategy,
            move |($($n,)*)| $body,
        );
    }};
    ($cfg:ident, $tname:ident, [$($n:ident)*] [$($s:expr;)*] ($arg:ident in $strat:expr, $($rest:tt)*) $body:block) => {
        $crate::__prop_case! { $cfg, $tname, [$($n)* $arg] [$($s;)* $strat;] ($($rest)*) $body }
    };
    ($cfg:ident, $tname:ident, [$($n:ident)*] [$($s:expr;)*] ($arg:ident in $strat:expr) $body:block) => {
        $crate::__prop_case! { $cfg, $tname, [$($n)* $arg] [$($s;)* $strat;] () $body }
    };
    ($cfg:ident, $tname:ident, [$($n:ident)*] [$($s:expr;)*] ($arg:ident : $ty:ty, $($rest:tt)*) $body:block) => {
        $crate::__prop_case! { $cfg, $tname, [$($n)* $arg] [$($s;)* $crate::prop::any::<$ty>();] ($($rest)*) $body }
    };
    ($cfg:ident, $tname:ident, [$($n:ident)*] [$($s:expr;)*] ($arg:ident : $ty:ty) $body:block) => {
        $crate::__prop_case! { $cfg, $tname, [$($n)* $arg] [$($s;)* $crate::prop::any::<$ty>();] () $body }
    };
}

/// Asserts a condition inside a property body (alias of `assert!` whose
/// panic the runner catches and shrinks).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { ::core::assert!($($t)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { ::core::assert_eq!($($t)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { ::core::assert_ne!($($t)*) };
}

/// Builds a [`Union`] strategy choosing uniformly among alternatives.
///
/// ```
/// use mds_harness::prelude::*;
/// let digit_or_big = prop_oneof![0u64..10, 1000u64..2000];
/// # let _ = &digit_or_big;
/// ```
#[macro_export]
macro_rules! prop_oneof {
    ($($option:expr),+ $(,)?) => {
        $crate::prop::Union::new()$(.or($option))+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut source = DataSource::live(1);
        for _ in 0..500 {
            let v = (10u64..20).generate(&mut source);
            assert!((10..20).contains(&v));
            let w = (1u8..=16).generate(&mut source);
            assert!((1..=16).contains(&w));
            let s = (-4i32..4).generate(&mut source);
            assert!((-4..4).contains(&s));
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_stream() {
        let strat = vec_of((0u64..100, any::<bool>()), 0..20);
        let mut live = DataSource::live(77);
        let first = strat.generate(&mut live);
        let words = live.record().to_vec();
        let second = strat.generate(&mut DataSource::replay(words));
        assert_eq!(first, second);
    }

    #[test]
    fn replay_past_end_yields_zeros() {
        let strat = vec_of(0u64..100, 3..4);
        let v = strat.generate(&mut DataSource::replay(vec![]));
        assert_eq!(v, vec![0, 0, 0]);
    }

    #[test]
    fn oneof_and_map_compose() {
        let strat = prop_oneof![(0u32..10).prop_map(|x| x * 2), Just(99u32),];
        let mut source = DataSource::live(5);
        for _ in 0..100 {
            let v = strat.generate(&mut source);
            assert!(v == 99 || (v % 2 == 0 && v < 20), "{v}");
        }
    }

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let counter = std::cell::Cell::new(0u32);
        run(
            "passing",
            &PropConfig {
                cases: 10,
                ..Default::default()
            },
            &(0u64..5),
            |_| {
                counter.set(counter.get() + 1);
            },
        );
        count += counter.get();
        assert_eq!(count, 10);
    }

    #[test]
    fn failing_property_reports_minimal_case() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run("threshold", &PropConfig::default(), &(0u64..1000), |v| {
                assert!(v < 417, "too big");
            });
        }));
        let message = panic_message(result.unwrap_err());
        assert!(
            message.contains("417"),
            "shrinking should reach 417 exactly:\n{message}"
        );
        assert!(message.contains("MDS_PROP_SEED="), "{message}");
    }

    #[test]
    fn failing_vec_property_shrinks_length() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run(
                "vec_len",
                &PropConfig::default(),
                &vec_of(0u64..100, 0..50),
                |v: Vec<u64>| assert!(v.len() < 3, "long vec"),
            );
        }));
        let message = panic_message(result.unwrap_err());
        // Minimal counterexample is a vector of exactly 3 zeros.
        assert!(
            message.contains("0,\n    0,\n    0,\n"),
            "expected [0, 0, 0] in:\n{message}"
        );
    }

    #[test]
    fn option_of_covers_both_variants() {
        let strat = option_of(1u32..5);
        let mut source = DataSource::live(3);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..100 {
            match strat.generate(&mut source) {
                Some(v) => {
                    assert!((1..5).contains(&v));
                    some += 1;
                }
                None => none += 1,
            }
        }
        assert!(some > 20 && none > 20, "{some} Some / {none} None");
    }
}
