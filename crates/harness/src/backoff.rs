//! Capped exponential backoff with deterministic jitter.
//!
//! The retry-delay policy shared by every robustness layer in the
//! workspace: the load generator honoring `503 Retry-After`, the cluster
//! gateway's health prober, and its circuit breaker's open-state
//! cooldown. The schedule is the standard *capped exponential with
//! jitter*: attempt `n` nominally waits `base * 2^n`, clamped to `cap`,
//! and the actual delay is drawn uniformly from the upper half of the
//! nominal window (`[d/2, d]`) so that synchronized clients decorrelate
//! instead of retrying in lockstep (the thundering-herd failure mode).
//!
//! Jitter comes from the in-tree [`Rng`](crate::rng::Rng), so a given
//! seed replays the exact same delay sequence — retry timing in tests is
//! reproducible like everything else in this workspace.
//!
//! # Examples
//!
//! ```
//! use mds_harness::backoff::Backoff;
//! use std::time::Duration;
//!
//! let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(1), 7);
//! let first = b.next_delay();
//! assert!(first >= Duration::from_millis(50) && first <= Duration::from_millis(100));
//! for _ in 0..10 {
//!     assert!(b.next_delay() <= Duration::from_secs(1), "cap always holds");
//! }
//! b.reset(); // a success rewinds the schedule to the base delay
//! assert!(b.next_delay() <= Duration::from_millis(100));
//! ```

use crate::rng::Rng;
use std::time::Duration;

/// Draws a jittered delay uniformly from `[d/2, d]`.
///
/// The upper-half window keeps the mean close to the nominal delay (so a
/// server's `Retry-After` hint is still roughly honored) while spreading
/// synchronized retriers across half the window.
pub fn jittered(d: Duration, rng: &mut Rng) -> Duration {
    let nominal = d.as_micros().min(u64::MAX as u128) as u64;
    if nominal < 2 {
        return d;
    }
    let lo = nominal / 2;
    Duration::from_micros(rng.gen_range(lo..nominal + 1))
}

/// A capped exponential backoff schedule with full-window jitter.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: Rng,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, never
    /// exceeding `cap`. `seed` fixes the jitter stream.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Backoff {
        Backoff {
            base: base.max(Duration::from_micros(1)),
            cap: cap.max(base),
            attempt: 0,
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// The nominal (un-jittered) delay for the next attempt.
    pub fn nominal(&self) -> Duration {
        let shift = self.attempt.min(32);
        self.base
            .checked_mul(1u32 << shift.min(31))
            .map_or(self.cap, |d| d.min(self.cap))
    }

    /// Consecutive failures recorded since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Returns the jittered delay for the next attempt and advances the
    /// schedule.
    pub fn next_delay(&mut self) -> Duration {
        let delay = jittered(self.nominal(), &mut self.rng);
        self.attempt = self.attempt.saturating_add(1);
        delay
    }

    /// Rewinds the schedule to the base delay (call after a success).
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_doubles_then_caps() {
        let b = |attempt| {
            let mut s = Backoff::new(Duration::from_millis(10), Duration::from_millis(65), 1);
            s.attempt = attempt;
            s.nominal()
        };
        assert_eq!(b(0), Duration::from_millis(10));
        assert_eq!(b(1), Duration::from_millis(20));
        assert_eq!(b(2), Duration::from_millis(40));
        assert_eq!(b(3), Duration::from_millis(65)); // capped
        assert_eq!(b(31), Duration::from_millis(65)); // no overflow
    }

    #[test]
    fn delays_stay_in_the_jitter_window_and_replay_by_seed() {
        let mut a = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), 42);
        let mut b = Backoff::new(Duration::from_millis(100), Duration::from_secs(2), 42);
        for _ in 0..12 {
            let nominal = a.nominal();
            let d = a.next_delay();
            assert!(d >= nominal / 2 && d <= nominal, "{d:?} vs {nominal:?}");
            assert_eq!(d, b.next_delay(), "same seed replays the same delays");
        }
        a.reset();
        assert_eq!(a.attempt(), 0);
        assert!(a.next_delay() <= Duration::from_millis(100));
    }

    #[test]
    fn jittered_handles_degenerate_durations() {
        let mut rng = Rng::seed_from_u64(3);
        assert_eq!(jittered(Duration::ZERO, &mut rng), Duration::ZERO);
        assert_eq!(
            jittered(Duration::from_micros(1), &mut rng),
            Duration::from_micros(1)
        );
    }
}
