//! Shared observability primitives: a lock-free fixed-bucket latency
//! histogram with a Prometheus text rendering.
//!
//! Extracted from `mds-serve` so that every serving tier (the single-node
//! server, the cluster gateway, benches) records latency the same way and
//! renders byte-compatible `/metrics` families. Recording is a handful of
//! relaxed atomic adds, so it never blocks a request-path worker.

use std::sync::atomic::{AtomicU64, Ordering};

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// implicit `+Inf`.
pub const BUCKET_BOUNDS_US: [u64; 8] = [
    100, 500, 1_000, 5_000, 10_000, 100_000, 1_000_000, 10_000_000,
];

/// A fixed-bucket latency histogram in microseconds.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKET_BOUNDS_US.len() + 1],
    sum_us: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe_us(&self, us: u64) {
        let idx = BUCKET_BOUNDS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(BUCKET_BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations, µs.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Renders a Prometheus histogram (cumulative `le` buckets) into
    /// `out`.
    pub fn render_prometheus(&self, name: &str, help: &str, out: &mut String) {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} histogram\n"));
        let mut cumulative = 0u64;
        for (i, &bound) in BUCKET_BOUNDS_US.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            out.push_str(&format!("{name}_bucket{{le=\"{bound}\"}} {cumulative}\n"));
        }
        cumulative += self.buckets[BUCKET_BOUNDS_US.len()].load(Ordering::Relaxed);
        out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cumulative}\n"));
        out.push_str(&format!("{name}_sum {}\n", self.sum_us()));
        out.push_str(&format!("{name}_count {}\n", self.count()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe_us(50); // le=100
        h.observe_us(700); // le=1000
        h.observe_us(99_000_000); // +Inf
        let mut out = String::new();
        h.render_prometheus("t", "test", &mut out);
        assert!(out.contains("t_bucket{le=\"100\"} 1\n"), "{out}");
        assert!(out.contains("t_bucket{le=\"1000\"} 2\n"), "{out}");
        assert!(out.contains("t_bucket{le=\"+Inf\"} 3\n"), "{out}");
        assert!(out.contains("t_count 3\n"), "{out}");
        assert_eq!(h.sum_us(), 50 + 700 + 99_000_000);
        assert_eq!(h.count(), 3);
    }
}
