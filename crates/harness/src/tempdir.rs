//! Unique scratch directories for tests and benches, removed on drop.
//!
//! Tests that create on-disk state (store directories, result dirs) must
//! be rerun-safe in a dirty workspace: two `cargo test -q` runs, or two
//! tests in one run, must never share a directory. [`TempDir`] makes a
//! fresh directory under the system temp root, named from the prefix,
//! the process id, and a process-wide counter, and removes it
//! recursively when dropped.
//!
//! ```
//! use mds_harness::tempdir::TempDir;
//!
//! let tmp = TempDir::new("doc-example").unwrap();
//! std::fs::write(tmp.path().join("scratch.txt"), "hello").unwrap();
//! // the directory and its contents vanish when `tmp` drops
//! ```

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A uniquely named scratch directory, deleted recursively on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates `<system-temp>/<prefix>-<pid>-<n>` where `n` is a
    /// process-wide counter. Retries past a leftover directory of the
    /// same name (a previous run's corpse) by bumping the counter.
    pub fn new(prefix: &str) -> std::io::Result<TempDir> {
        let pid = std::process::id();
        loop {
            let n = COUNTER.fetch_add(1, Ordering::Relaxed);
            let path = std::env::temp_dir().join(format!("{prefix}-{pid}-{n}"));
            match std::fs::create_dir(&path) {
                Ok(()) => return Ok(TempDir { path }),
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// A path inside the directory — shorthand for `path().join(name)`.
    pub fn join(&self, name: &str) -> PathBuf {
        self.path.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        // Best-effort: a failed cleanup must not turn a passing test
        // into a panic-in-drop abort.
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directories_are_unique_and_removed_on_drop() {
        let a = TempDir::new("mds-tempdir-test").unwrap();
        let b = TempDir::new("mds-tempdir-test").unwrap();
        assert_ne!(a.path(), b.path());
        assert!(a.path().is_dir() && b.path().is_dir());
        let (pa, pb) = (a.path().to_path_buf(), b.path().to_path_buf());
        std::fs::write(a.join("nested.txt"), "x").unwrap();
        drop(a);
        drop(b);
        assert!(
            !pa.exists(),
            "dropped dir must be removed, contents and all"
        );
        assert!(!pb.exists());
    }
}
