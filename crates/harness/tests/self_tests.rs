//! End-to-end self-tests for the dev harness: the reproducibility,
//! shrinking, and serialization guarantees the rest of the workspace
//! relies on.

use mds_harness::bench::{BenchConfig, BenchReport, BenchResult};
use mds_harness::json::{FromJson, Json, ToJson};
use mds_harness::prelude::*;
use mds_harness::prop;
use mds_harness::rng::Rng;
use std::panic::catch_unwind;

// --- PRNG reproducibility ---------------------------------------------

#[test]
fn prng_is_reproducible_for_any_seed() {
    for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
        let a: Vec<u64> = {
            let mut rng = Rng::seed_from_u64(seed);
            (0..256).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = Rng::seed_from_u64(seed);
            (0..256).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b, "seed {seed} must replay identically");
    }
}

#[test]
fn prng_distinct_seeds_are_decorrelated() {
    let mut streams: Vec<Vec<u64>> = (0..8u64)
        .map(|seed| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..32).map(|_| rng.next_u64()).collect()
        })
        .collect();
    streams.sort();
    streams.dedup();
    assert_eq!(
        streams.len(),
        8,
        "consecutive seeds must give distinct streams"
    );
}

// --- Property runner and shrinking ------------------------------------

fn failure_message(f: impl Fn() + std::panic::UnwindSafe) -> String {
    let payload = catch_unwind(f).expect_err("property should fail");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("non-string panic payload")
    }
}

#[test]
fn shrinking_converges_to_minimal_scalar() {
    let msg = failure_message(|| {
        prop::run(
            "minimal_scalar",
            &PropConfig::default(),
            &(0u64..100_000),
            |v| assert!(v < 7777, "got {v}"),
        );
    });
    // The minimal counterexample is exactly the boundary value.
    assert!(
        msg.contains("7777"),
        "expected boundary 7777 in report:\n{msg}"
    );
    assert!(msg.contains("minimal failing input"), "{msg}");
    assert!(msg.contains("MDS_PROP_SEED="), "{msg}");
}

#[test]
fn shrinking_converges_to_minimal_vec() {
    let msg = failure_message(|| {
        prop::run(
            "minimal_vec",
            &PropConfig::default(),
            &vec_of(0u64..1000, 0..50),
            |v: Vec<u64>| assert!(v.iter().all(|&x| x < 100)),
        );
    });
    // Minimal counterexample: a single-element vector holding exactly the
    // smallest offending value.
    assert!(
        msg.contains("[\n    100,\n]"),
        "expected the one-element vector [100] in report:\n{msg}"
    );
}

#[test]
fn failing_runs_are_reproducible_with_a_pinned_seed() {
    let cfg = PropConfig {
        seed: Some(12345),
        ..PropConfig::default()
    };
    let run_once = || {
        failure_message(|| {
            prop::run("pinned_seed", &cfg, &(0u64..1_000_000), |v| {
                assert!(v % 3 != 0)
            });
        })
    };
    assert_eq!(
        run_once(),
        run_once(),
        "same seed must reproduce the same report"
    );
}

#[test]
fn passing_properties_run_quietly() {
    prop::run("tautology", &PropConfig::default(), &any::<u64>(), |v| {
        assert_eq!(v, v);
    });
}

// The macro surface, exercised from outside the defining crate (this is
// what every other crate's test modules use).
properties! {
    #![config(PropConfig { cases: 32, ..PropConfig::default() })]

    #[test]
    fn macro_tuple_and_shorthand_args(a in 0u32..100, b: bool) {
        prop_assert!(a < 100);
        let _ = b;
    }

    #[test]
    fn macro_composite_strategies(
        v in vec_of(prop_oneof![Just(1u8), Just(2u8)], 0..10),
        o in option_of(any::<u16>()),
    ) {
        prop_assert!(v.iter().all(|&x| x == 1 || x == 2));
        let _ = o;
    }
}

// --- JSON writer/parser round-trip ------------------------------------

/// Strings mixing ASCII, escapes, and non-ASCII code points.
fn arb_string() -> impl Strategy<Value = String> {
    vec_of(
        prop_oneof![
            0x20u32..0x7f,
            Just(0x09u32),
            Just(0x0au32),
            Just(0x22u32),
            Just(0x5cu32),
            Just(0x3c0u32), // π
        ],
        0..8,
    )
    .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
}

/// Arbitrary documents in the writer's canonical form: `Int` only for
/// negatives (the writer normalizes non-negatives to `UInt`) and finite
/// floats (non-finite ones serialize as `null` by design).
fn arb_json(depth: usize) -> Union<Json> {
    let mut u = Union::new()
        .or(Just(Json::Null))
        .or(any::<bool>().prop_map(Json::Bool))
        .or(any::<u64>().prop_map(Json::UInt))
        .or((i64::MIN..0).prop_map(Json::Int))
        .or(any::<i64>().prop_map(|m| Json::Float(m as f64 / 4096.0)))
        .or(arb_string().prop_map(Json::Str));
    if depth > 0 {
        u = u
            .or(vec_of(arb_json(depth - 1), 0..4).prop_map(Json::Array))
            .or(vec_of((arb_string(), arb_json(depth - 1)), 0..4).prop_map(Json::Object));
    }
    u
}

properties! {
    #![config(PropConfig { cases: 128, ..PropConfig::default() })]

    #[test]
    fn json_documents_round_trip_compact(doc in arb_json(3)) {
        prop_assert_eq!(Json::parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn json_documents_round_trip_pretty(doc in arb_json(3)) {
        prop_assert_eq!(Json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn typed_values_survive_serialize_then_decode(
        n: u64,
        i: i64,
        b: bool,
        s in arb_string(),
        v in vec_of(any::<u64>(), 0..6),
    ) {
        prop_assert_eq!(u64::from_json(&n.to_json()).unwrap(), n);
        prop_assert_eq!(i64::from_json(&i.to_json()).unwrap(), i);
        prop_assert_eq!(bool::from_json(&b.to_json()).unwrap(), b);
        let f = i as f64 / 4096.0;
        prop_assert_eq!(f64::from_json(&f.to_json()).unwrap(), f);
        prop_assert_eq!(String::from_json(&s.to_json()).unwrap(), s);
        prop_assert_eq!(Vec::<u64>::from_json(&v.to_json()).unwrap(), v);
    }
}

// --- Bench JSON round-trip --------------------------------------------

#[test]
fn bench_report_round_trips_through_json() {
    let report = BenchReport {
        suite: "selftest".into(),
        scale: "small".into(),
        config: BenchConfig::default(),
        results: vec![BenchResult {
            name: "roundtrip".into(),
            iters_per_batch: 4096,
            batches: 25,
            median_ns: 17.5,
            mad_ns: 0.25,
            min_ns: 16.0,
            max_ns: 21.75,
            throughput_elems: Some(1_000_000),
        }],
    };
    let parsed = BenchReport::parse(&report.to_json().pretty()).unwrap();
    assert_eq!(parsed, report);
    assert_eq!(
        parsed.results[0].elems_per_sec(),
        report.results[0].elems_per_sec()
    );
}

#[test]
fn committed_baselines_parse() {
    // The BENCH_*.json files at the workspace root are the canonical
    // performance record; they must stay readable by the in-tree parser.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    for suite in ["structures", "simulators"] {
        let path = root.join(format!("BENCH_{suite}.json"));
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing baseline {}: {e}", path.display()));
        let report = BenchReport::parse(&text)
            .unwrap_or_else(|e| panic!("unparseable baseline {}: {e}", path.display()));
        assert_eq!(report.suite, suite);
        assert!(!report.results.is_empty(), "empty baseline {suite}");
    }
}
