//! The checked-in example specs: their declared expectation bounds hold,
//! and one compiled program per spec is pinned as a golden file.
//!
//! The golden files make lowering drift loud: any change to instruction
//! selection, sampling order, or initial-data layout shows up as a
//! golden diff (re-bless with `MDS_WDL_BLESS=1 cargo test -p mds-wdl
//! --test examples` and review it like any other behavioral change).

use mds_core::Policy;
use mds_multiscalar::{MsConfig, Multiscalar};
use mds_wdl::{expand, parse_spec, Spec};
use mds_workloads::Scale;
use std::path::PathBuf;

const EXAMPLES: [&str; 3] = ["compress_like", "fpppp_like", "swim_like"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root")
}

fn load_example(name: &str) -> Spec {
    let path = repo_root().join(format!("examples/{name}.wdl"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    parse_spec(&src).unwrap_or_else(|d| panic!("{}", d.render(&path.display().to_string())))
}

#[test]
fn example_specs_parse_and_declare_expectations() {
    for name in EXAMPLES {
        let spec = load_example(name);
        assert_eq!(spec.scenarios.len(), 1, "{name}: one scenario per example");
        assert_eq!(spec.scenarios[0].name, name);
        assert!(
            spec.scenarios[0].expect_misspec_per_load.is_some(),
            "{name}: examples must declare expect_misspec_per_load"
        );
    }
}

#[test]
fn declared_misspec_bounds_hold_across_the_family() {
    for name in EXAMPLES {
        let spec = load_example(name);
        let s = &spec.scenarios[0];
        let (lo, hi) = s.expect_misspec_per_load.expect("declared");
        for inst in expand(s, 0, 3) {
            let program = mds_wdl::compile(&inst, Scale::Tiny);
            let r = Multiscalar::new(MsConfig::paper(8, Policy::Always))
                .run(&program)
                .expect("example simulates");
            let per_load = r.misspec_per_committed_load();
            assert!(
                (lo..=hi).contains(&per_load),
                "{}: ALWAYS misspec/load {per_load:.4} outside declared [{lo}, {hi}]",
                inst.name()
            );
        }
    }
}

#[test]
fn swim_like_is_squash_free_under_every_policy() {
    let spec = load_example("swim_like");
    let inst = &expand(&spec.scenarios[0], 0, 1)[0];
    let program = mds_wdl::compile(inst, Scale::Tiny);
    for policy in [
        Policy::Never,
        Policy::Always,
        Policy::Sync,
        Policy::Esync,
        Policy::PSync,
    ] {
        let r = Multiscalar::new(MsConfig::paper(8, policy))
            .run(&program)
            .expect("simulates");
        assert_eq!(r.misspeculations, 0, "{policy}: streaming must not squash");
    }
}

/// The pinned textual form: member 0 of each example at tiny scale —
/// a data fingerprint line plus the full disassembly.
fn golden_dump(name: &str) -> String {
    let spec = load_example(name);
    let inst = &expand(&spec.scenarios[0], 0, 1)[0];
    let program = mds_wdl::compile(inst, Scale::Tiny);
    let data: Vec<u8> = program
        .initial_data()
        .flat_map(|(addr, word): (u64, u64)| {
            let mut bytes = addr.to_le_bytes().to_vec();
            bytes.extend_from_slice(&word.to_le_bytes());
            bytes
        })
        .collect();
    format!(
        "# {} @ tiny\n# canonical: {}\n# data fnv1a: {:016x}\n{}",
        inst.name(),
        inst.canonical(),
        mds_wdl::generate::fnv1a(&data),
        program.disassemble()
    )
}

#[test]
fn golden_programs_are_pinned() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    let bless = std::env::var_os("MDS_WDL_BLESS").is_some();
    for name in EXAMPLES {
        let path = dir.join(format!("{name}.txt"));
        let actual = golden_dump(name);
        if bless {
            std::fs::create_dir_all(&dir).expect("golden dir");
            std::fs::write(&path, &actual).expect("bless golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "read {}: {e}\n(bless with MDS_WDL_BLESS=1 cargo test -p mds-wdl --test examples)",
                path.display()
            )
        });
        assert_eq!(
            actual, expected,
            "{name}: compiled program drifted from the golden file; if the \
             change is intentional re-bless with MDS_WDL_BLESS=1 and review \
             the diff"
        );
    }
}
