//! Generative policy-ordering properties over sampled WDL scenarios.
//!
//! The hand-written suites test the paper's claims at 23 points; this
//! suite asserts them across hundreds of *sampled* points in workload
//! space per run (224 scenarios at the default configuration, each
//! compiled at tiny scale and simulated under up to five policies):
//!
//! - **NEVER is squash-free** — refusing to speculate can serialize but
//!   never mis-speculates, on any phenotype;
//! - **synchronization never increases squashes** — SYNC and ESYNC
//!   mis-speculation counts never exceed blind speculation's (ALWAYS),
//!   the core table-8 ordering;
//! - **oracle synchronization orders ALWAYS on high-conflict families**
//!   — with ≥30% dependence mass at co-resident distances, PSYNC's
//!   cycle count stays within a whisker of (and usually beats) blind
//!   speculation;
//! - **generation is deterministic** — same `(spec, seed, index)`
//!   compiles to byte-identical programs; distinct members get distinct
//!   fingerprints.
//!
//! Seeds replay exactly like every other `properties!` suite
//! (`MDS_PROP_SEED=<hex> cargo test -p mds-wdl --test policy_props`).

use mds_core::Policy;
use mds_harness::prelude::*;
use mds_multiscalar::{MsConfig, MsResult, Multiscalar};
use mds_wdl::Instance;
use mds_workloads::Scale;

/// Renders a scenario from sampled raw knobs and resolves member 0.
///
/// Going through the *text* format on every case means the parser and
/// validator are fuzzed with structurally valid specs for free.
#[allow(clippy::too_many_arguments)]
fn sample_instance(
    seed: u64,
    tasks: u64,
    edges: u64,
    loc_pct: u64,
    path_pct: u64,
    fp_pct: u64,
    mass_pct: u64,
    dist_picks: &[u64],
    max_distance: u64,
) -> Instance {
    let dist_line = if mass_pct == 0 {
        // Zero dependence mass: a pure-independent scenario with no
        // distances block at all (a zero probability would be invalid).
        String::new()
    } else {
        let dists: Vec<String> = dist_picks
            .iter()
            .enumerate()
            .map(|(i, &pick)| {
                // Spread picks over disjoint bands so distances are unique.
                let band = (max_distance / dist_picks.len() as u64).max(1);
                let d = (i as u64 * band + pick % band + 1).min(48);
                format!(
                    "{d}: {:.4}",
                    mass_pct as f64 / 100.0 / dist_picks.len() as f64
                )
            })
            .collect();
        format!("distances = {{ {} }}\n", dists.join(", "))
    };
    let src = format!(
        "scenario sampled {{\n\
           seed = {seed}\n\
           tasks = {tasks}\n\
           edges = {edges}\n\
           locality = 0.{loc_pct:02}\n\
           path_dep = 0.{path_pct:02}\n\
           fp = 0.{fp_pct:02}\n\
           {dist_line}\
         }}",
    );
    let spec = mds_wdl::parse_spec(&src).expect("sampled spec parses");
    mds_wdl::instantiate(&spec.scenarios[0], seed ^ 0xfa51, 0)
}

fn run(inst: &Instance, policy: Policy) -> MsResult {
    let program = mds_wdl::compile(inst, Scale::Tiny);
    Multiscalar::new(MsConfig::paper(8, policy))
        .run(&program)
        .expect("generated program simulates")
}

properties! {
    #![config(PropConfig { cases: 112, ..PropConfig::default() })]

    /// NEVER never squashes, and synchronizing policies never squash
    /// more than blind speculation, on any sampled phenotype.
    #[test]
    fn synchronization_never_increases_squashes(
        seed in any::<u64>(),
        shape in (1024u64..4097, 1u64..33, 50u64..100),
        rates in (0u64..51, 0u64..100, 0u64..61),
        dist_picks in vec_of(0u64..48, 1usize..4),
    ) {
        let (tasks, edges, loc_pct) = shape;
        let (path_pct, fp_pct, mass_pct) = rates;
        let inst = sample_instance(
            seed, tasks, edges, loc_pct, path_pct, fp_pct, mass_pct,
            &dist_picks, 48,
        );
        let never = run(&inst, Policy::Never);
        let always = run(&inst, Policy::Always);
        let sync = run(&inst, Policy::Sync);
        let esync = run(&inst, Policy::Esync);
        prop_assert_eq!(never.misspeculations, 0);
        prop_assert!(
            sync.misspeculations <= always.misspeculations,
            "SYNC {} > ALWAYS {} on {}",
            sync.misspeculations,
            always.misspeculations,
            inst.canonical()
        );
        prop_assert!(
            esync.misspeculations <= always.misspeculations,
            "ESYNC {} > ALWAYS {} on {}",
            esync.misspeculations,
            always.misspeculations,
            inst.canonical()
        );
    }
}

properties! {
    #![config(PropConfig { cases: 64, ..PropConfig::default() })]

    /// On high-conflict families (≥30% dependence mass, co-resident
    /// distances), oracle pair synchronization is at least as fast as
    /// blind speculation, within the repo's 2% timing-model tolerance.
    #[test]
    fn psync_orders_always_on_high_conflict(
        seed in any::<u64>(),
        tasks in 1024u64..4097,
        edges in 1u64..17,
        loc_pct in 70u64..100,
        mass_pct in 30u64..61,
        dist_picks in vec_of(0u64..7, 1usize..3),
    ) {
        let inst = sample_instance(
            seed, tasks, edges, loc_pct, 0, 0, mass_pct, &dist_picks, 7,
        );
        let always = run(&inst, Policy::Always);
        let psync = run(&inst, Policy::PSync);
        prop_assert!(
            (psync.cycles as f64) <= always.cycles as f64 * 1.02 + 8.0,
            "PSYNC {} cycles vs ALWAYS {} on {}",
            psync.cycles,
            always.cycles,
            inst.canonical()
        );
    }
}

properties! {
    #![config(PropConfig { cases: 48, ..PropConfig::default() })]

    /// Same identity compiles byte-identical; sibling members differ.
    #[test]
    fn generation_is_deterministic(
        seed in any::<u64>(),
        tasks in 1024u64..4097,
        edges in 1u64..33,
        mass_pct in 0u64..61,
        dist_picks in vec_of(0u64..48, 1usize..4),
    ) {
        let inst = sample_instance(
            seed, tasks, edges, 90, 10, 25, mass_pct, &dist_picks, 48,
        );
        let a = mds_wdl::compile(&inst, Scale::Tiny);
        let b = mds_wdl::compile(&inst, Scale::Tiny);
        prop_assert_eq!(a.instructions(), b.instructions());
        prop_assert_eq!(
            a.initial_data().collect::<Vec<_>>(),
            b.initial_data().collect::<Vec<_>>()
        );
        // A sibling member must carry a distinct identity.
        let src = format!(
            "scenario sampled {{ seed = {seed} tasks = {tasks} }}"
        );
        let spec = mds_wdl::parse_spec(&src).unwrap();
        let m0 = mds_wdl::instantiate(&spec.scenarios[0], 1, 0);
        let m1 = mds_wdl::instantiate(&spec.scenarios[0], 1, 1);
        prop_assert!(m0.fingerprint() != m1.fingerprint());
        prop_assert!(m0.member_seed != m1.member_seed);
    }
}
