//! Positioned diagnostics for WDL specs.
//!
//! Every error the pipeline can produce — lexing, parsing, validation —
//! carries a source position (1-based line/column) and, where one exists,
//! the *field path* it concerns (e.g. `compress_like.distances`), in the
//! style of the decoder errors elsewhere in the workspace: one precise,
//! self-contained message per failure, surfaced on the first error.

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number (in characters), starting at 1.
    pub col: u32,
}

impl Pos {
    /// The start of the file.
    pub const START: Pos = Pos { line: 1, col: 1 };
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// A positioned WDL diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diag {
    /// Where the offending token or field starts.
    pub pos: Pos,
    /// Dotted field path (`scenario.field`), empty when the error is
    /// purely syntactic.
    pub path: String,
    /// What went wrong and, where possible, what would be accepted.
    pub msg: String,
}

impl Diag {
    /// A syntax-level diagnostic with no field path.
    pub fn syntax(pos: Pos, msg: impl Into<String>) -> Self {
        Diag {
            pos,
            path: String::new(),
            msg: msg.into(),
        }
    }

    /// A validation diagnostic anchored to a field path.
    pub fn field(pos: Pos, path: impl Into<String>, msg: impl Into<String>) -> Self {
        Diag {
            pos,
            path: path.into(),
            msg: msg.into(),
        }
    }

    /// Renders with a file name prefix: `file:line:col: [path:] msg`.
    pub fn render(&self, file: &str) -> String {
        format!("{file}:{self}")
    }
}

impl std::fmt::Display for Diag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.path.is_empty() {
            write!(f, "{}: {}", self.pos, self.msg)
        } else {
            write!(f, "{}: {}: {}", self.pos, self.path, self.msg)
        }
    }
}

impl std::error::Error for Diag {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_with_and_without_path() {
        let d = Diag::syntax(Pos { line: 3, col: 7 }, "unexpected `}`");
        assert_eq!(d.to_string(), "3:7: unexpected `}`");
        let d = Diag::field(Pos { line: 4, col: 3 }, "s.edges", "must be 1..=64");
        assert_eq!(d.render("a.wdl"), "a.wdl:4:3: s.edges: must be 1..=64");
    }
}
