//! The validated, typed IR a parsed spec lowers into.
//!
//! Invariants established by the parser (and relied on by the lowerer —
//! see `lower.rs`):
//!
//! - scenario and trace names are unique within a spec;
//! - `tasks` ∈ 64..=1 048 576, `edges` ∈ 1..=64, range knobs have
//!   `lo <= hi`;
//! - dependence distances are unique, ∈ 1..=48 (strictly inside the
//!   64-slot communication ring), with positive probabilities summing to
//!   at most 1 — the residual mass is dependence-free tasks;
//! - task-size weights are non-negative with a positive sum;
//! - scalar knobs (`locality`, `path_dep`, `fp`) lie in [0, 1];
//! - traces are non-empty, start with a task event, and hold at most
//!   65 536 events.

use crate::diag::Pos;

/// An integer knob: constant when `lo == hi`, else sampled uniformly
/// from `lo..=hi` per family member.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UKnob {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

impl UKnob {
    /// A constant knob.
    pub const fn of(v: u64) -> Self {
        UKnob { lo: v, hi: v }
    }
}

/// A real-valued knob: constant when `lo == hi`, else sampled uniformly
/// from `[lo, hi]` per family member.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FKnob {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl FKnob {
    /// A constant knob.
    pub const fn of(v: f64) -> Self {
        FKnob { lo: v, hi: v }
    }
}

/// Relative weights of the three task-size classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SizeMix {
    /// ~15-instruction tasks.
    pub small: f64,
    /// ~45-instruction tasks.
    pub medium: f64,
    /// ~130-instruction tasks.
    pub large: f64,
}

impl SizeMix {
    /// The default mix, roughly matching the hand-written int suites.
    pub const DEFAULT: SizeMix = SizeMix {
        small: 0.55,
        medium: 0.30,
        large: 0.15,
    };
}

/// A validated scenario block: one point (or family, when knobs are
/// ranges) in dependence-phenotype space.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (unique within the spec).
    pub name: String,
    /// Where the block starts, for diagnostics.
    pub pos: Pos,
    /// Base seed; combined with the family seed and member index.
    pub seed: u64,
    /// Base dynamic task count, scaled by `Scale::iterations`.
    pub tasks: UKnob,
    /// Task-size class weights.
    pub task_size: SizeMix,
    /// Dependence-distance distribution `(distance, probability)`,
    /// sorted by distance. Residual mass = independent tasks.
    pub distances: Vec<(u32, f64)>,
    /// Number of static dependence edges (distinct store/load PC pairs).
    pub edges: UKnob,
    /// Fraction of dependence traffic hitting the hot address region
    /// (the rest churns through a scrambled alias region).
    pub locality: FKnob,
    /// Fraction of consumer loads issued from an alternate (path-
    /// dependent) load PC within their edge.
    pub path_dep: FKnob,
    /// Fraction of filler work using the FP pipeline.
    pub fp: FKnob,
    /// Declared bounds on ALWAYS-policy mis-speculations per committed
    /// load; checked by example-spec tests, ignored by lowering.
    pub expect_misspec_per_load: Option<(f64, f64)>,
}

impl Scenario {
    /// A scenario with every knob at its default, as produced by an
    /// empty `scenario name {}` block.
    pub fn with_defaults(name: String, pos: Pos) -> Self {
        Scenario {
            name,
            pos,
            seed: 1,
            tasks: UKnob::of(4096),
            task_size: SizeMix::DEFAULT,
            distances: Vec::new(),
            edges: UKnob::of(1),
            locality: FKnob::of(1.0),
            path_dep: FKnob::of(0.0),
            fp: FKnob::of(0.0),
            expect_misspec_per_load: None,
        }
    }

    /// Total probability mass on dependence-carrying tasks.
    pub fn conflict_mass(&self) -> f64 {
        self.distances.iter().map(|&(_, p)| p).sum()
    }
}

/// One event of an imported dependence stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task boundary.
    Task,
    /// A load from the given (abstract) address.
    Load(u64),
    /// A store to the given (abstract) address.
    Store(u64),
}

/// A validated imported trace block.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDef {
    /// Trace name (unique within the spec).
    pub name: String,
    /// Where the block starts, for diagnostics.
    pub pos: Pos,
    /// The event stream; starts with [`TraceEvent::Task`].
    pub events: Vec<TraceEvent>,
}

/// A whole parsed spec file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Spec {
    /// Scenario blocks, in file order.
    pub scenarios: Vec<Scenario>,
    /// Trace blocks, in file order.
    pub traces: Vec<TraceDef>,
}

impl Spec {
    /// Looks up a scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&Scenario> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

/// Maximum dependence distance a scenario may declare (strictly inside
/// the lowerer's 64-slot ring so a slot is never overwritten before its
/// consumer reads it).
pub const MAX_DISTANCE: u32 = 48;

/// Maximum static dependence edges per scenario.
pub const MAX_EDGES: u64 = 64;

/// Bounds on the base task count.
pub const TASKS_RANGE: (u64, u64) = (64, 1 << 20);

/// Maximum events in an imported trace.
pub const MAX_TRACE_EVENTS: usize = 1 << 16;
