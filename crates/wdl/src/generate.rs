//! Seeded family expansion: a scenario (whose knobs may be ranges)
//! becomes `count` concrete [`Instance`]s, each a reproducible point in
//! workload space.
//!
//! # Identity
//!
//! `(spec, seed, scale)` is the canonical identity of a generated
//! workload. A member's sampling stream is seeded from
//! `(scenario.seed, family_seed, index)` only — never from ambient
//! state — so the same spec text and seeds always yield the same
//! instances, the same programs, and therefore the same bytes through
//! the trace cache and the repro pipeline. The registry fingerprint
//! (FNV-1a over the instance's canonical rendering, with float knobs
//! hashed by bit pattern) makes any drift a hard registration error
//! rather than silent cache aliasing.

use crate::diag::Diag;
use crate::ir::{Scenario, SizeMix, Spec};
use crate::lower;
use mds_harness::rng::{splitmix64, Rng};
use mds_workloads::{GeneratedSpec, RegistryError, Workload};
use std::sync::Arc;

/// A fully concrete scenario member: every knob resolved to a value.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The scenario this member was sampled from.
    pub scenario: String,
    /// The family seed supplied at expansion time.
    pub family_seed: u64,
    /// Member index within the family.
    pub index: u32,
    /// Derived seed for initial data and the counter salt.
    pub member_seed: u64,
    /// Base dynamic task count (scaled by `Scale::iterations`).
    pub tasks: u64,
    /// Task-size class weights.
    pub task_size: SizeMix,
    /// Dependence-distance distribution, sorted by distance.
    pub distances: Vec<(u32, f64)>,
    /// Static dependence edges.
    pub edges: u64,
    /// Hot-region fraction of dependence traffic.
    pub locality: f64,
    /// Alternate-load-PC fraction.
    pub path_dep: f64,
    /// FP filler fraction.
    pub fp: f64,
}

impl Instance {
    /// The registry name: `wdl/<scenario>/s<family_seed>/<index>`.
    pub fn name(&self) -> String {
        format!("wdl/{}/s{}/{}", self.scenario, self.family_seed, self.index)
    }

    /// Canonical rendering — the fingerprint input, also shown by
    /// `repro wdl expand`.
    pub fn canonical(&self) -> String {
        let dists: Vec<String> = self
            .distances
            .iter()
            .map(|&(d, p)| format!("{d}:{:016x}", p.to_bits()))
            .collect();
        format!(
            "wdl1 scenario={} family={} index={} member={} tasks={} \
             size={:016x}/{:016x}/{:016x} dist=[{}] edges={} loc={:016x} \
             path={:016x} fp={:016x}",
            self.scenario,
            self.family_seed,
            self.index,
            self.member_seed,
            self.tasks,
            self.task_size.small.to_bits(),
            self.task_size.medium.to_bits(),
            self.task_size.large.to_bits(),
            dists.join(","),
            self.edges,
            self.locality.to_bits(),
            self.path_dep.to_bits(),
            self.fp.to_bits(),
        )
    }

    /// FNV-1a fingerprint of [`Instance::canonical`].
    pub fn fingerprint(&self) -> u64 {
        fnv1a(self.canonical().as_bytes())
    }

    /// Phenotype one-liner for `repro list`.
    pub fn phenotype(&self) -> String {
        let dists: Vec<String> = self
            .distances
            .iter()
            .map(|&(d, p)| format!("{d}:{p:.3}"))
            .collect();
        format!(
            "{} edges, dist {{{}}}, locality {:.2}, path-dep {:.2}, fp {:.2}",
            self.edges,
            dists.join(", "),
            self.locality,
            self.path_dep,
            self.fp
        )
    }
}

/// FNV-1a 64-bit hash.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolves member `index` of the family `(scenario, family_seed)`.
pub fn instantiate(s: &Scenario, family_seed: u64, index: u32) -> Instance {
    // Mix the three identity components through splitmix so families
    // with related seeds do not produce correlated sampling streams.
    let mut state = s.seed;
    let a = splitmix64(&mut state);
    let mut state = family_seed ^ a;
    let b = splitmix64(&mut state);
    let mut state = u64::from(index).wrapping_add(b);
    let mixed = splitmix64(&mut state);
    let mut rng = Rng::seed_from_u64(mixed);
    // Sampling order is fixed; changing it is a breaking format change.
    let sample_u = |rng: &mut Rng, lo: u64, hi: u64| {
        if lo == hi {
            lo
        } else {
            rng.gen_range(lo..hi + 1)
        }
    };
    let sample_f = |rng: &mut Rng, lo: f64, hi: f64| {
        if lo >= hi {
            lo
        } else {
            rng.gen_range(lo..hi)
        }
    };
    let tasks = sample_u(&mut rng, s.tasks.lo, s.tasks.hi);
    let edges = sample_u(&mut rng, s.edges.lo, s.edges.hi);
    let locality = sample_f(&mut rng, s.locality.lo, s.locality.hi);
    let path_dep = sample_f(&mut rng, s.path_dep.lo, s.path_dep.hi);
    let fp = sample_f(&mut rng, s.fp.lo, s.fp.hi);
    let member_seed = rng.gen::<u64>();
    Instance {
        scenario: s.name.clone(),
        family_seed,
        index,
        member_seed,
        tasks,
        task_size: s.task_size,
        distances: s.distances.clone(),
        edges,
        locality,
        path_dep,
        fp,
    }
}

/// Expands the first `count` members of a scenario family.
pub fn expand(s: &Scenario, family_seed: u64, count: u32) -> Vec<Instance> {
    (0..count).map(|i| instantiate(s, family_seed, i)).collect()
}

/// Registers every scenario member and every imported trace of a spec
/// with the dynamic workload registry, returning the workloads in spec
/// order (scenarios first, `count` members each, then traces).
pub fn register_spec(spec: &Spec, family_seed: u64, count: u32) -> Result<Vec<Workload>, Diag> {
    let mut out = Vec::new();
    for s in &spec.scenarios {
        for inst in expand(s, family_seed, count) {
            let name = inst.name();
            let wl = mds_workloads::register_generated(GeneratedSpec {
                name: name.clone(),
                description: format!(
                    "generated: scenario `{}` member {} (family seed {})",
                    s.name, inst.index, family_seed
                ),
                phenotype: inst.phenotype(),
                fingerprint: inst.fingerprint(),
                build: {
                    let inst = inst.clone();
                    Arc::new(move |scale| lower::compile(&inst, scale))
                },
            })
            .map_err(|e| registry_diag(s.pos, &name, e))?;
            out.push(wl);
        }
    }
    for t in &spec.traces {
        let name = format!("wdl/{}/trace", t.name);
        let fingerprint = fnv1a(format!("wdl1 trace={} events={:?}", t.name, t.events).as_bytes());
        let wl = mds_workloads::register_generated(GeneratedSpec {
            name: name.clone(),
            description: format!(
                "imported dependence stream `{}` ({} events)",
                t.name,
                t.events.len()
            ),
            phenotype: format!("verbatim replay of {} imported events", t.events.len()),
            fingerprint,
            build: {
                let t = t.clone();
                Arc::new(move |_scale| lower::compile_trace(&t))
            },
        })
        .map_err(|e| registry_diag(t.pos, &name, e))?;
        out.push(wl);
    }
    Ok(out)
}

fn registry_diag(pos: crate::diag::Pos, name: &str, e: RegistryError) -> Diag {
    Diag::field(pos, name.to_string(), e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;
    use mds_workloads::Scale;

    fn family_scenario() -> Scenario {
        parse(
            "scenario fam {\n\
               seed = 11\n\
               tasks = 1024 .. 8192\n\
               edges = 2 .. 16\n\
               distances = { 1: 0.05, 4: 0.05 }\n\
               locality = 0.5 .. 1.0\n\
             }",
        )
        .unwrap()
        .scenarios
        .remove(0)
    }

    #[test]
    fn sampling_is_reproducible_and_seed_sensitive() {
        let s = family_scenario();
        let a = instantiate(&s, 7, 3);
        let b = instantiate(&s, 7, 3);
        assert_eq!(a, b);
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = instantiate(&s, 8, 3);
        let d = instantiate(&s, 7, 4);
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(a.fingerprint(), d.fingerprint());
    }

    #[test]
    fn sampled_knobs_respect_declared_ranges() {
        let s = family_scenario();
        for inst in expand(&s, 3, 32) {
            assert!((1024..=8192).contains(&inst.tasks), "{}", inst.tasks);
            assert!((2..=16).contains(&inst.edges), "{}", inst.edges);
            assert!((0.5..=1.0).contains(&inst.locality), "{}", inst.locality);
        }
        // Ranged knobs actually vary across members.
        let edges: Vec<u64> = expand(&s, 3, 16).iter().map(|i| i.edges).collect();
        assert!(edges.iter().any(|&e| e != edges[0]), "{edges:?}");
    }

    #[test]
    fn registration_is_idempotent_and_programs_are_byte_identical() {
        let spec = parse("scenario regtest { seed = 5\n tasks = 1024 }").unwrap();
        let w1 = register_spec(&spec, 0, 2).unwrap();
        let w2 = register_spec(&spec, 0, 2).unwrap();
        assert_eq!(w1.len(), 2);
        assert_eq!(w1[0].name, "wdl/regtest/s0/0");
        assert_eq!(w1[0].name, w2[0].name);
        let p1 = w1[0].build(Scale::Tiny);
        let p2 = w2[0].build(Scale::Tiny);
        assert_eq!(p1.instructions(), p2.instructions());
        assert_eq!(
            p1.initial_data().collect::<Vec<_>>(),
            p2.initial_data().collect::<Vec<_>>()
        );
    }
}
