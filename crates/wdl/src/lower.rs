//! Lowers a concrete scenario instance (or imported trace) to a
//! deterministic `mds-isa` program.
//!
//! # Shape of a generated program
//!
//! Like the hand-written workloads, a generated program is **one task
//! body executed in a countdown loop**: every dynamic task runs the same
//! code, and all per-task variation derives from the task counter
//! through the non-serializing [`task_hash`] mix, so consecutive tasks
//! can overlap in the Multiscalar window.
//!
//! Cross-task dependences flow through a single 64-slot **communication
//! ring** per static edge: every task stores to `ring[t & 63]` *late* in
//! its body, and a task drawn to depend at distance `d` loads
//! `ring[(t - d) & 63]` *early* — the classic blind-speculation trap.
//! Because the producer's slot and alias region are pure functions of
//! the producer's index, the consumer recomputes them exactly; declared
//! distances are honored precisely (`d <= 48 < 64`, so a slot is never
//! recycled before its consumer reads it).
//!
//! Knob mechanics, all decided by disjoint bit-slices of the per-task
//! hash so they stay independent:
//!
//! - **distance distribution** — a 16-bit slice against cumulative
//!   thresholds picks distance `d_k` (or no dependence, the residual
//!   mass);
//! - **static edges** — a 12-bit slice mod `E` picks the edge; each edge
//!   has its own ring block and its own store/load instruction arms, so
//!   the program exposes `E` distinct static dependence PC pairs
//!   (`E > 8` overflows a 64-entry MDPT together with path variants);
//! - **locality/churn** — a 12-bit slice under the locality threshold
//!   keeps traffic in the edge's hot region; the residue goes to a
//!   scrambled alias region, spreading addresses;
//! - **path dependence** — an 8-bit slice selects an alternate load PC
//!   within the edge, giving predictors distinct paths to key on;
//! - **task-size mix / FP share** — 8-bit slices select small (~15),
//!   medium (~45), or large (~130 instruction) filler, integer or FP,
//!   including independent streaming loads that dilute the hot edges.
//!
//! Determinism contract: the emitted instruction sequence and initial
//! data are pure functions of `(instance, scale)` — two compilations are
//! byte-identical, which the trace cache's `(name, scale)` keying and
//! the byte-identity CI gates rely on.

use crate::generate::Instance;
use crate::ir::{TraceDef, TraceEvent};
use mds_isa::{Program, ProgramBuilder, Reg};
use mds_workloads::util::{alloc_random, loop_epilogue, HASH_K};
use mds_workloads::Scale;

/// Slots per communication ring (power of two; distances stay below it).
const RING: u64 = 64;
/// Alias regions per edge (hot + scrambled-cold).
const ALIAS: u64 = 2;
/// Bytes per edge block: `ALIAS * RING * 8`.
const EDGE_BYTES: u64 = ALIAS * RING * 8;

/// Emits `dst = mix(src * HASH_K)` — the same mix as
/// [`mds_workloads::util::task_hash`], usable on any source register.
fn hash_of(b: &mut ProgramBuilder, dst: Reg, src: Reg, konst: Reg, tmp: Reg) {
    b.mul(dst, src, konst);
    b.srli(tmp, dst, 17);
    b.xor(dst, dst, tmp);
    b.srli(tmp, dst, 9);
    b.xor(dst, dst, tmp);
}

/// Emits slot+region address math shared by producer and consumer:
/// given a task index in `idx` and its hash in `hash`, leaves the
/// byte offset within the edge block in `A1`.
///
/// Region selection: a 12-bit hash slice under `loc_thr` stays in the
/// hot region (offset 0); otherwise the cold region (offset 512 bytes)
/// with the slot scrambled by the slice, spreading cold addresses.
fn ring_offset(b: &mut ProgramBuilder, idx: Reg, hash: Reg, loc_thr: i32) {
    b.andi(Reg::A1, idx, (RING - 1) as i32);
    b.srli(Reg::T3, hash, 36);
    b.andi(Reg::T3, Reg::T3, 0xfff);
    b.slti(Reg::T4, Reg::T3, loc_thr); // 1 = hot
    b.xori(Reg::T4, Reg::T4, 1); // 1 = cold
    b.slli(Reg::T2, Reg::T4, 9); // region byte offset (0 or 512)
    b.andi(Reg::T1, Reg::T3, 56);
    b.mul(Reg::T1, Reg::T1, Reg::T4); // slot scramble, cold only
    b.add(Reg::A1, Reg::A1, Reg::T1);
    b.andi(Reg::A1, Reg::A1, (RING - 1) as i32);
    b.slli(Reg::A1, Reg::A1, 3);
    b.add(Reg::A1, Reg::A1, Reg::T2);
}

/// Emits one independent streaming load (dilution work):
/// `A0 += stream[(counter << shift) & 255]`.
fn stream_load(b: &mut ProgramBuilder, shift: i32) {
    b.slli(Reg::T1, Reg::A6, shift);
    b.andi(Reg::T1, Reg::T1, 255);
    b.slli(Reg::T1, Reg::T1, 3);
    b.add(Reg::T1, Reg::S1, Reg::T1);
    b.ld(Reg::A1, Reg::T1, 0);
    b.add(Reg::A0, Reg::A0, Reg::A1);
}

/// Emits `n` dependent integer ALU operations chained through `A0`.
fn int_ops(b: &mut ProgramBuilder, n: usize) {
    for i in 0..n {
        match i % 4 {
            0 => b.addi(Reg::A0, Reg::A0, 0x11),
            1 => b.xor(Reg::A0, Reg::A0, Reg::A6),
            2 => b.slli(Reg::T1, Reg::A0, 7).xor(Reg::A0, Reg::A0, Reg::T1),
            _ => b.srli(Reg::T1, Reg::A0, 3).add(Reg::A0, Reg::A0, Reg::T1),
        };
    }
}

/// Emits `n` dependent FP operations chained through `f1`, converting
/// `A0` in and back out so the filler result still feeds the late store.
fn fp_ops(b: &mut ProgramBuilder, n: usize) {
    b.fcvt_d_l(Reg::f(1), Reg::A0);
    for i in 0..n {
        if i % 2 == 0 {
            b.fadd(Reg::f(1), Reg::f(1), Reg::f(2));
        } else {
            b.fmul(Reg::f(1), Reg::f(1), Reg::f(3));
        }
    }
    b.fcvt_l_d(Reg::T1, Reg::f(1));
    b.add(Reg::A0, Reg::A0, Reg::T1);
}

/// Scales a `[0, 1]` knob to a `slti` threshold over an `bits`-bit
/// hash slice (inclusive upper end so 1.0 always passes).
fn thr(knob: f64, bits: u32) -> i32 {
    let full = 1i64 << bits;
    ((knob * full as f64).round() as i64).clamp(0, full) as i32
}

/// Compiles a concrete scenario instance at the given scale.
pub fn compile(inst: &Instance, scale: Scale) -> Program {
    let e = inst.edges.max(1);
    let mut b = ProgramBuilder::new();
    // Data: one ring block per edge, plus the independent stream.
    alloc_random(
        &mut b,
        "rings",
        (e * EDGE_BYTES / 8) as usize,
        0,
        inst.member_seed,
    );
    b.alloc("pad0", 8); // stagger bank alignment
    alloc_random(&mut b, "stream", 256, 0, inst.member_seed ^ 0x5eed_5eed);

    let loc_thr = thr(inst.locality, 12);
    let path_thr = thr(inst.path_dep, 8);
    let fp_thr = thr(inst.fp, 8);
    // Task-size class thresholds over an 8-bit slice.
    let wsum = inst.task_size.small + inst.task_size.medium + inst.task_size.large;
    let small_thr = thr(inst.task_size.small / wsum, 8);
    let med_thr = thr((inst.task_size.small + inst.task_size.medium) / wsum, 8);
    // Cumulative 16-bit distance thresholds.
    let mut cum = 0.0;
    let dist_thrs: Vec<(u32, i32)> = inst
        .distances
        .iter()
        .map(|&(d, p)| {
            cum += p;
            (d, thr(cum, 16))
        })
        .collect();

    // Prologue.
    b.la(Reg::S0, "rings");
    b.la(Reg::S1, "stream");
    b.li(Reg::S5, HASH_K);
    if e > 1 {
        b.li(Reg::S6, e as i32);
    } else {
        b.li(Reg::A2, 0); // constant edge offset
    }
    b.li(Reg::A6, (inst.member_seed & 0xffff) as i32); // counter salt
    b.li(Reg::A0, 1);
    if fp_thr > 0 {
        b.li(Reg::T1, 3);
        b.fcvt_d_l(Reg::f(2), Reg::T1);
        b.li(Reg::T1, 5);
        b.fcvt_d_l(Reg::f(3), Reg::T1);
    }
    b.li(Reg::T0, scale.iterations(inst.tasks as i32));

    b.label("task");
    b.task();
    b.addi(Reg::A6, Reg::A6, 1);
    hash_of(&mut b, Reg::A7, Reg::A6, Reg::S5, Reg::T1);
    // Edge select: 12-bit slice mod E, block offset in A2.
    if e > 1 {
        b.srli(Reg::T4, Reg::A7, 24);
        b.andi(Reg::T4, Reg::T4, 0xfff);
        b.rem(Reg::A3, Reg::T4, Reg::S6);
        b.slli(Reg::A2, Reg::A3, 10);
    }
    // Dependence draw: 16-bit slice against cumulative thresholds.
    if !dist_thrs.is_empty() {
        b.srli(Reg::T2, Reg::A7, 8);
        b.andi(Reg::T2, Reg::T2, 0xffff);
        for (i, &(_, c)) in dist_thrs.iter().enumerate() {
            b.slti(Reg::T3, Reg::T2, c);
            b.bne(Reg::T3, Reg::ZERO, format!("dep_{i}").as_str());
        }
        b.j("filler");
        for (i, &(d, _)) in dist_thrs.iter().enumerate() {
            b.label(&format!("dep_{i}"));
            b.li(Reg::T5, d as i32);
            if i + 1 != dist_thrs.len() {
                b.j("consume");
            }
        }
        b.label("consume");
        // Recompute the producer's edge, slot, and region from its
        // index — the address must be exactly where the producer (task
        // `t - d`, which hashed its *own* counter) stored.
        b.sub(Reg::A5, Reg::A6, Reg::T5);
        hash_of(&mut b, Reg::A4, Reg::A5, Reg::S5, Reg::T1);
        if e > 1 {
            b.srli(Reg::T5, Reg::A4, 24);
            b.andi(Reg::T5, Reg::T5, 0xfff);
            b.rem(Reg::T5, Reg::T5, Reg::S6); // producer edge
        }
        ring_offset(&mut b, Reg::A5, Reg::A4, loc_thr);
        if e > 1 {
            b.slli(Reg::T1, Reg::T5, 10);
            b.add(Reg::T6, Reg::S0, Reg::T1);
        } else {
            b.add(Reg::T6, Reg::S0, Reg::A2);
        }
        b.add(Reg::T6, Reg::T6, Reg::A1);
        // Path-dependence draw: 8-bit slice selects the alternate PC.
        b.srli(Reg::T3, Reg::A7, 48);
        b.andi(Reg::T3, Reg::T3, 0xff);
        b.slti(Reg::T4, Reg::T3, path_thr); // 1 = alternate path
                                            // Early consumer load, dispatched on the *producer's* edge so
                                            // each static store PC pairs with its own static load PCs.
        for k in 1..e {
            b.li(Reg::T1, k as i32);
            b.beq(Reg::T5, Reg::T1, format!("ld_{k}").as_str());
        }
        for k in 0..e {
            b.label(&format!("ld_{k}"));
            b.bne(Reg::T4, Reg::ZERO, format!("ld_{k}_alt").as_str());
            b.ld(Reg::A0, Reg::T6, 0);
            b.j("filler");
            b.label(&format!("ld_{k}_alt"));
            b.ld(Reg::A0, Reg::T6, 0);
            b.j("filler");
        }
    }
    // Filler: independent dilution work sized by the task-size draw.
    b.label("filler");
    b.andi(Reg::T2, Reg::A7, 0xff);
    b.slti(Reg::T3, Reg::T2, small_thr);
    b.bne(Reg::T3, Reg::ZERO, "fill_small");
    b.slti(Reg::T3, Reg::T2, med_thr);
    b.bne(Reg::T3, Reg::ZERO, "fill_medium");
    // Large: ~130 instructions (inner countdown of dependent blocks).
    stream_load(&mut b, 1);
    stream_load(&mut b, 4);
    b.li(Reg::T2, 11);
    b.label("fill_large_loop");
    if fp_thr > 0 {
        b.srli(Reg::T3, Reg::A7, 56);
        b.slti(Reg::T4, Reg::T3, fp_thr);
        b.bne(Reg::T4, Reg::ZERO, "fill_large_fp");
        int_ops(&mut b, 7);
        b.j("fill_large_tail");
        b.label("fill_large_fp");
        fp_ops(&mut b, 5);
        b.label("fill_large_tail");
    } else {
        int_ops(&mut b, 7);
    }
    b.addi(Reg::T2, Reg::T2, -1);
    b.bne(Reg::T2, Reg::ZERO, "fill_large_loop");
    b.j("store");
    // Medium: ~45 instructions.
    b.label("fill_medium");
    stream_load(&mut b, 2);
    stream_load(&mut b, 5);
    if fp_thr > 0 {
        b.srli(Reg::T3, Reg::A7, 56);
        b.slti(Reg::T4, Reg::T3, fp_thr);
        b.bne(Reg::T4, Reg::ZERO, "fill_medium_fp");
        int_ops(&mut b, 24);
        b.j("store");
        b.label("fill_medium_fp");
        fp_ops(&mut b, 20);
        b.j("store");
    } else {
        int_ops(&mut b, 24);
        b.j("store");
    }
    // Small: ~15 instructions.
    b.label("fill_small");
    stream_load(&mut b, 3);
    if fp_thr > 0 {
        b.srli(Reg::T3, Reg::A7, 56);
        b.slti(Reg::T4, Reg::T3, fp_thr);
        b.bne(Reg::T4, Reg::ZERO, "fill_small_fp");
        int_ops(&mut b, 4);
        b.j("store");
        b.label("fill_small_fp");
        fp_ops(&mut b, 3);
    } else {
        int_ops(&mut b, 4);
    }
    // Late producer store: own slot/region, with the address funneled
    // through the filler result (`A0 & 0 = 0`, but the simulators see a
    // true dependence) so it resolves last — the property that makes
    // refusing to speculate (NEVER) expensive.
    b.label("store");
    ring_offset(&mut b, Reg::A6, Reg::A7, loc_thr);
    b.andi(Reg::T1, Reg::A0, 0);
    b.add(Reg::A1, Reg::A1, Reg::T1);
    b.add(Reg::T6, Reg::S0, Reg::A2);
    b.add(Reg::T6, Reg::T6, Reg::A1);
    for k in 1..e {
        b.li(Reg::T1, k as i32);
        b.beq(Reg::A3, Reg::T1, format!("st_{k}").as_str());
    }
    for k in 0..e {
        b.label(&format!("st_{k}"));
        b.sd(Reg::A0, Reg::T6, 0);
        if k + 1 != e {
            b.j("epilogue");
        }
    }
    b.label("epilogue");
    loop_epilogue(&mut b, Reg::T0, "task");
    b.build().expect("generated scenario builds")
}

/// Compiles an imported dependence stream to an equivalent program.
///
/// Each distinct address maps to one slot of a private array; task
/// events become task boundaries, loads fold the slot into a running
/// sum, stores write an evolving counter — so the program's dependence
/// stream (task/load/store sequence over abstract addresses) replays the
/// imported one exactly. `scale` is ignored: a trace has one length.
pub fn compile_trace(def: &TraceDef) -> Program {
    let mut slots: Vec<u64> = Vec::new();
    let slot_of = |addr: u64, slots: &mut Vec<u64>| -> i32 {
        if let Some(i) = slots.iter().position(|&a| a == addr) {
            (i * 8) as i32
        } else {
            slots.push(addr);
            ((slots.len() - 1) * 8) as i32
        }
    };
    // Resolve displacements first so the data segment is sized before
    // any instruction references it.
    let disps: Vec<Option<i32>> = def
        .events
        .iter()
        .map(|ev| match *ev {
            TraceEvent::Task => None,
            TraceEvent::Load(a) | TraceEvent::Store(a) => Some(slot_of(a, &mut slots)),
        })
        .collect();
    let mut b = ProgramBuilder::new();
    alloc_random(&mut b, "slots", slots.len().max(1), 0, 0xace0_ace0);
    b.la(Reg::S0, "slots");
    b.li(Reg::A0, 1);
    b.li(Reg::A1, 0);
    let mut pending_task = false;
    for (ev, disp) in def.events.iter().zip(&disps) {
        match (ev, disp) {
            (TraceEvent::Task, _) => {
                if pending_task {
                    b.nop(); // empty task still needs a head instruction
                }
                b.task();
                pending_task = true;
            }
            (TraceEvent::Load(_), &Some(d)) => {
                b.ld(Reg::T1, Reg::S0, d);
                b.add(Reg::A0, Reg::A0, Reg::T1);
                pending_task = false;
            }
            (TraceEvent::Store(_), &Some(d)) => {
                b.addi(Reg::A1, Reg::A1, 1);
                b.add(Reg::T2, Reg::A1, Reg::A0);
                b.sd(Reg::T2, Reg::S0, d);
                pending_task = false;
            }
            _ => unreachable!("loads/stores always carry a displacement"),
        }
    }
    b.halt();
    b.build().expect("imported trace builds")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::SizeMix;
    use mds_emu::Emulator;

    fn demo_instance() -> Instance {
        Instance {
            scenario: "demo".to_string(),
            family_seed: 0,
            index: 0,
            member_seed: 0xdead_beef_1234,
            tasks: 2048,
            task_size: SizeMix::DEFAULT,
            distances: vec![(1, 0.08), (8, 0.05)],
            edges: 3,
            locality: 0.9,
            path_dep: 0.3,
            fp: 0.25,
        }
    }

    #[test]
    fn compiled_instance_runs_and_is_deterministic() {
        let inst = demo_instance();
        let p1 = compile(&inst, Scale::Tiny);
        let p2 = compile(&inst, Scale::Tiny);
        assert_eq!(p1.instructions(), p2.instructions());
        assert_eq!(
            p1.initial_data().collect::<Vec<_>>(),
            p2.initial_data().collect::<Vec<_>>()
        );
        let sum = Emulator::new(&p1).run_with(|_| {}).unwrap();
        assert!(sum.tasks > 16, "tasks: {}", sum.tasks);
        assert!(sum.loads > 0 && sum.stores > 0);
        assert!(sum.instructions > 500);
    }

    #[test]
    fn scale_changes_length_not_shape() {
        let inst = demo_instance();
        let tiny = compile(&inst, Scale::Tiny);
        let small = compile(&inst, Scale::Small);
        let t = Emulator::new(&tiny).run_with(|_| {}).unwrap();
        let s = Emulator::new(&small).run_with(|_| {}).unwrap();
        assert!(s.tasks > t.tasks * 8);
    }

    #[test]
    fn trace_lowering_replays_the_stream() {
        let def = TraceDef {
            name: "tr".to_string(),
            pos: crate::diag::Pos::START,
            events: vec![
                TraceEvent::Task,
                TraceEvent::Store(0x100),
                TraceEvent::Task,
                TraceEvent::Load(0x100),
                TraceEvent::Task,
                TraceEvent::Task,
                TraceEvent::Load(0x200),
            ],
        };
        let p = compile_trace(&def);
        let sum = Emulator::new(&p).run_with(|_| {}).unwrap();
        // 4 trace tasks plus the implicit prologue task.
        assert_eq!(sum.tasks, 5);
        assert_eq!(sum.loads, 2);
        assert_eq!(sum.stores, 1);
    }
}
