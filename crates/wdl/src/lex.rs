//! Hand-rolled lexer for the workload-description language.
//!
//! Produces a flat token stream with 1-based positions. `#` starts a
//! comment running to end of line. Numbers are unsigned decimal or `0x`
//! hex integers (underscore separators allowed) or decimal floats; the
//! two-dot range operator binds tighter than a float's decimal point, so
//! `0..1` lexes as `0`, `..`, `1`.

use crate::diag::{Diag, Pos};

/// One lexeme with its starting position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Starting position of the lexeme.
    pub pos: Pos,
    /// The lexeme itself.
    pub kind: Tok,
}

/// Lexeme kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`scenario`, `seed`, a scenario name, ...).
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Floating-point literal.
    Float(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Eq,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `..`
    DotDot,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "number {v}"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::DotDot => write!(f, "`..`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// Lexes `src` to a token vector ending in [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<Token>, Diag> {
    let mut out = Vec::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;
    macro_rules! advance {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }
    while i < chars.len() {
        let c = chars[i];
        let pos = Pos { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => advance!(),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    advance!();
                }
            }
            '{' | '}' | '[' | ']' | '=' | ':' | ',' => {
                let kind = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '=' => Tok::Eq,
                    ':' => Tok::Colon,
                    _ => Tok::Comma,
                };
                out.push(Token { pos, kind });
                advance!();
            }
            '.' => {
                if i + 1 < chars.len() && chars[i + 1] == '.' {
                    out.push(Token {
                        pos,
                        kind: Tok::DotDot,
                    });
                    advance!();
                    advance!();
                } else {
                    return Err(Diag::syntax(pos, "stray `.` (ranges use `..`)"));
                }
            }
            '0'..='9' => {
                let start = i;
                let hex = c == '0' && i + 1 < chars.len() && chars[i + 1] == 'x';
                if hex {
                    advance!();
                    advance!();
                    let digits = i;
                    while i < chars.len() && (chars[i].is_ascii_hexdigit() || chars[i] == '_') {
                        advance!();
                    }
                    let text: String = chars[digits..i].iter().filter(|&&d| d != '_').collect();
                    let v = u64::from_str_radix(&text, 16).map_err(|_| {
                        Diag::syntax(pos, "invalid hex literal (expected 0x<hex digits>)")
                    })?;
                    out.push(Token {
                        pos,
                        kind: Tok::Int(v),
                    });
                    continue;
                }
                let mut is_float = false;
                while i < chars.len() {
                    let d = chars[i];
                    if d.is_ascii_digit() || d == '_' {
                        advance!();
                    } else if d == '.' && !is_float && !(i + 1 < chars.len() && chars[i + 1] == '.')
                    {
                        is_float = true;
                        advance!();
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..i].iter().filter(|&&d| d != '_').collect();
                let kind = if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| Diag::syntax(pos, format!("invalid number `{text}`")))?;
                    Tok::Float(v)
                } else {
                    let v: u64 = text.parse().map_err(|_| {
                        Diag::syntax(pos, format!("integer `{text}` overflows u64"))
                    })?;
                    Tok::Int(v)
                };
                out.push(Token { pos, kind });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    advance!();
                }
                let text: String = chars[start..i].iter().collect();
                out.push(Token {
                    pos,
                    kind: Tok::Ident(text),
                });
            }
            other => {
                return Err(Diag::syntax(pos, format!("unexpected character `{other}`")));
            }
        }
    }
    out.push(Token {
        pos: Pos { line, col },
        kind: Tok::Eof,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn ranges_do_not_lex_as_floats() {
        assert_eq!(
            kinds("0..1"),
            vec![Tok::Int(0), Tok::DotDot, Tok::Int(1), Tok::Eof]
        );
        assert_eq!(
            kinds("0.5 .. 0.9"),
            vec![Tok::Float(0.5), Tok::DotDot, Tok::Float(0.9), Tok::Eof]
        );
    }

    #[test]
    fn comments_and_hex_and_underscores() {
        assert_eq!(
            kinds("# hi\nseed = 0x1_f # tail\n40_000"),
            vec![
                Tok::Ident("seed".into()),
                Tok::Eq,
                Tok::Int(0x1f),
                Tok::Int(40_000),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(toks[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_characters_are_positioned() {
        let err = lex("ok\n  !").unwrap_err();
        assert_eq!(err.pos, Pos { line: 2, col: 3 });
    }
}
