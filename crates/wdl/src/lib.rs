//! `mds-wdl` — the workload-description language.
//!
//! The hand-written suites in `mds-workloads` are 23 fixed points in
//! dependence-phenotype space; the paper's claims (figures 5–7, table 8)
//! are about the *space*. This crate makes workloads declarative:
//!
//! 1. **Language** — named `scenario` blocks declare phenotype knobs
//!    (task-size mix, dependence-distance distribution, static-edge
//!    count, locality/churn, path-dependence rate, FP/int mix), parsed
//!    by a hand-rolled lexer/parser into a validated typed IR with
//!    positioned diagnostics ([`diag::Diag`]).
//! 2. **Generator** — knobs may be ranges; a seeded sampler expands a
//!    scenario into unbounded reproducible families, where
//!    `(spec, seed, scale)` is the canonical identity that flows through
//!    the dynamic workload registry, the trace cache, and the runner's
//!    byte-identity machinery unchanged.
//! 3. **Lowering** — each concrete instance compiles to a deterministic
//!    `mds-isa` program engineered to *have* the declared phenotype
//!    (early consumer loads, late producer store addresses, per-edge
//!    static PC pairs — see [`lower`]).
//! 4. **Trace import** — externally captured dependence streams
//!    (`task`/`load`/`store` lines) become `trace` blocks compiled to
//!    programs that replay the stream verbatim ([`import`]).
//!
//! # Example
//!
//! ```
//! let spec = mds_wdl::parse_spec(
//!     "scenario hot_ring {
//!        seed = 42
//!        tasks = 1024
//!        distances = { 1: 0.10 }
//!        expect_misspec_per_load = 0.0 .. 0.5
//!      }",
//! )?;
//! let workloads = mds_wdl::register_spec(&spec, 0, 2)?;
//! assert_eq!(workloads[0].name, "wdl/hot_ring/s0/0");
//! let program = workloads[0].build(mds_workloads::Scale::Tiny);
//! assert!(program.instructions().len() > 30);
//! # Ok::<(), mds_wdl::Diag>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diag;
pub mod generate;
pub mod import;
pub mod ir;
pub mod lex;
pub mod lower;
pub mod parse;

pub use diag::{Diag, Pos};
pub use generate::{expand, instantiate, register_spec, Instance};
pub use ir::{Scenario, Spec, TraceDef, TraceEvent};
pub use lower::{compile, compile_trace};

/// Parses and validates a spec file (see [`parse::parse`]).
pub fn parse_spec(src: &str) -> Result<Spec, Diag> {
    parse::parse(src)
}
