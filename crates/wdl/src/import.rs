//! Import of externally captured dependence streams.
//!
//! The line format is deliberately trivial to produce from any tracing
//! tool: one event per line — `task`, `load <addr>`, `store <addr>`
//! (or their single-letter forms `t`/`l`/`s`), addresses decimal or
//! `0x` hex, `#` comments. [`parse_stream`] validates the stream and
//! [`to_wdl`] renders it as a `trace` block that can live in a spec
//! file next to scenarios and compile through the same pipeline
//! ([`crate::lower::compile_trace`]).

use crate::diag::{Diag, Pos};
use crate::ir::{TraceDef, TraceEvent, MAX_TRACE_EVENTS};

/// Parses an external dependence-stream file into events.
pub fn parse_stream(src: &str) -> Result<Vec<TraceEvent>, Diag> {
    let mut events = Vec::new();
    for (lineno, raw) in src.lines().enumerate() {
        let pos = Pos {
            line: lineno as u32 + 1,
            col: 1,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let kw = parts.next().unwrap_or("");
        let ev = match kw {
            "t" | "task" => TraceEvent::Task,
            "l" | "load" | "s" | "store" => {
                let addr_text = parts
                    .next()
                    .ok_or_else(|| Diag::syntax(pos, format!("`{kw}` needs an address operand")))?;
                let addr = parse_addr(addr_text)
                    .ok_or_else(|| Diag::syntax(pos, format!("invalid address `{addr_text}`")))?;
                if matches!(kw, "l" | "load") {
                    TraceEvent::Load(addr)
                } else {
                    TraceEvent::Store(addr)
                }
            }
            other => {
                return Err(Diag::syntax(
                    pos,
                    format!("unknown event `{other}` (valid: task, load <addr>, store <addr>)"),
                ));
            }
        };
        if let Some(extra) = parts.next() {
            return Err(Diag::syntax(pos, format!("trailing junk `{extra}`")));
        }
        if events.len() >= MAX_TRACE_EVENTS {
            return Err(Diag::syntax(
                pos,
                format!("stream exceeds {MAX_TRACE_EVENTS} events"),
            ));
        }
        events.push(ev);
    }
    if events.first() != Some(&TraceEvent::Task) {
        return Err(Diag::syntax(
            Pos::START,
            "stream must be non-empty and start with a task event",
        ));
    }
    Ok(events)
}

/// Parses a stream and names it, ready for lowering.
pub fn import(name: &str, src: &str) -> Result<TraceDef, Diag> {
    Ok(TraceDef {
        name: name.to_string(),
        pos: Pos::START,
        events: parse_stream(src)?,
    })
}

/// Renders events as a WDL `trace` block (the inverse of parsing the
/// block), so captured streams can be checked into spec files.
pub fn to_wdl(name: &str, events: &[TraceEvent]) -> String {
    let mut out = format!("trace {name} {{\n  events = [\n");
    for ev in events {
        match ev {
            TraceEvent::Task => out.push_str("    t,\n"),
            TraceEvent::Load(a) => out.push_str(&format!("    l {a:#x},\n")),
            TraceEvent::Store(a) => out.push_str(&format!("    s {a:#x},\n")),
        }
    }
    out.push_str("  ]\n}\n");
    out
}

fn parse_addr(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    #[test]
    fn stream_round_trips_through_wdl_text() {
        let events = parse_stream(
            "# captured\n\
             task\n\
             load 0x1000\n\
             s 4096 # aliases the load\n\
             t\n\
             l 8192\n",
        )
        .unwrap();
        assert_eq!(events.len(), 5);
        assert_eq!(events[1], TraceEvent::Load(0x1000));
        assert_eq!(events[2], TraceEvent::Store(4096));
        let text = to_wdl("cap", &events);
        let spec = parse(&text).unwrap();
        assert_eq!(spec.traces[0].events, events);
    }

    #[test]
    fn stream_errors_carry_line_numbers() {
        let err = parse_stream("task\nfrob 3\n").unwrap_err();
        assert_eq!(err.pos.line, 2);
        let err = parse_stream("task\nload\n").unwrap_err();
        assert_eq!(err.pos.line, 2);
        let err = parse_stream("load 8\n").unwrap_err();
        assert!(err.msg.contains("start with a task"));
    }
}
