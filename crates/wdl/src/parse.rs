//! Recursive-descent parser producing the validated IR.
//!
//! Parsing and validation are one pass: every range/shape rule from
//! `ir.rs` is checked while source positions are still at hand, so each
//! rejection carries the line/column of the offending field and its
//! dotted path (`scenario.field`). The first error wins.

use crate::diag::{Diag, Pos};
use crate::ir::{
    FKnob, Scenario, SizeMix, Spec, TraceDef, TraceEvent, UKnob, MAX_DISTANCE, MAX_EDGES,
    MAX_TRACE_EVENTS, TASKS_RANGE,
};
use crate::lex::{lex, Tok, Token};

/// Parses and validates a spec file.
pub fn parse(src: &str) -> Result<Spec, Diag> {
    let tokens = lex(src)?;
    Parser { tokens, at: 0 }.spec()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, want: Tok, ctx: &str) -> Result<Token, Diag> {
        let t = self.next();
        if t.kind == want {
            Ok(t)
        } else {
            Err(Diag::syntax(
                t.pos,
                format!("expected {want} {ctx}, found {}", t.kind),
            ))
        }
    }

    fn ident(&mut self, ctx: &str) -> Result<(String, Pos), Diag> {
        let t = self.next();
        match t.kind {
            Tok::Ident(s) => Ok((s, t.pos)),
            other => Err(Diag::syntax(
                t.pos,
                format!("expected identifier {ctx}, found {other}"),
            )),
        }
    }

    fn spec(&mut self) -> Result<Spec, Diag> {
        let mut spec = Spec::default();
        loop {
            let t = self.next();
            match t.kind {
                Tok::Eof => break,
                Tok::Ident(kw) if kw == "scenario" => {
                    let s = self.scenario()?;
                    self.check_unique(&spec, &s.name, s.pos)?;
                    spec.scenarios.push(s);
                }
                Tok::Ident(kw) if kw == "trace" => {
                    let tr = self.trace()?;
                    self.check_unique(&spec, &tr.name, tr.pos)?;
                    spec.traces.push(tr);
                }
                other => {
                    return Err(Diag::syntax(
                        t.pos,
                        format!("expected `scenario` or `trace` at top level, found {other}"),
                    ));
                }
            }
        }
        Ok(spec)
    }

    fn check_unique(&self, spec: &Spec, name: &str, pos: Pos) -> Result<(), Diag> {
        let taken = spec.scenarios.iter().any(|s| s.name == name)
            || spec.traces.iter().any(|t| t.name == name);
        if taken {
            Err(Diag::field(
                pos,
                name.to_string(),
                "duplicate block name (scenario and trace names share one namespace)",
            ))
        } else {
            Ok(())
        }
    }

    fn scenario(&mut self) -> Result<Scenario, Diag> {
        let (name, pos) = self.ident("after `scenario`")?;
        self.expect(Tok::LBrace, "to open the scenario block")?;
        let mut s = Scenario::with_defaults(name, pos);
        let mut seen: Vec<String> = Vec::new();
        loop {
            let t = self.next();
            let (field, fpos) = match t.kind {
                Tok::RBrace => break,
                Tok::Ident(f) => (f, t.pos),
                other => {
                    return Err(Diag::syntax(
                        t.pos,
                        format!("expected a field name or `}}`, found {other}"),
                    ));
                }
            };
            let path = format!("{}.{}", s.name, field);
            if seen.contains(&field) {
                return Err(Diag::field(fpos, path, "field set twice"));
            }
            self.expect(Tok::Eq, &format!("after field `{field}`"))?;
            match field.as_str() {
                "seed" => s.seed = self.u64_value(&path)?,
                "tasks" => {
                    s.tasks = self.uknob(&path, fpos, TASKS_RANGE.0, TASKS_RANGE.1)?;
                }
                "edges" => s.edges = self.uknob(&path, fpos, 1, MAX_EDGES)?,
                "task_size" => s.task_size = self.size_mix(&path, fpos)?,
                "distances" => s.distances = self.distances(&path, fpos)?,
                "locality" => s.locality = self.fknob(&path, fpos, 0.0, 1.0)?,
                "path_dep" => s.path_dep = self.fknob(&path, fpos, 0.0, 1.0)?,
                "fp" => s.fp = self.fknob(&path, fpos, 0.0, 1.0)?,
                "expect_misspec_per_load" => {
                    let k = self.fknob(&path, fpos, 0.0, 1.0)?;
                    s.expect_misspec_per_load = Some((k.lo, k.hi));
                }
                _ => {
                    return Err(Diag::field(
                        fpos,
                        path,
                        "unknown field (valid: seed, tasks, task_size, distances, edges, \
                         locality, path_dep, fp, expect_misspec_per_load)",
                    ));
                }
            }
            seen.push(field);
        }
        Ok(s)
    }

    /// A single non-negative number as f64 (int or float literal).
    fn number(&mut self, path: &str) -> Result<(f64, Pos), Diag> {
        let t = self.next();
        match t.kind {
            Tok::Int(v) => Ok((v as f64, t.pos)),
            Tok::Float(v) => Ok((v, t.pos)),
            other => Err(Diag::field(
                t.pos,
                path.to_string(),
                format!("expected a number, found {other}"),
            )),
        }
    }

    fn u64_value(&mut self, path: &str) -> Result<u64, Diag> {
        let t = self.next();
        match t.kind {
            Tok::Int(v) => Ok(v),
            other => Err(Diag::field(
                t.pos,
                path.to_string(),
                format!("expected an integer, found {other}"),
            )),
        }
    }

    /// `N` or `N .. M`, bounds-checked inclusive.
    fn uknob(&mut self, path: &str, fpos: Pos, min: u64, max: u64) -> Result<UKnob, Diag> {
        let lo = self.u64_value(path)?;
        let hi = if self.peek().kind == Tok::DotDot {
            self.next();
            self.u64_value(path)?
        } else {
            lo
        };
        if lo > hi {
            return Err(Diag::field(
                fpos,
                path.to_string(),
                format!("range lower bound {lo} exceeds upper bound {hi}"),
            ));
        }
        if lo < min || hi > max {
            return Err(Diag::field(
                fpos,
                path.to_string(),
                format!("value must lie in {min}..={max}, got {lo}..{hi}"),
            ));
        }
        Ok(UKnob { lo, hi })
    }

    /// `x` or `x .. y`, bounds-checked inclusive.
    fn fknob(&mut self, path: &str, fpos: Pos, min: f64, max: f64) -> Result<FKnob, Diag> {
        let (lo, _) = self.number(path)?;
        let hi = if self.peek().kind == Tok::DotDot {
            self.next();
            self.number(path)?.0
        } else {
            lo
        };
        if lo > hi {
            return Err(Diag::field(
                fpos,
                path.to_string(),
                format!("range lower bound {lo} exceeds upper bound {hi}"),
            ));
        }
        if lo < min || hi > max {
            return Err(Diag::field(
                fpos,
                path.to_string(),
                format!("value must lie in [{min}, {max}], got {lo}..{hi}"),
            ));
        }
        Ok(FKnob { lo, hi })
    }

    /// `{ small: w, medium: w, large: w }` — any subset, rest 0.
    fn size_mix(&mut self, path: &str, fpos: Pos) -> Result<SizeMix, Diag> {
        self.expect(Tok::LBrace, "to open the task_size map")?;
        let mut mix = SizeMix {
            small: 0.0,
            medium: 0.0,
            large: 0.0,
        };
        let mut seen: Vec<String> = Vec::new();
        loop {
            if self.peek().kind == Tok::RBrace {
                self.next();
                break;
            }
            let (cls, cpos) = self.ident("for a task-size class")?;
            let cpath = format!("{path}.{cls}");
            if seen.contains(&cls) {
                return Err(Diag::field(cpos, cpath, "class listed twice"));
            }
            self.expect(Tok::Colon, "after the class name")?;
            let (w, wpos) = self.number(&cpath)?;
            if !w.is_finite() || w < 0.0 {
                return Err(Diag::field(
                    wpos,
                    cpath,
                    format!("weight must be a finite non-negative number, got {w}"),
                ));
            }
            match cls.as_str() {
                "small" => mix.small = w,
                "medium" => mix.medium = w,
                "large" => mix.large = w,
                _ => {
                    return Err(Diag::field(
                        cpos,
                        cpath,
                        "unknown task-size class (valid: small, medium, large)",
                    ));
                }
            }
            seen.push(cls);
            if self.peek().kind == Tok::Comma {
                self.next();
            }
        }
        if mix.small + mix.medium + mix.large <= 0.0 {
            return Err(Diag::field(
                fpos,
                path.to_string(),
                "task-size weights must not all be zero",
            ));
        }
        Ok(mix)
    }

    /// `{ distance: probability, ... }` — may be empty.
    fn distances(&mut self, path: &str, fpos: Pos) -> Result<Vec<(u32, f64)>, Diag> {
        self.expect(Tok::LBrace, "to open the distances map")?;
        let mut out: Vec<(u32, f64)> = Vec::new();
        loop {
            if self.peek().kind == Tok::RBrace {
                self.next();
                break;
            }
            let t = self.next();
            let (d, dpos) = match t.kind {
                Tok::Int(v) => (v, t.pos),
                other => {
                    return Err(Diag::field(
                        t.pos,
                        path.to_string(),
                        format!("expected an integer task distance, found {other}"),
                    ));
                }
            };
            let dpath = format!("{path}.{d}");
            if d < 1 || d > u64::from(MAX_DISTANCE) {
                return Err(Diag::field(
                    dpos,
                    dpath,
                    format!("distance must lie in 1..={MAX_DISTANCE}"),
                ));
            }
            let d = d as u32;
            if out.iter().any(|&(k, _)| k == d) {
                return Err(Diag::field(dpos, dpath, "distance listed twice"));
            }
            self.expect(Tok::Colon, "after the distance")?;
            let (p, ppos) = self.number(&dpath)?;
            if !(p > 0.0 && p <= 1.0) {
                return Err(Diag::field(
                    ppos,
                    dpath,
                    format!("probability must lie in (0, 1], got {p}"),
                ));
            }
            out.push((d, p));
            if self.peek().kind == Tok::Comma {
                self.next();
            }
        }
        let sum: f64 = out.iter().map(|&(_, p)| p).sum();
        if sum > 1.0 + 1e-9 {
            return Err(Diag::field(
                fpos,
                path.to_string(),
                format!("probabilities sum to {sum:.3}, must be <= 1"),
            ));
        }
        out.sort_by_key(|&(d, _)| d);
        Ok(out)
    }

    /// `trace NAME { events = [ t, l ADDR, s ADDR, ... ] }`
    fn trace(&mut self) -> Result<TraceDef, Diag> {
        let (name, pos) = self.ident("after `trace`")?;
        let path = name.clone();
        self.expect(Tok::LBrace, "to open the trace block")?;
        let (field, fpos) = self.ident("for the trace body")?;
        if field != "events" {
            return Err(Diag::field(
                fpos,
                format!("{path}.{field}"),
                "unknown field (a trace block holds only `events = [...]`)",
            ));
        }
        let epath = format!("{path}.events");
        self.expect(Tok::Eq, "after `events`")?;
        self.expect(Tok::LBracket, "to open the event list")?;
        let mut events: Vec<TraceEvent> = Vec::new();
        loop {
            if self.peek().kind == Tok::RBracket {
                self.next();
                break;
            }
            let t = self.next();
            let kw = match t.kind {
                Tok::Ident(k) => k,
                other => {
                    return Err(Diag::field(
                        t.pos,
                        epath.clone(),
                        format!("expected an event (`t`, `l <addr>`, `s <addr>`), found {other}"),
                    ));
                }
            };
            let ev = match kw.as_str() {
                "t" | "task" => TraceEvent::Task,
                "l" | "load" => TraceEvent::Load(self.u64_value(&epath)?),
                "s" | "store" => TraceEvent::Store(self.u64_value(&epath)?),
                _ => {
                    return Err(Diag::field(
                        t.pos,
                        epath.clone(),
                        format!("unknown event `{kw}` (valid: t/task, l/load, s/store)"),
                    ));
                }
            };
            if events.len() >= MAX_TRACE_EVENTS {
                return Err(Diag::field(
                    t.pos,
                    epath.clone(),
                    format!("trace exceeds {MAX_TRACE_EVENTS} events"),
                ));
            }
            events.push(ev);
            if self.peek().kind == Tok::Comma {
                self.next();
            }
        }
        self.expect(Tok::RBrace, "to close the trace block")?;
        if events.first() != Some(&TraceEvent::Task) {
            return Err(Diag::field(
                fpos,
                epath,
                "event list must be non-empty and start with a task event",
            ));
        }
        Ok(TraceDef { name, pos, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_scenario() {
        let spec = parse(
            "# phenotype sweep\n\
             scenario demo {\n\
               seed = 7\n\
               tasks = 4096\n\
               task_size = { small: 0.6, medium: 0.3, large: 0.1 }\n\
               distances = { 1: 0.05, 8: 0.03 }\n\
               edges = 2 .. 8\n\
               locality = 0.9\n\
               path_dep = 0.25\n\
               fp = 0.0 .. 0.5\n\
               expect_misspec_per_load = 0.001 .. 0.25\n\
             }\n",
        )
        .unwrap();
        let s = spec.scenario("demo").unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.distances, vec![(1, 0.05), (8, 0.03)]);
        assert_eq!(s.edges, UKnob { lo: 2, hi: 8 });
        assert!((s.conflict_mass() - 0.08).abs() < 1e-12);
        assert_eq!(s.fp, FKnob { lo: 0.0, hi: 0.5 });
    }

    #[test]
    fn defaults_fill_an_empty_block() {
        let spec = parse("scenario bare {}").unwrap();
        let s = spec.scenario("bare").unwrap();
        assert_eq!(s.tasks, UKnob::of(4096));
        assert!(s.distances.is_empty());
        assert_eq!(s.task_size, SizeMix::DEFAULT);
    }

    #[test]
    fn duplicate_scenario_names_are_rejected_with_position() {
        let err = parse("scenario a {}\nscenario a {}").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert_eq!(err.path, "a");
        assert!(err.msg.contains("duplicate"));
    }

    #[test]
    fn oversum_distances_are_rejected_with_field_path() {
        let err = parse("scenario a {\n  distances = { 1: 0.7, 2: 0.6 }\n}").unwrap_err();
        assert_eq!(err.path, "a.distances");
        assert_eq!(err.pos.line, 2);
        assert!(err.msg.contains("sum to 1.300"), "{}", err.msg);
    }

    #[test]
    fn out_of_range_knobs_are_rejected() {
        for (src, path) in [
            ("scenario a { edges = 0 }", "a.edges"),
            ("scenario a { edges = 65 }", "a.edges"),
            ("scenario a { tasks = 8 }", "a.tasks"),
            ("scenario a { locality = 1.5 }", "a.locality"),
            ("scenario a { path_dep = 0.9 .. 0.1 }", "a.path_dep"),
            ("scenario a { distances = { 49: 0.1 } }", "a.distances.49"),
            ("scenario a { distances = { 1: 0.0 } }", "a.distances.1"),
        ] {
            let err = parse(src).unwrap_err();
            assert_eq!(err.path, path, "for {src}");
        }
    }

    #[test]
    fn unknown_fields_and_stray_tokens_are_positioned() {
        let err = parse("scenario a {\n  frobnicate = 3\n}").unwrap_err();
        assert_eq!((err.pos.line, err.pos.col), (2, 3));
        assert_eq!(err.path, "a.frobnicate");
        let err = parse("scenario a { seed = }").unwrap_err();
        assert_eq!(err.path, "a.seed");
    }

    #[test]
    fn traces_parse_and_must_start_with_a_task() {
        let spec = parse("trace tr { events = [ t, l 0x10, s 0x10, t, l 0x10 ] }").unwrap();
        assert_eq!(spec.traces[0].events.len(), 5);
        assert_eq!(spec.traces[0].events[1], TraceEvent::Load(0x10));
        let err = parse("trace tr { events = [ l 8 ] }").unwrap_err();
        assert!(err.msg.contains("start with a task"), "{}", err.msg);
    }

    #[test]
    fn field_set_twice_is_rejected() {
        let err = parse("scenario a { seed = 1\n seed = 2 }").unwrap_err();
        assert!(err.msg.contains("twice"));
    }
}
