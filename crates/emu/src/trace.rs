//! Human-readable rendering of committed instruction streams.
//!
//! Debugging a dependence-speculation study means staring at traces; this
//! module renders [`DynInst`] records the way an architect would annotate
//! them — disassembly plus resolved addresses, branch outcomes, and task
//! boundaries.

use crate::dyninst::DynInst;
use std::fmt::Write as _;

/// Formats one committed instruction as a single annotated line.
///
/// # Examples
///
/// ```
/// use mds_isa::{ProgramBuilder, Reg};
/// use mds_emu::{format_dyninst, Emulator};
///
/// let mut b = ProgramBuilder::new();
/// b.alloc("x", 1);
/// b.la(Reg::S0, "x");
/// b.ld(Reg::T0, Reg::S0, 0);
/// b.halt();
/// let p = b.build()?;
/// let trace = Emulator::new(&p).run()?;
/// let line = format_dyninst(&trace[1]);
/// assert!(line.contains("ld t0, 0(s0)"));
/// assert!(line.contains("[load @0x10000000]"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn format_dyninst(d: &DynInst) -> String {
    let mut line = String::new();
    if d.new_task {
        line.push_str("==task== ");
    }
    let _ = write!(
        line,
        "{:>8}  pc={:<5} {:<28}",
        d.seq,
        d.pc,
        d.inst.to_string()
    );
    if let Some(m) = d.mem {
        let kind = if m.is_store { "store" } else { "load" };
        let _ = write!(line, " [{kind} @{:#x}", m.addr);
        if m.size != 8 {
            let _ = write!(line, " x{}", m.size);
        }
        line.push(']');
    }
    if let Some(b) = d.branch {
        if b.taken {
            let _ = write!(line, " [taken -> {}]", b.next_pc);
        } else {
            line.push_str(" [not taken]");
        }
    }
    line
}

/// Renders a whole trace (or a window of one) with one line per record.
///
/// Intended for short traces and debugging sessions; for long workloads,
/// slice first.
pub fn format_trace<'a>(records: impl IntoIterator<Item = &'a DynInst>) -> String {
    let mut out = String::new();
    for d in records {
        out.push_str(&format_dyninst(d));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Emulator;
    use mds_isa::{ProgramBuilder, Reg};

    fn sample_trace() -> Vec<DynInst> {
        let mut b = ProgramBuilder::new();
        b.alloc("buf", 2);
        b.la(Reg::S0, "buf");
        b.li(Reg::T0, 2);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sb(Reg::T1, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        let p = b.build().unwrap();
        Emulator::new(&p).run().unwrap()
    }

    #[test]
    fn annotates_memory_and_branches() {
        let trace = sample_trace();
        let text = format_trace(&trace);
        assert!(text.contains("[load @0x10000000]"));
        assert!(text.contains("x1]"), "byte store shows its size: {text}");
        assert!(text.contains("[taken -> 2]"));
        assert!(text.contains("[not taken]"));
    }

    #[test]
    fn marks_task_boundaries() {
        let trace = sample_trace();
        let boundaries = format_trace(&trace)
            .lines()
            .filter(|l| l.starts_with("==task=="))
            .count();
        // seq 0 plus two loop iterations.
        assert_eq!(boundaries, 3);
    }

    #[test]
    fn plain_alu_lines_have_no_annotations() {
        let trace = sample_trace();
        let line = format_dyninst(&trace[1]); // li t0, 2
        assert!(!line.contains('['));
        assert!(line.contains("li t0, 2"));
    }
}
