//! Captured committed instruction streams, and their human-readable
//! rendering.
//!
//! [`Trace`] is the machine-facing half: a fully-materialized committed
//! stream that downstream simulators replay read-only. It is `Send + Sync`
//! by construction, so one emulation can be shared across threads behind
//! an `Arc` — the substrate of `mds-runner`'s shared trace cache, where
//! every (workload × policy × config) grid cell replays the same stream.
//!
//! The rendering half is for humans: debugging a dependence-speculation
//! study means staring at traces, so [`format_dyninst`] renders records
//! the way an architect would annotate them — disassembly plus resolved
//! addresses, branch outcomes, and task boundaries.

use crate::dyninst::DynInst;
use crate::machine::{EmuError, Emulator, TraceSummary};
use crate::plan::ReplayPlan;
use mds_isa::Program;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

/// A fully-captured committed instruction stream plus its aggregate
/// counts.
///
/// Unlike [`Emulator::run`], which hands back a bare `Vec<DynInst>`, a
/// `Trace` keeps the [`TraceSummary`] alongside the records, so consumers
/// that only need counts (e.g. table 1 of the paper) never re-walk the
/// stream. The type is immutable after capture and `Send + Sync`, so it
/// can be shared across worker threads behind an `Arc`.
///
/// # Examples
///
/// ```
/// use mds_isa::{ProgramBuilder, Reg};
/// use mds_emu::Trace;
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::T0, 3);
/// b.label("loop");
/// b.addi(Reg::T0, Reg::T0, -1);
/// b.bne(Reg::T0, Reg::ZERO, "loop");
/// b.halt();
/// let p = b.build()?;
///
/// let trace = Trace::capture(&p)?;
/// assert_eq!(trace.len() as u64, trace.summary().instructions);
/// assert_eq!(trace.summary().taken_branches, 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct Trace {
    records: Vec<DynInst>,
    summary: TraceSummary,
    /// Lazily-built structure-of-arrays view of `records` (see
    /// [`ReplayPlan`]); built at most once per trace and shared by every
    /// simulator replaying it.
    plan: OnceLock<Arc<ReplayPlan>>,
}

impl Clone for Trace {
    fn clone(&self) -> Trace {
        // An already-built plan is carried over (it is a pure function of
        // the records); an unbuilt one stays unbuilt.
        let plan = OnceLock::new();
        if let Some(p) = self.plan.get() {
            let _ = plan.set(Arc::clone(p));
        }
        Trace {
            records: self.records.clone(),
            summary: self.summary,
            plan,
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Trace) -> bool {
        // The plan is derived state; two traces are equal iff their
        // captured streams are.
        self.records == other.records && self.summary == other.summary
    }
}

// The whole point of `Trace` is cross-thread sharing; keep that property
// checked at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Trace>();
};

impl Trace {
    /// Runs `program` to completion on a fresh [`Emulator`] and captures
    /// the full committed stream.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from execution (wild PCs, the
    /// instruction budget).
    pub fn capture(program: &Program) -> Result<Trace, EmuError> {
        Self::capture_limited(program, None)
    }

    /// Like [`Trace::capture`] with an explicit instruction budget.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from execution.
    pub fn capture_limited(program: &Program, limit: Option<u64>) -> Result<Trace, EmuError> {
        let mut emu = Emulator::new(program);
        if let Some(limit) = limit {
            emu = emu.with_limit(limit);
        }
        let records = emu.run()?;
        Ok(Trace {
            records,
            summary: emu.summary(),
            plan: OnceLock::new(),
        })
    }

    /// Wraps an already-collected committed stream and its counts.
    pub fn from_parts(records: Vec<DynInst>, summary: TraceSummary) -> Trace {
        Trace {
            records,
            summary,
            plan: OnceLock::new(),
        }
    }

    /// The structure-of-arrays replay plan for this trace, building it on
    /// first use. Subsequent calls (from any thread) return the same
    /// shared plan.
    pub fn replay_plan(&self) -> &Arc<ReplayPlan> {
        self.plan
            .get_or_init(|| Arc::new(ReplayPlan::build(&self.records)))
    }

    /// The committed records, in sequential order.
    pub fn records(&self) -> &[DynInst] {
        &self.records
    }

    /// Aggregate counts over the whole stream.
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// Number of committed instructions.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Approximate resident size of the trace in bytes (records plus the
    /// replay plan, if built) — the number a trace cache budgets against.
    pub fn resident_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<DynInst>()
            + self.plan.get().map_or(0, |p| p.resident_bytes())
    }
}

/// Formats one committed instruction as a single annotated line.
///
/// # Examples
///
/// ```
/// use mds_isa::{ProgramBuilder, Reg};
/// use mds_emu::{format_dyninst, Emulator};
///
/// let mut b = ProgramBuilder::new();
/// b.alloc("x", 1);
/// b.la(Reg::S0, "x");
/// b.ld(Reg::T0, Reg::S0, 0);
/// b.halt();
/// let p = b.build()?;
/// let trace = Emulator::new(&p).run()?;
/// let line = format_dyninst(&trace[1]);
/// assert!(line.contains("ld t0, 0(s0)"));
/// assert!(line.contains("[load @0x10000000]"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn format_dyninst(d: &DynInst) -> String {
    let mut line = String::new();
    if d.new_task {
        line.push_str("==task== ");
    }
    let _ = write!(
        line,
        "{:>8}  pc={:<5} {:<28}",
        d.seq,
        d.pc,
        d.inst.to_string()
    );
    if let Some(m) = d.mem {
        let kind = if m.is_store { "store" } else { "load" };
        let _ = write!(line, " [{kind} @{:#x}", m.addr);
        if m.size != 8 {
            let _ = write!(line, " x{}", m.size);
        }
        line.push(']');
    }
    if let Some(b) = d.branch {
        if b.taken {
            let _ = write!(line, " [taken -> {}]", b.next_pc);
        } else {
            line.push_str(" [not taken]");
        }
    }
    line
}

/// Renders a whole trace (or a window of one) with one line per record.
///
/// Intended for short traces and debugging sessions; for long workloads,
/// slice first.
pub fn format_trace<'a>(records: impl IntoIterator<Item = &'a DynInst>) -> String {
    let mut out = String::new();
    for d in records {
        out.push_str(&format_dyninst(d));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Emulator;
    use mds_isa::{ProgramBuilder, Reg};

    fn sample_trace() -> Vec<DynInst> {
        let mut b = ProgramBuilder::new();
        b.alloc("buf", 2);
        b.la(Reg::S0, "buf");
        b.li(Reg::T0, 2);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sb(Reg::T1, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        let p = b.build().unwrap();
        Emulator::new(&p).run().unwrap()
    }

    #[test]
    fn annotates_memory_and_branches() {
        let trace = sample_trace();
        let text = format_trace(&trace);
        assert!(text.contains("[load @0x10000000]"));
        assert!(text.contains("x1]"), "byte store shows its size: {text}");
        assert!(text.contains("[taken -> 2]"));
        assert!(text.contains("[not taken]"));
    }

    #[test]
    fn marks_task_boundaries() {
        let trace = sample_trace();
        let boundaries = format_trace(&trace)
            .lines()
            .filter(|l| l.starts_with("==task=="))
            .count();
        // seq 0 plus two loop iterations.
        assert_eq!(boundaries, 3);
    }

    #[test]
    fn plain_alu_lines_have_no_annotations() {
        let trace = sample_trace();
        let line = format_dyninst(&trace[1]); // li t0, 2
        assert!(!line.contains('['));
        assert!(line.contains("li t0, 2"));
    }

    fn sample_program() -> mds_isa::Program {
        let mut b = ProgramBuilder::new();
        b.alloc("buf", 2);
        b.la(Reg::S0, "buf");
        b.li(Reg::T0, 2);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sb(Reg::T1, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    #[test]
    fn capture_matches_streaming_run() {
        let p = sample_program();
        let trace = Trace::capture(&p).unwrap();
        let mut emu = Emulator::new(&p);
        let records = emu.run().unwrap();
        assert_eq!(trace.records(), &records[..]);
        assert_eq!(trace.summary(), emu.summary());
        assert_eq!(trace.len(), records.len());
        assert!(!trace.is_empty());
        assert!(trace.resident_bytes() >= records.len());
    }

    #[test]
    fn capture_limited_propagates_budget_errors() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.j("spin");
        let p = b.build().unwrap();
        let err = Trace::capture_limited(&p, Some(10)).unwrap_err();
        assert_eq!(err, EmuError::InstructionLimit { executed: 10 });
    }

    #[test]
    fn traces_share_across_threads() {
        let p = sample_program();
        let trace = std::sync::Arc::new(Trace::capture(&p).unwrap());
        let counts: Vec<u64> = std::thread::scope(|s| {
            (0..2)
                .map(|_| {
                    let t = std::sync::Arc::clone(&trace);
                    s.spawn(move || t.records().iter().filter(|d| d.is_load()).count() as u64)
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], trace.summary().loads);
    }

    #[test]
    fn from_parts_round_trips() {
        let p = sample_program();
        let mut emu = Emulator::new(&p);
        let records = emu.run().unwrap();
        let summary = emu.summary();
        let t = Trace::from_parts(records.clone(), summary);
        assert_eq!(t.records(), &records[..]);
        assert_eq!(t.summary(), summary);
    }
}
