//! The architectural machine state and the instruction interpreter.

use crate::dyninst::{BranchOutcome, DynInst, MemAccess};
use crate::memory::Memory;
use mds_isa::{Addr, Instruction, Opcode, Pc, Program, Reg, STACK_BASE};
use std::fmt;

/// Error raised during functional execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmuError {
    /// The PC left the program (fell off the end or a wild jump).
    PcOutOfRange {
        /// The offending PC.
        pc: Pc,
    },
    /// The configured instruction budget was exhausted before `halt`.
    InstructionLimit {
        /// Instructions executed when the limit hit.
        executed: u64,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::PcOutOfRange { pc } => write!(f, "pc {pc} outside program"),
            EmuError::InstructionLimit { executed } => {
                write!(f, "instruction limit reached after {executed} instructions")
            }
        }
    }
}

impl std::error::Error for EmuError {}

/// Architectural state: both register files, the PC, and data memory.
#[derive(Debug, Clone)]
pub struct MachineState {
    int: [i64; 32],
    fp: [f64; 32],
    /// Current program counter.
    pub pc: Pc,
    /// Data memory.
    pub mem: Memory,
    halted: bool,
}

impl MachineState {
    fn new() -> Self {
        let mut s = MachineState {
            int: [0; 32],
            fp: [0.0; 32],
            pc: 0,
            mem: Memory::new(),
            halted: false,
        };
        s.int[Reg::SP.index() as usize] = STACK_BASE as i64;
        s
    }

    /// Reads an integer register (`r0` is always zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> i64 {
        self.int[r.index() as usize]
    }

    /// Writes an integer register; writes to `r0` are ignored.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: i64) {
        if !r.is_zero() {
            self.int[r.index() as usize] = v;
        }
    }

    /// Reads a floating-point register.
    #[inline]
    pub fn freg(&self, r: Reg) -> f64 {
        self.fp[r.index() as usize]
    }

    /// Writes a floating-point register.
    #[inline]
    pub fn set_freg(&mut self, r: Reg, v: f64) {
        self.fp[r.index() as usize] = v;
    }

    /// Returns `true` once `halt` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }
}

/// Aggregate counts for a completed (or partial) run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Committed dynamic instructions.
    pub instructions: u64,
    /// Committed loads.
    pub loads: u64,
    /// Committed stores.
    pub stores: u64,
    /// Committed control transfers (conditional or not).
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Task boundaries crossed (= number of dynamic tasks).
    pub tasks: u64,
}

/// The functional emulator.
///
/// See the [crate documentation](crate) for an example. An emulator borrows
/// its program; construct a fresh one per run.
#[derive(Debug, Clone)]
pub struct Emulator<'p> {
    program: &'p Program,
    state: MachineState,
    seq: u64,
    limit: u64,
    summary: TraceSummary,
}

/// Default instruction budget: large enough for every workload in the
/// suite, small enough to catch runaway programs in tests.
pub const DEFAULT_LIMIT: u64 = 1 << 33;

impl<'p> Emulator<'p> {
    /// Creates an emulator at the program's entry point with initialized
    /// data memory and `sp` pointing at the stack base.
    pub fn new(program: &'p Program) -> Self {
        let mut state = MachineState::new();
        state.pc = program.entry();
        for (addr, value) in program.initial_data() {
            state.mem.write_u64(addr, value);
        }
        Emulator {
            program,
            state,
            seq: 0,
            limit: DEFAULT_LIMIT,
            summary: TraceSummary::default(),
        }
    }

    /// Sets the instruction budget (default [`DEFAULT_LIMIT`]).
    pub fn with_limit(mut self, limit: u64) -> Self {
        self.limit = limit;
        self
    }

    /// The architectural state (registers, memory, PC).
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Counts accumulated so far.
    pub fn summary(&self) -> TraceSummary {
        self.summary
    }

    /// Executes one instruction and returns its committed record, or
    /// `Ok(None)` once the machine has halted.
    ///
    /// # Errors
    ///
    /// [`EmuError::PcOutOfRange`] on a wild PC and
    /// [`EmuError::InstructionLimit`] when the budget is exhausted.
    pub fn step(&mut self) -> Result<Option<DynInst>, EmuError> {
        if self.state.halted {
            return Ok(None);
        }
        if self.seq >= self.limit {
            return Err(EmuError::InstructionLimit { executed: self.seq });
        }
        let pc = self.state.pc;
        let inst = *self
            .program
            .fetch(pc)
            .ok_or(EmuError::PcOutOfRange { pc })?;
        let new_task = self.seq == 0 || self.program.is_task_head(pc);
        let (mem, branch) = self.execute(pc, &inst);

        let rec = DynInst {
            seq: self.seq,
            pc,
            inst,
            mem,
            branch,
            new_task,
        };
        self.seq += 1;
        self.summary.instructions += 1;
        if rec.is_load() {
            self.summary.loads += 1;
        }
        if rec.is_store() {
            self.summary.stores += 1;
        }
        if inst.op.is_control() {
            self.summary.branches += 1;
            if inst.op.is_cond_branch() && branch.is_some_and(|b| b.taken) {
                self.summary.taken_branches += 1;
            }
        }
        if new_task {
            self.summary.tasks += 1;
        }
        Ok(Some(rec))
    }

    /// Runs to `halt`, collecting the full trace in memory.
    ///
    /// Prefer [`Emulator::run_with`] for long workloads — traces can be
    /// hundreds of millions of records.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from [`Emulator::step`].
    pub fn run(&mut self) -> Result<Vec<DynInst>, EmuError> {
        let mut out = Vec::new();
        while let Some(d) = self.step()? {
            out.push(d);
        }
        Ok(out)
    }

    /// Runs to `halt`, streaming each committed record through `f`.
    ///
    /// # Errors
    ///
    /// Propagates any [`EmuError`] from [`Emulator::step`].
    pub fn run_with(&mut self, mut f: impl FnMut(&DynInst)) -> Result<TraceSummary, EmuError> {
        while let Some(d) = self.step()? {
            f(&d);
        }
        Ok(self.summary)
    }

    fn execute(
        &mut self,
        pc: Pc,
        inst: &Instruction,
    ) -> (Option<MemAccess>, Option<BranchOutcome>) {
        use Opcode::*;
        let s = &mut self.state;
        let next = pc + 1;
        let mut mem = None;
        let mut branch = None;
        let mut new_pc = next;

        macro_rules! alu {
            ($f:expr) => {{
                let a = s.reg(inst.rs1);
                let b = s.reg(inst.rs2);
                #[allow(clippy::redundant_closure_call)]
                s.set_reg(inst.rd, ($f)(a, b));
            }};
        }
        macro_rules! alui {
            ($f:expr) => {{
                let a = s.reg(inst.rs1);
                let b = inst.imm as i64;
                #[allow(clippy::redundant_closure_call)]
                s.set_reg(inst.rd, ($f)(a, b));
            }};
        }
        macro_rules! falu {
            ($f:expr) => {{
                let a = s.freg(inst.rs1);
                let b = s.freg(inst.rs2);
                #[allow(clippy::redundant_closure_call)]
                s.set_freg(inst.rd, ($f)(a, b));
            }};
        }
        macro_rules! cond {
            ($f:expr) => {{
                let a = s.reg(inst.rs1);
                let b = s.reg(inst.rs2);
                #[allow(clippy::redundant_closure_call)]
                let taken = ($f)(a, b);
                if taken {
                    new_pc = inst.imm as Pc;
                }
                branch = Some(BranchOutcome {
                    taken,
                    next_pc: new_pc,
                });
            }};
        }

        match inst.op {
            Add => alu!(|a: i64, b: i64| a.wrapping_add(b)),
            Sub => alu!(|a: i64, b: i64| a.wrapping_sub(b)),
            Mul => alu!(|a: i64, b: i64| a.wrapping_mul(b)),
            Div => alu!(|a: i64, b: i64| if b == 0 { -1 } else { a.wrapping_div(b) }),
            Rem => alu!(|a: i64, b: i64| if b == 0 { a } else { a.wrapping_rem(b) }),
            And => alu!(|a, b| a & b),
            Or => alu!(|a, b| a | b),
            Xor => alu!(|a, b| a ^ b),
            Sll => alu!(|a: i64, b: i64| ((a as u64) << (b as u64 & 63)) as i64),
            Srl => alu!(|a: i64, b: i64| ((a as u64) >> (b as u64 & 63)) as i64),
            Sra => alu!(|a: i64, b: i64| a >> (b as u64 & 63)),
            Slt => alu!(|a: i64, b: i64| (a < b) as i64),
            Sltu => alu!(|a: i64, b: i64| ((a as u64) < (b as u64)) as i64),
            Addi => alui!(|a: i64, b: i64| a.wrapping_add(b)),
            Andi => alui!(|a, b| a & b),
            Ori => alui!(|a, b| a | b),
            Xori => alui!(|a, b| a ^ b),
            Slli => alui!(|a: i64, b: i64| ((a as u64) << (b as u64 & 63)) as i64),
            Srli => alui!(|a: i64, b: i64| ((a as u64) >> (b as u64 & 63)) as i64),
            Srai => alui!(|a: i64, b: i64| a >> (b as u64 & 63)),
            Slti => alui!(|a: i64, b: i64| (a < b) as i64),
            Li => s.set_reg(inst.rd, inst.imm as i64),
            Ld => {
                let addr = effective(s, inst);
                s.set_reg(inst.rd, s.mem.read_u64(addr) as i64);
                mem = Some(MemAccess {
                    addr,
                    size: 8,
                    is_store: false,
                });
            }
            Lb => {
                let addr = effective(s, inst);
                s.set_reg(inst.rd, s.mem.read_u8(addr) as i64);
                mem = Some(MemAccess {
                    addr,
                    size: 1,
                    is_store: false,
                });
            }
            Sd => {
                let addr = effective(s, inst);
                s.mem.write_u64(addr, s.reg(inst.rs2) as u64);
                mem = Some(MemAccess {
                    addr,
                    size: 8,
                    is_store: true,
                });
            }
            Sb => {
                let addr = effective(s, inst);
                s.mem.write_u8(addr, s.reg(inst.rs2) as u8);
                mem = Some(MemAccess {
                    addr,
                    size: 1,
                    is_store: true,
                });
            }
            Beq => cond!(|a, b| a == b),
            Bne => cond!(|a, b| a != b),
            Blt => cond!(|a, b| a < b),
            Bge => cond!(|a, b| a >= b),
            Bltu => cond!(|a: i64, b: i64| (a as u64) < (b as u64)),
            Bgeu => cond!(|a: i64, b: i64| (a as u64) >= (b as u64)),
            J => {
                new_pc = inst.imm as Pc;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc: new_pc,
                });
            }
            Jal => {
                s.set_reg(inst.rd, next as i64);
                new_pc = inst.imm as Pc;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc: new_pc,
                });
            }
            Jr => {
                new_pc = s.reg(inst.rs1) as Pc;
                branch = Some(BranchOutcome {
                    taken: true,
                    next_pc: new_pc,
                });
            }
            FAdd => falu!(|a: f64, b: f64| a + b),
            FSub => falu!(|a: f64, b: f64| a - b),
            FMul => falu!(|a: f64, b: f64| a * b),
            FDiv => falu!(|a: f64, b: f64| a / b),
            FSqrt => {
                let v = s.freg(inst.rs1);
                s.set_freg(inst.rd, v.sqrt());
            }
            FMov => {
                let v = s.freg(inst.rs1);
                s.set_freg(inst.rd, v);
            }
            FNeg => {
                let v = s.freg(inst.rs1);
                s.set_freg(inst.rd, -v);
            }
            Fld => {
                let addr = effective(s, inst);
                s.set_freg(inst.rd, s.mem.read_f64(addr));
                mem = Some(MemAccess {
                    addr,
                    size: 8,
                    is_store: false,
                });
            }
            Fsd => {
                let addr = effective(s, inst);
                s.mem.write_f64(addr, s.freg(inst.rs2));
                mem = Some(MemAccess {
                    addr,
                    size: 8,
                    is_store: true,
                });
            }
            Feq => {
                let r = (s.freg(inst.rs1) == s.freg(inst.rs2)) as i64;
                s.set_reg(inst.rd, r);
            }
            Flt => {
                let r = (s.freg(inst.rs1) < s.freg(inst.rs2)) as i64;
                s.set_reg(inst.rd, r);
            }
            Fle => {
                let r = (s.freg(inst.rs1) <= s.freg(inst.rs2)) as i64;
                s.set_reg(inst.rd, r);
            }
            FCvtDl => {
                let v = s.reg(inst.rs1) as f64;
                s.set_freg(inst.rd, v);
            }
            FCvtLd => {
                let v = s.freg(inst.rs1) as i64; // saturating cast
                s.set_reg(inst.rd, v);
            }
            Nop => {}
            Halt => {
                s.halted = true;
            }
        }
        s.pc = new_pc;
        (mem, branch)
    }
}

#[inline]
fn effective(s: &MachineState, inst: &Instruction) -> Addr {
    (s.reg(inst.rs1).wrapping_add(inst.imm as i64)) as Addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_isa::ProgramBuilder;

    fn run(b: ProgramBuilder) -> (Vec<DynInst>, MachineState) {
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        let t = e.run().unwrap();
        (t, e.state().clone())
    }

    #[test]
    fn arithmetic_semantics() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 10);
        b.li(Reg::T1, 3);
        b.add(Reg::A0, Reg::T0, Reg::T1);
        b.sub(Reg::A1, Reg::T0, Reg::T1);
        b.mul(Reg::A2, Reg::T0, Reg::T1);
        b.div(Reg::A3, Reg::T0, Reg::T1);
        b.rem(Reg::A4, Reg::T0, Reg::T1);
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 13);
        assert_eq!(s.reg(Reg::A1), 7);
        assert_eq!(s.reg(Reg::A2), 30);
        assert_eq!(s.reg(Reg::A3), 3);
        assert_eq!(s.reg(Reg::A4), 1);
    }

    #[test]
    fn division_by_zero_does_not_trap() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 10);
        b.div(Reg::A0, Reg::T0, Reg::ZERO);
        b.rem(Reg::A1, Reg::T0, Reg::ZERO);
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), -1);
        assert_eq!(s.reg(Reg::A1), 10);
    }

    #[test]
    fn shifts_and_compares() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, -8);
        b.srai(Reg::A0, Reg::T0, 1); // arithmetic: -4
        b.srli(Reg::A1, Reg::T0, 60); // logical: high bits
        b.slli(Reg::A2, Reg::T0, 1); // -16
        b.slti(Reg::A3, Reg::T0, 0); // 1
        b.li(Reg::T1, 1);
        b.sltu(Reg::A4, Reg::T0, Reg::T1); // -8 as u64 is huge: 0
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), -4);
        assert_eq!(s.reg(Reg::A1), 0xf);
        assert_eq!(s.reg(Reg::A2), -16);
        assert_eq!(s.reg(Reg::A3), 1);
        assert_eq!(s.reg(Reg::A4), 0);
    }

    #[test]
    fn zero_register_is_immutable() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::ZERO, 99);
        b.addi(Reg::ZERO, Reg::ZERO, 5);
        b.mv(Reg::A0, Reg::ZERO);
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 0);
    }

    #[test]
    fn loads_and_stores_roundtrip_with_records() {
        let mut b = ProgramBuilder::new();
        let base = b.alloc("buf", 2);
        b.la(Reg::S0, "buf");
        b.li(Reg::T0, 0x5a);
        b.sd(Reg::T0, Reg::S0, 0);
        b.sb(Reg::T0, Reg::S0, 8);
        b.ld(Reg::A0, Reg::S0, 0);
        b.lb(Reg::A1, Reg::S0, 8);
        b.halt();
        let (t, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 0x5a);
        assert_eq!(s.reg(Reg::A1), 0x5a);
        let mems: Vec<MemAccess> = t.iter().filter_map(|d| d.mem).collect();
        assert_eq!(mems.len(), 4);
        assert_eq!(
            mems[0],
            MemAccess {
                addr: base,
                size: 8,
                is_store: true
            }
        );
        assert_eq!(
            mems[1],
            MemAccess {
                addr: base + 8,
                size: 1,
                is_store: true
            }
        );
        assert!(!mems[2].is_store);
        assert_eq!(mems[3].size, 1);
    }

    #[test]
    fn byte_load_zero_extends() {
        let mut b = ProgramBuilder::new();
        b.alloc("buf", 1);
        b.la(Reg::S0, "buf");
        b.li(Reg::T0, -1); // 0xff in the low byte
        b.sb(Reg::T0, Reg::S0, 0);
        b.lb(Reg::A0, Reg::S0, 0);
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 0xff);
    }

    #[test]
    fn loop_executes_expected_count() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 5);
        b.li(Reg::A0, 0);
        b.label("loop");
        b.addi(Reg::A0, Reg::A0, 2);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        let (t, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 10);
        // 2 setup + 5 * 3 loop + 1 halt
        assert_eq!(t.len(), 18);
        let taken: Vec<bool> = t
            .iter()
            .filter_map(|d| d.branch.map(|br| br.taken))
            .collect();
        assert_eq!(taken, vec![true, true, true, true, false]);
    }

    #[test]
    fn call_and_return() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::A0, 1);
        b.call("double");
        b.call("double");
        b.halt();
        b.label("double");
        b.add(Reg::A0, Reg::A0, Reg::A0);
        b.ret();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 4);
    }

    #[test]
    fn fp_pipeline() {
        let mut b = ProgramBuilder::new();
        b.alloc("v", 2);
        b.la(Reg::S0, "v");
        b.li(Reg::T0, 9);
        b.fcvt_d_l(Reg::f(0), Reg::T0);
        b.fsqrt(Reg::f(1), Reg::f(0)); // 3.0
        b.fadd(Reg::f(2), Reg::f(1), Reg::f(1)); // 6.0
        b.fmul(Reg::f(3), Reg::f(2), Reg::f(1)); // 18.0
        b.fdiv(Reg::f(4), Reg::f(3), Reg::f(0)); // 2.0
        b.fsd(Reg::f(4), Reg::S0, 0);
        b.fld(Reg::f(5), Reg::S0, 0);
        b.fcvt_l_d(Reg::A0, Reg::f(5));
        b.flt(Reg::A1, Reg::f(0), Reg::f(3)); // 9 < 18 -> 1
        b.fneg(Reg::f(6), Reg::f(4));
        b.fcvt_l_d(Reg::A2, Reg::f(6));
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 2);
        assert_eq!(s.reg(Reg::A1), 1);
        assert_eq!(s.reg(Reg::A2), -2);
    }

    #[test]
    fn task_boundaries_recorded() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 3);
        b.label("loop");
        b.task();
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        let (t, _) = run(b);
        // seq 0 is always a boundary; each iteration head too.
        let boundaries: Vec<u64> = t.iter().filter(|d| d.new_task).map(|d| d.seq).collect();
        assert_eq!(boundaries, vec![0, 1, 3, 5]);
    }

    #[test]
    fn wild_jump_reports_pc() {
        let mut b = ProgramBuilder::new();
        b.li(Reg::T0, 1000);
        b.jr(Reg::T0);
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        let err = e.run().unwrap_err();
        assert_eq!(err, EmuError::PcOutOfRange { pc: 1000 });
    }

    #[test]
    fn missing_halt_reports_out_of_range() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build().unwrap();
        let err = Emulator::new(&p).run().unwrap_err();
        assert_eq!(err, EmuError::PcOutOfRange { pc: 1 });
    }

    #[test]
    fn instruction_limit_enforced() {
        let mut b = ProgramBuilder::new();
        b.label("spin");
        b.j("spin");
        let p = b.build().unwrap();
        let err = Emulator::new(&p).with_limit(100).run().unwrap_err();
        assert_eq!(err, EmuError::InstructionLimit { executed: 100 });
    }

    #[test]
    fn step_after_halt_returns_none() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        assert!(e.step().unwrap().is_some());
        assert!(e.step().unwrap().is_none());
        assert!(e.state().is_halted());
    }

    #[test]
    fn summary_counts_everything() {
        let mut b = ProgramBuilder::new();
        b.alloc("x", 1);
        b.la(Reg::S0, "x");
        b.li(Reg::T0, 2);
        b.label("loop");
        b.task();
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sd(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        let p = b.build().unwrap();
        let mut e = Emulator::new(&p);
        let mut seen = 0u64;
        let sum = e.run_with(|_| seen += 1).unwrap();
        assert_eq!(sum.instructions, seen);
        assert_eq!(sum.loads, 2);
        assert_eq!(sum.stores, 2);
        assert_eq!(sum.branches, 2);
        assert_eq!(sum.taken_branches, 1);
        assert_eq!(sum.tasks, 3); // seq 0 + two loop iterations
    }

    #[test]
    fn initial_data_visible_to_first_load() {
        let mut b = ProgramBuilder::new();
        b.alloc_init("k", &[1234]);
        b.la(Reg::S0, "k");
        b.ld(Reg::A0, Reg::S0, 0);
        b.halt();
        let (_, s) = run(b);
        assert_eq!(s.reg(Reg::A0), 1234);
    }

    #[test]
    fn sp_starts_at_stack_base() {
        let mut b = ProgramBuilder::new();
        b.halt();
        let p = b.build().unwrap();
        let e = Emulator::new(&p);
        assert_eq!(e.state().reg(Reg::SP), STACK_BASE as i64);
    }
}
