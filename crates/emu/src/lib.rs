//! Functional emulator for the `mds` ISA.
//!
//! The emulator executes a [`mds_isa::Program`] architecturally — no timing,
//! no speculation — and streams the **committed dynamic instruction stream**
//! as [`DynInst`] records. Those records carry everything the dependence
//! machinery downstream needs: the PC, the resolved memory address and
//! access size for loads/stores, branch outcomes, and Multiscalar
//! task-boundary markers.
//!
//! Both simulators in the workspace are fed from here:
//!
//! - `mds-ooo` consumes the stream directly (the paper's "unrealistic OOO"
//!   model is defined over the committed sequential order), and
//! - `mds-multiscalar` partitions the stream into tasks and replays them on
//!   its cycle-level timing model.
//!
//! # Examples
//!
//! ```
//! use mds_isa::{ProgramBuilder, Reg};
//! use mds_emu::Emulator;
//!
//! let mut b = ProgramBuilder::new();
//! b.li(Reg::A0, 6);
//! b.li(Reg::A1, 7);
//! b.mul(Reg::A0, Reg::A0, Reg::A1);
//! b.halt();
//! let program = b.build()?;
//!
//! let mut emu = Emulator::new(&program);
//! let trace = emu.run()?;
//! assert_eq!(trace.len(), 4);
//! assert_eq!(emu.state().reg(mds_isa::Reg::A0), 42);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dyninst;
pub mod machine;
pub mod memory;
pub mod plan;
pub mod trace;

pub use dyninst::{BranchOutcome, DynInst, MemAccess};
pub use machine::{EmuError, Emulator, MachineState, TraceSummary};
pub use memory::Memory;
pub use plan::ReplayPlan;
pub use trace::{format_dyninst, format_trace, Trace};
