//! Committed dynamic instruction records.

use mds_isa::{Addr, Instruction, Pc};

/// A resolved memory access performed by a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// Effective byte address.
    pub addr: Addr,
    /// Access size in bytes (1 or 8).
    pub size: u8,
    /// `true` for stores, `false` for loads.
    pub is_store: bool,
}

impl MemAccess {
    /// Returns `true` when the byte ranges of `self` and `other` overlap.
    ///
    /// # Examples
    ///
    /// ```
    /// use mds_emu::MemAccess;
    /// let a = MemAccess { addr: 0, size: 8, is_store: true };
    /// let b = MemAccess { addr: 7, size: 1, is_store: false };
    /// let c = MemAccess { addr: 8, size: 8, is_store: false };
    /// assert!(a.overlaps(&b));
    /// assert!(!a.overlaps(&c));
    /// ```
    pub fn overlaps(&self, other: &MemAccess) -> bool {
        let a_end = self.addr + self.size as Addr;
        let b_end = other.addr + other.size as Addr;
        self.addr < b_end && other.addr < a_end
    }
}

/// The outcome of a committed control-transfer instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchOutcome {
    /// Whether the branch redirected the PC (unconditional transfers are
    /// always taken).
    pub taken: bool,
    /// The PC the machine continued at.
    pub next_pc: Pc,
}

/// One committed dynamic instruction.
///
/// The record is intentionally self-contained: consumers never need the
/// original [`mds_isa::Program`] to reason about dependences or replay
/// timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynInst {
    /// Position in the committed sequential order (0-based).
    pub seq: u64,
    /// The instruction's PC (static identity; the dependence tables key on
    /// this).
    pub pc: Pc,
    /// The static instruction.
    pub inst: Instruction,
    /// The memory access, for loads and stores.
    pub mem: Option<MemAccess>,
    /// The control outcome, for branches and jumps.
    pub branch: Option<BranchOutcome>,
    /// `true` when this instruction begins a new Multiscalar task.
    pub new_task: bool,
}

impl DynInst {
    /// Shorthand: is this a memory load?
    pub fn is_load(&self) -> bool {
        matches!(self.mem, Some(m) if !m.is_store)
    }

    /// Shorthand: is this a memory store?
    pub fn is_store(&self) -> bool {
        matches!(self.mem, Some(m) if m.is_store)
    }

    /// The effective address, if this is a memory operation.
    pub fn addr(&self) -> Option<Addr> {
        self.mem.map(|m| m.addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_is_symmetric_and_range_based() {
        let word = |addr| MemAccess {
            addr,
            size: 8,
            is_store: false,
        };
        let byte = |addr| MemAccess {
            addr,
            size: 1,
            is_store: true,
        };
        assert!(word(0).overlaps(&word(0)));
        assert!(word(0).overlaps(&word(4))); // partial overlap
        assert!(!word(0).overlaps(&word(8)));
        assert!(byte(3).overlaps(&word(0)));
        assert!(word(0).overlaps(&byte(3)));
        assert!(!byte(8).overlaps(&word(0)));
    }

    #[test]
    fn dyninst_predicates() {
        let d = DynInst {
            seq: 0,
            pc: 0,
            inst: Instruction::NOP,
            mem: Some(MemAccess {
                addr: 16,
                size: 8,
                is_store: false,
            }),
            branch: None,
            new_task: false,
        };
        assert!(d.is_load());
        assert!(!d.is_store());
        assert_eq!(d.addr(), Some(16));

        let s = DynInst {
            mem: Some(MemAccess {
                addr: 16,
                size: 8,
                is_store: true,
            }),
            ..d
        };
        assert!(s.is_store());

        let n = DynInst { mem: None, ..d };
        assert!(!n.is_load());
        assert_eq!(n.addr(), None);
    }
}
