//! Structure-of-arrays replay plan: the committed stream predecoded into
//! dense parallel vectors, with memory dependences pre-resolved.
//!
//! A [`crate::Trace`] stores [`DynInst`] records — convenient to capture,
//! but expensive to replay: every simulator pass re-decodes operands
//! (`Instruction::reads`/`writes` are `match`es over the format), re-splits
//! tasks (cloning every record into per-task `Vec`s), and re-discovers
//! store→load overlaps through per-task hash maps. None of that depends on
//! timing: operands, task boundaries, and which earlier store a load
//! overlaps are pure functions of the committed stream.
//!
//! [`ReplayPlan`] hoists all of it out of the replay loop. It is built
//! once per trace (cached on the `Trace` behind a `OnceLock`) and shared
//! read-only by every simulator configuration replaying that trace:
//!
//! - per-record arrays: PC, opcode, dense operand indices, flags,
//!   effective address, and memory ordinal;
//! - per-task arrays: record / store / load range starts and the task's
//!   start PC;
//! - per-store arrays: owning record and task;
//! - per-load arrays: the pre-resolved *intra-task* forwarding source and
//!   *inter-task* producer store (as global store ordinals).
//!
//! # Dependence pre-resolution
//!
//! For each load the plan records two store ordinals:
//!
//! - `load_intra`: the youngest earlier store **in the same task** whose
//!   byte range overlaps the load (the never-speculated forwarding
//!   source), or [`NONE`];
//! - `load_inter`: the youngest earlier store **in any earlier task**
//!   overlapping the load, or [`NONE`]. Because dynamic task indices are
//!   monotone along the committed stream, the youngest such store by
//!   stream position is also the youngest by (task, within-task index) —
//!   exactly the store a windowed producer search would find. A consumer
//!   with a bounded task window checks `store_task[load_inter]` against
//!   its window: if the globally youngest overlapping store has already
//!   left the window, *no* overlapping store is in the window, so the one
//!   pre-resolved ordinal answers the producer query for every window
//!   size.

use crate::dyninst::DynInst;
use mds_harness::hash::FxHashMap;
use mds_isa::{Addr, FuClass, Opcode, Pc};

/// Sentinel ordinal: "no such store / not a memory operation".
pub const NONE: u32 = u32::MAX;

/// Sentinel dense register index: "no operand in this slot".
pub const NO_REG: u8 = u8::MAX;

/// Record flag: the instruction is a memory operation.
pub const F_MEM: u8 = 1 << 0;
/// Record flag: the memory operation is a store.
pub const F_STORE: u8 = 1 << 1;
/// Record flag: the instruction is a control transfer.
pub const F_CONTROL: u8 = 1 << 2;

/// Functional-unit class codes for [`ReplayPlan::fu`] (memory operations
/// are dispatched via [`F_MEM`] instead).
pub const FU_SIMPLE: u8 = 0;
/// Complex-integer class code.
pub const FU_COMPLEX: u8 = 1;
/// Floating-point class code.
pub const FU_FP: u8 = 2;
/// Branch class code.
pub const FU_BRANCH: u8 = 3;

/// The youngest store seen so far for one address key, plus the youngest
/// store from any strictly earlier task (see module docs).
struct KeyState {
    youngest_task: u32,
    youngest_ord: u32,
    /// Youngest store in a task earlier than `youngest_task`; `NONE` ord
    /// when no such store exists.
    prev_ord: u32,
}

/// The structure-of-arrays view of one committed trace (see module docs).
///
/// All `Vec`s prefixed `task_` have one entry per dynamic task **plus a
/// trailing sentinel**, so `task_start[k]..task_start[k + 1]` is always a
/// valid half-open range.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPlan {
    /// Per record: the instruction's PC.
    pub pc: Vec<Pc>,
    /// Per record: the opcode (for latency lookup).
    pub op: Vec<Opcode>,
    /// Per record: [`F_MEM`] / [`F_STORE`] / [`F_CONTROL`] bits.
    pub flags: Vec<u8>,
    /// Per record: functional-unit class code ([`FU_SIMPLE`]…).
    pub fu: Vec<u8>,
    /// Per record: dense index of read slot 0 (the base register for
    /// memory operations), or [`NO_REG`].
    pub src1: Vec<u8>,
    /// Per record: dense index of read slot 1, or [`NO_REG`].
    pub src2: Vec<u8>,
    /// Per record: dense index of the written register, or [`NO_REG`].
    pub dst: Vec<u8>,
    /// Per record: effective byte address (0 for non-memory records).
    pub addr: Vec<Addr>,
    /// Per record: global store ordinal (stores), global load ordinal
    /// (loads), or [`NONE`].
    pub mem_ord: Vec<u32>,
    /// Record index where each task begins, plus sentinel.
    pub task_start: Vec<u32>,
    /// Per task: its start PC (no sentinel).
    pub task_start_pc: Vec<Pc>,
    /// First global store ordinal of each task, plus sentinel.
    pub task_store_start: Vec<u32>,
    /// First global load ordinal of each task, plus sentinel.
    pub task_load_start: Vec<u32>,
    /// Per store: the record index it came from.
    pub store_rec: Vec<u32>,
    /// Per store: the dynamic task it belongs to.
    pub store_task: Vec<u32>,
    /// Per load: the record index it came from.
    pub load_rec: Vec<u32>,
    /// Per load: same-task forwarding source (global store ordinal), or
    /// [`NONE`].
    pub load_intra: Vec<u32>,
    /// Per load: youngest earlier-task overlapping store (global store
    /// ordinal), or [`NONE`].
    pub load_inter: Vec<u32>,
}

impl ReplayPlan {
    /// Builds the plan in one pass over the committed stream.
    ///
    /// Task boundaries follow the task splitter's semantics: record 0
    /// always begins task 0, and a later record begins a new task exactly
    /// when its `new_task` marker is set.
    pub fn build(records: &[DynInst]) -> ReplayPlan {
        let n = records.len();
        let mut plan = ReplayPlan {
            pc: Vec::with_capacity(n),
            op: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            fu: Vec::with_capacity(n),
            src1: Vec::with_capacity(n),
            src2: Vec::with_capacity(n),
            dst: Vec::with_capacity(n),
            addr: Vec::with_capacity(n),
            mem_ord: Vec::with_capacity(n),
            task_start: Vec::new(),
            task_start_pc: Vec::new(),
            task_store_start: Vec::new(),
            task_load_start: Vec::new(),
            store_rec: Vec::new(),
            store_task: Vec::new(),
            load_rec: Vec::new(),
            load_intra: Vec::new(),
            load_inter: Vec::new(),
        };
        let mut word: FxHashMap<Addr, KeyState> = FxHashMap::default();
        let mut byte: FxHashMap<Addr, KeyState> = FxHashMap::default();
        let mut task: u32 = 0;

        for (i, d) in records.iter().enumerate() {
            if i == 0 || d.new_task {
                if i != 0 {
                    task += 1;
                }
                plan.task_start.push(i as u32);
                plan.task_start_pc.push(d.pc);
                plan.task_store_start.push(plan.store_rec.len() as u32);
                plan.task_load_start.push(plan.load_rec.len() as u32);
            }
            plan.pc.push(d.pc);
            plan.op.push(d.inst.op);
            let [r1, r2] = d.inst.reads();
            plan.src1.push(r1.map_or(NO_REG, |r| r.dense_index() as u8));
            plan.src2.push(r2.map_or(NO_REG, |r| r.dense_index() as u8));
            plan.dst
                .push(d.inst.writes().map_or(NO_REG, |r| r.dense_index() as u8));
            plan.fu.push(match d.inst.op.fu_class() {
                FuClass::ComplexInt => FU_COMPLEX,
                FuClass::Fp => FU_FP,
                FuClass::Branch => FU_BRANCH,
                FuClass::SimpleInt | FuClass::Mem => FU_SIMPLE,
            });
            let mut flags = 0u8;
            if d.inst.op.is_control() {
                flags |= F_CONTROL;
            }
            match d.mem {
                Some(mem) if mem.is_store => {
                    flags |= F_MEM | F_STORE;
                    plan.addr.push(mem.addr);
                    let ord = plan.store_rec.len() as u32;
                    plan.mem_ord.push(ord);
                    plan.store_rec.push(i as u32);
                    plan.store_task.push(task);
                    let (map, key) = if mem.size == 1 {
                        (&mut byte, mem.addr)
                    } else {
                        (&mut word, mem.addr & !7)
                    };
                    map.entry(key)
                        .and_modify(|st| {
                            if st.youngest_task < task {
                                st.prev_ord = st.youngest_ord;
                            }
                            st.youngest_task = task;
                            st.youngest_ord = ord;
                        })
                        .or_insert(KeyState {
                            youngest_task: task,
                            youngest_ord: ord,
                            prev_ord: NONE,
                        });
                }
                Some(mem) => {
                    flags |= F_MEM;
                    plan.addr.push(mem.addr);
                    plan.mem_ord.push(plan.load_rec.len() as u32);
                    plan.load_rec.push(i as u32);
                    // Store ordinals grow with stream position, so "the
                    // youngest candidate" is simply the largest ordinal —
                    // both within the task and across earlier tasks.
                    let mut intra = NONE;
                    let mut inter = NONE;
                    let mut consider = |st: Option<&KeyState>| {
                        if let Some(st) = st {
                            if st.youngest_task == task {
                                if intra == NONE || st.youngest_ord > intra {
                                    intra = st.youngest_ord;
                                }
                                if st.prev_ord != NONE && (inter == NONE || st.prev_ord > inter) {
                                    inter = st.prev_ord;
                                }
                            } else if inter == NONE || st.youngest_ord > inter {
                                inter = st.youngest_ord;
                            }
                        }
                    };
                    if mem.size == 1 {
                        consider(byte.get(&mem.addr));
                        consider(word.get(&(mem.addr & !7)));
                    } else {
                        consider(word.get(&(mem.addr & !7)));
                        for b in 0..8 {
                            consider(byte.get(&(mem.addr + b)));
                        }
                    }
                    plan.load_intra.push(intra);
                    plan.load_inter.push(inter);
                }
                None => {
                    plan.addr.push(0);
                    plan.mem_ord.push(NONE);
                }
            }
            plan.flags.push(flags);
        }

        plan.task_start.push(n as u32);
        plan.task_store_start.push(plan.store_rec.len() as u32);
        plan.task_load_start.push(plan.load_rec.len() as u32);
        plan
    }

    /// Number of dynamic tasks in the plan.
    pub fn tasks(&self) -> usize {
        self.task_start.len() - 1
    }

    /// The record-index range of task `k`.
    pub fn task_range(&self, k: usize) -> std::ops::Range<usize> {
        self.task_start[k] as usize..self.task_start[k + 1] as usize
    }

    /// Number of stores in task `k`.
    pub fn task_stores(&self, k: usize) -> u32 {
        self.task_store_start[k + 1] - self.task_store_start[k]
    }

    /// Number of loads in task `k`.
    pub fn task_loads(&self, k: usize) -> u32 {
        self.task_load_start[k + 1] - self.task_load_start[k]
    }

    /// The first task at which simulators replaying this trace under
    /// different speculation policies can diverge, given a `stages`-unit
    /// window: the first task that issues a load while some task in its
    /// window (`k - (stages - 1) .. k`) performed a store. Before this
    /// task no load can have an in-window producer and no older store
    /// address is outstanding, so every policy schedules identically.
    ///
    /// Returns [`ReplayPlan::tasks`] when no such task exists (the whole
    /// replay is policy-independent).
    pub fn fork_task(&self, stages: usize) -> usize {
        if stages <= 1 {
            return self.tasks();
        }
        for k in 0..self.tasks() {
            if self.task_loads(k) == 0 {
                continue;
            }
            let lo = k.saturating_sub(stages - 1);
            if self.task_store_start[k] > self.task_store_start[lo] {
                return k;
            }
        }
        self.tasks()
    }

    /// Approximate resident size of the plan in bytes (for trace-cache
    /// budgeting).
    pub fn resident_bytes(&self) -> usize {
        self.pc.len() * std::mem::size_of::<Pc>()
            + self.op.len() * std::mem::size_of::<Opcode>()
            + self.flags.len()
            + self.fu.len()
            + self.src1.len()
            + self.src2.len()
            + self.dst.len()
            + self.addr.len() * std::mem::size_of::<Addr>()
            + self.mem_ord.len() * 4
            + (self.task_start.len() + self.task_store_start.len() + self.task_load_start.len()) * 4
            + self.task_start_pc.len() * std::mem::size_of::<Pc>()
            + (self.store_rec.len() + self.store_task.len()) * 4
            + (self.load_rec.len() + self.load_intra.len() + self.load_inter.len()) * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Emulator;
    use mds_isa::{ProgramBuilder, Reg};

    fn trace(build: impl FnOnce(&mut ProgramBuilder)) -> Vec<DynInst> {
        let mut b = ProgramBuilder::new();
        build(&mut b);
        Emulator::new(&b.build().unwrap()).run().unwrap()
    }

    fn recurrence(iters: i32) -> Vec<DynInst> {
        trace(|b| {
            b.alloc("cell", 1);
            b.la(Reg::S0, "cell");
            b.li(Reg::T0, iters);
            b.label("loop");
            b.task();
            b.ld(Reg::T1, Reg::S0, 0);
            b.addi(Reg::T1, Reg::T1, 1);
            b.sd(Reg::T1, Reg::S0, 0);
            b.addi(Reg::T0, Reg::T0, -1);
            b.bne(Reg::T0, Reg::ZERO, "loop");
            b.halt();
        })
    }

    #[test]
    fn arrays_are_parallel_and_tasks_cover_the_stream() {
        let records = recurrence(5);
        let plan = ReplayPlan::build(&records);
        let n = records.len();
        assert_eq!(plan.pc.len(), n);
        assert_eq!(plan.flags.len(), n);
        assert_eq!(plan.mem_ord.len(), n);
        assert_eq!(*plan.task_start.last().unwrap() as usize, n);
        let mut covered = 0;
        for k in 0..plan.tasks() {
            let r = plan.task_range(k);
            assert_eq!(r.start, covered);
            covered = r.end;
            assert_eq!(plan.task_start_pc[k], records[r.start].pc);
        }
        assert_eq!(covered, n);
        assert_eq!(
            plan.store_rec.len() + plan.load_rec.len(),
            records.iter().filter(|d| d.mem.is_some()).count()
        );
    }

    /// Brute-force reference for the per-load dependence pre-resolution:
    /// scan all earlier records for overlapping stores.
    fn check_against_reference(records: &[DynInst]) {
        let plan = ReplayPlan::build(records);
        let mut task_of = Vec::with_capacity(records.len());
        let mut t = 0usize;
        for (i, d) in records.iter().enumerate() {
            if i > 0 && d.new_task {
                t += 1;
            }
            task_of.push(t);
        }
        for (lo, &rec) in plan.load_rec.iter().enumerate() {
            let i = rec as usize;
            let load = records[i].mem.unwrap();
            let lt = task_of[i];
            let mut intra: Option<u32> = None;
            let mut inter: Option<u32> = None;
            for (j, d) in records[..i].iter().enumerate() {
                let Some(m) = d.mem else { continue };
                if !m.is_store || !m.overlaps(&load) {
                    continue;
                }
                let ord = plan.mem_ord[j];
                if task_of[j] == lt {
                    intra = Some(ord); // later stream position wins
                } else {
                    inter = Some(ord);
                }
            }
            assert_eq!(plan.load_intra[lo], intra.unwrap_or(NONE), "load {lo}");
            assert_eq!(plan.load_inter[lo], inter.unwrap_or(NONE), "load {lo}");
        }
    }

    #[test]
    fn dependence_resolution_matches_brute_force_on_a_recurrence() {
        check_against_reference(&recurrence(8));
    }

    #[test]
    fn dependence_resolution_handles_mixed_byte_and_word_stores() {
        let records = trace(|b| {
            b.alloc("buf", 4);
            b.la(Reg::S0, "buf");
            b.li(Reg::T0, 6);
            b.label("loop");
            b.task();
            b.sd(Reg::T0, Reg::S0, 0);
            b.sb(Reg::T0, Reg::S0, 3); // byte inside the word above
            b.ld(Reg::T1, Reg::S0, 0); // overlaps both; byte store younger
            b.lb(Reg::T2, Reg::S0, 3); // overlaps both
            b.sb(Reg::T0, Reg::S0, 11);
            b.ld(Reg::T3, Reg::S0, 8); // word load over a byte-only store
            b.addi(Reg::T0, Reg::T0, -1);
            b.bne(Reg::T0, Reg::ZERO, "loop");
            b.halt();
        });
        check_against_reference(&records);
    }

    #[test]
    fn inter_task_producer_is_the_youngest_earlier_task_store() {
        let records = recurrence(6);
        let plan = ReplayPlan::build(&records);
        // Every loop-task load (task >= 1) depends on the previous task's
        // store — distance exactly 1.
        for (lo, &inter) in plan.load_inter.iter().enumerate() {
            let i = plan.load_rec[lo] as usize;
            if plan.mem_ord[i] == NONE {
                continue;
            }
            let lt = plan
                .task_start
                .partition_point(|&s| (s as usize) <= i)
                .saturating_sub(1);
            if lt >= 1 && inter != NONE {
                assert_eq!(plan.store_task[inter as usize] as usize, lt - 1);
            }
        }
    }

    #[test]
    fn fork_task_is_the_first_load_with_windowed_stores() {
        let records = recurrence(6);
        let plan = ReplayPlan::build(&records);
        // Task 0 has the loop preamble (no stores before the first task's
        // load); task 1's load sees task 0's... the first loop task stores,
        // so the second loop task is the first that can diverge.
        let f = plan.fork_task(4);
        assert!(f >= 1, "fork task {f}");
        assert!(plan.task_loads(f) > 0);
        assert!(plan.task_store_start[f] > plan.task_store_start[f.saturating_sub(3)]);
        // A 1-stage machine has no cross-task window: never forks.
        assert_eq!(plan.fork_task(1), plan.tasks());
    }

    #[test]
    fn empty_and_storeless_streams_never_fork() {
        let plan = ReplayPlan::build(&[]);
        assert_eq!(plan.tasks(), 0);
        assert_eq!(plan.fork_task(8), 0);
        let records = trace(|b| {
            b.alloc("x", 1);
            b.la(Reg::S0, "x");
            b.task();
            b.ld(Reg::T0, Reg::S0, 0);
            b.task();
            b.ld(Reg::T1, Reg::S0, 0);
            b.halt();
        });
        let plan = ReplayPlan::build(&records);
        assert_eq!(plan.fork_task(8), plan.tasks());
        assert!(plan.load_inter.iter().all(|&x| x == NONE));
    }

    #[test]
    fn resident_bytes_tracks_length() {
        let small = ReplayPlan::build(&recurrence(2));
        let big = ReplayPlan::build(&recurrence(20));
        assert!(big.resident_bytes() > small.resident_bytes());
    }
}
