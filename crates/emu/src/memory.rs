//! Paged sparse byte-addressed memory.

use mds_harness::hash::FxHashMap;
use mds_isa::Addr;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: Addr = (PAGE_SIZE as Addr) - 1;

/// Sparse 64-bit byte-addressed memory backed by 4 KiB pages.
///
/// Unmapped bytes read as zero; pages are allocated lazily on first write.
/// Words are little-endian and may be unaligned (the workloads keep them
/// aligned, but the emulator does not trap).
///
/// # Examples
///
/// ```
/// use mds_emu::Memory;
/// let mut m = Memory::new();
/// m.write_u64(0x1000, 0xdead_beef);
/// assert_eq!(m.read_u64(0x1000), 0xdead_beef);
/// assert_eq!(m.read_u64(0x2000), 0); // unmapped reads as zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct Memory {
    pages: FxHashMap<Addr, Box<[u8; PAGE_SIZE]>>,
    // One-entry translation cache for the common sequential-access case.
    last_page: Option<Addr>,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Memory::default()
    }

    /// Number of pages that have been materialized by writes.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Reads one byte (zero for unmapped addresses).
    #[inline]
    pub fn read_u8(&self, addr: Addr) -> u8 {
        match self.pages.get(&(addr >> PAGE_SHIFT)) {
            Some(page) => page[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte, materializing the page if needed.
    #[inline]
    pub fn write_u8(&mut self, addr: Addr, value: u8) {
        let page = self.page_mut(addr >> PAGE_SHIFT);
        page[(addr & PAGE_MASK) as usize] = value;
    }

    /// Reads a little-endian 64-bit word (may straddle pages).
    #[inline]
    pub fn read_u64(&self, addr: Addr) -> u64 {
        let offset = (addr & PAGE_MASK) as usize;
        if offset + 8 <= PAGE_SIZE {
            match self.pages.get(&(addr >> PAGE_SHIFT)) {
                Some(page) => {
                    u64::from_le_bytes(page[offset..offset + 8].try_into().expect("8 bytes"))
                }
                None => 0,
            }
        } else {
            let mut bytes = [0u8; 8];
            for (i, b) in bytes.iter_mut().enumerate() {
                *b = self.read_u8(addr.wrapping_add(i as Addr));
            }
            u64::from_le_bytes(bytes)
        }
    }

    /// Writes a little-endian 64-bit word (may straddle pages).
    #[inline]
    pub fn write_u64(&mut self, addr: Addr, value: u64) {
        let offset = (addr & PAGE_MASK) as usize;
        if offset + 8 <= PAGE_SIZE {
            let page = self.page_mut(addr >> PAGE_SHIFT);
            page[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
        } else {
            for (i, b) in value.to_le_bytes().iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as Addr), *b);
            }
        }
    }

    /// Reads a word as `f64` (bit pattern).
    #[inline]
    pub fn read_f64(&self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes an `f64` word (bit pattern).
    #[inline]
    pub fn write_f64(&mut self, addr: Addr, value: f64) {
        self.write_u64(addr, value.to_bits());
    }

    fn page_mut(&mut self, page_no: Addr) -> &mut [u8; PAGE_SIZE] {
        self.last_page = Some(page_no);
        self.pages
            .entry(page_no)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn unmapped_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u64(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn byte_write_read() {
        let mut m = Memory::new();
        m.write_u8(7, 0xab);
        assert_eq!(m.read_u8(7), 0xab);
        assert_eq!(m.read_u8(8), 0);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn word_straddles_page_boundary() {
        let mut m = Memory::new();
        let addr = PAGE_SIZE as Addr - 4; // spans two pages
        m.write_u64(addr, 0x1122_3344_5566_7788);
        assert_eq!(m.read_u64(addr), 0x1122_3344_5566_7788);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn word_is_little_endian() {
        let mut m = Memory::new();
        m.write_u64(0, 0x0102_0304_0506_0708);
        assert_eq!(m.read_u8(0), 0x08);
        assert_eq!(m.read_u8(7), 0x01);
    }

    #[test]
    fn f64_roundtrip() {
        let mut m = Memory::new();
        m.write_f64(64, 3.25);
        assert_eq!(m.read_f64(64), 3.25);
    }

    properties! {
        #[test]
        fn write_then_read_anywhere(addr in 0u64..1u64 << 40, value: u64) {
            let mut m = Memory::new();
            m.write_u64(addr, value);
            prop_assert_eq!(m.read_u64(addr), value);
        }

        #[test]
        fn disjoint_writes_do_not_interfere(
            a in 0u64..1u64 << 30,
            delta in 8u64..1u64 << 20,
            va: u64,
            vb: u64,
        ) {
            let b = a + delta;
            let mut m = Memory::new();
            m.write_u64(a, va);
            m.write_u64(b, vb);
            prop_assert_eq!(m.read_u64(b), vb);
            if delta >= 8 {
                prop_assert_eq!(m.read_u64(a), va);
            }
        }
    }
}
