//! The data dependence speculation policies compared in §5.4/§5.5.

use mds_harness::json::{Json, ToJson};
use std::fmt;
use std::str::FromStr;

/// The realizable predictor variants of §5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PredictorKind {
    /// Baseline: 3-bit up/down saturating counter per MDPT entry.
    Sync,
    /// Enhanced: SYNC plus the store-task-PC path refinement.
    Esync,
}

/// A data dependence speculation policy.
///
/// The four idealized policies of §5.4 plus the two realizable
/// predictor-driven mechanisms of §5.5:
///
/// | Policy | Loads with no dependence | Loads with a true dependence |
/// |---|---|---|
/// | `Never` | wait for all prior stores | wait for all prior stores |
/// | `Always` (blind) | issue immediately | issue immediately, squash on violation |
/// | `Wait` (selective, perfect prediction) | issue immediately | wait for all prior stores |
/// | `PSync` (perfect synchronization) | issue immediately | wait exactly for the producing store |
/// | `Sync`/`Esync` | predicted by the MDPT, synchronized via the MDST |
///
/// # Examples
///
/// ```
/// use mds_core::Policy;
/// let p: Policy = "esync".parse()?;
/// assert_eq!(p, Policy::Esync);
/// assert!(p.uses_predictor());
/// # Ok::<(), mds_core::ParsePolicyError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// No data dependence speculation at all.
    Never,
    /// Blind speculation — every load issues as early as possible (the
    /// policy of the contemporary processors cited in the paper).
    Always,
    /// Selective speculation with perfect dependence prediction but no
    /// synchronization: dependent loads wait until all prior store
    /// addresses are known.
    Wait,
    /// Perfect (oracle) prediction *and* synchronization — the upper bound
    /// on the proposed mechanism.
    PSync,
    /// The proposed mechanism with the baseline counter predictor.
    Sync,
    /// The proposed mechanism with the enhanced (task-PC) predictor.
    Esync,
}

impl Policy {
    /// All policies in presentation order (matches the paper's figures).
    pub const ALL: [Policy; 6] = [
        Policy::Never,
        Policy::Always,
        Policy::Wait,
        Policy::PSync,
        Policy::Sync,
        Policy::Esync,
    ];

    /// Whether this policy runs the MDPT/MDST machinery.
    pub fn uses_predictor(self) -> bool {
        matches!(self, Policy::Sync | Policy::Esync)
    }

    /// Whether this policy relies on oracle dependence knowledge.
    pub fn is_oracle(self) -> bool {
        matches!(self, Policy::Wait | Policy::PSync)
    }

    /// The predictor variant for predictor-driven policies.
    pub fn predictor(self) -> Option<PredictorKind> {
        match self {
            Policy::Sync => Some(PredictorKind::Sync),
            Policy::Esync => Some(PredictorKind::Esync),
            _ => None,
        }
    }

    /// The paper's name for the policy (upper case, as in the figures).
    pub fn paper_name(self) -> &'static str {
        match self {
            Policy::Never => "NEVER",
            Policy::Always => "ALWAYS",
            Policy::Wait => "WAIT",
            Policy::PSync => "PSYNC",
            Policy::Sync => "SYNC",
            Policy::Esync => "ESYNC",
        }
    }
}

impl ToJson for Policy {
    fn to_json(&self) -> Json {
        Json::Str(self.paper_name().to_string())
    }
}

impl ToJson for PredictorKind {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                PredictorKind::Sync => "SYNC",
                PredictorKind::Esync => "ESYNC",
            }
            .to_string(),
        )
    }
}

impl fmt::Display for Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Error returned when parsing a [`Policy`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePolicyError(String);

impl fmt::Display for ParsePolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown policy `{}` (expected one of never/always/wait/psync/sync/esync)",
            self.0
        )
    }
}

impl std::error::Error for ParsePolicyError {}

impl FromStr for Policy {
    type Err = ParsePolicyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "never" => Ok(Policy::Never),
            "always" | "blind" => Ok(Policy::Always),
            "wait" | "selective" => Ok(Policy::Wait),
            "psync" | "perfect" => Ok(Policy::PSync),
            "sync" => Ok(Policy::Sync),
            "esync" => Ok(Policy::Esync),
            other => Err(ParsePolicyError(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_all_names_and_aliases() {
        assert_eq!("never".parse::<Policy>().unwrap(), Policy::Never);
        assert_eq!("ALWAYS".parse::<Policy>().unwrap(), Policy::Always);
        assert_eq!("blind".parse::<Policy>().unwrap(), Policy::Always);
        assert_eq!("selective".parse::<Policy>().unwrap(), Policy::Wait);
        assert_eq!("perfect".parse::<Policy>().unwrap(), Policy::PSync);
        assert_eq!("Sync".parse::<Policy>().unwrap(), Policy::Sync);
        assert_eq!("esync".parse::<Policy>().unwrap(), Policy::Esync);
        assert!("bogus".parse::<Policy>().is_err());
    }

    #[test]
    fn roundtrip_display_parse() {
        for p in Policy::ALL {
            assert_eq!(p.paper_name().parse::<Policy>().unwrap(), p);
            assert_eq!(p.to_string(), p.paper_name());
        }
    }

    #[test]
    fn classification() {
        assert!(Policy::Sync.uses_predictor());
        assert!(Policy::Esync.uses_predictor());
        assert!(!Policy::Always.uses_predictor());
        assert!(Policy::PSync.is_oracle());
        assert!(Policy::Wait.is_oracle());
        assert!(!Policy::Never.is_oracle());
        assert_eq!(Policy::Sync.predictor(), Some(PredictorKind::Sync));
        assert_eq!(Policy::Esync.predictor(), Some(PredictorKind::Esync));
        assert_eq!(Policy::Never.predictor(), None);
    }

    #[test]
    fn error_message_names_offender() {
        let e = "frob".parse::<Policy>().unwrap_err();
        assert!(e.to_string().contains("frob"));
    }
}
