//! Predicted-vs-actual dependence prediction accounting (table 8).

use mds_harness::json::{Json, ToJson};
use mds_sim::stats::Percent;
use std::fmt;

/// The four-way dependence-prediction breakdown of the paper's table 8.
///
/// "A dependence prediction has to be classified into one of four possible
/// categories depending on whether a dependence is predicted and on
/// whether a dependence actually exists" (§5.5):
///
/// - `N/N`: correctly not predicted,
/// - `N/Y`: missed — may result in a mis-speculation,
/// - `Y/N`: **false dependence prediction** — may delay the load
///   unnecessarily,
/// - `Y/Y`: correctly predicted.
///
/// # Examples
///
/// ```
/// use mds_core::PredictionBreakdown;
/// let mut b = PredictionBreakdown::default();
/// b.record(false, false);
/// b.record(true, true);
/// b.record(true, false); // false dependence prediction
/// assert_eq!(b.total(), 3);
/// assert!((b.percent(true, false).value() - 33.33).abs() < 0.01);
/// assert_eq!(b.correct(), 2);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictionBreakdown {
    // counts[predicted][actual]
    counts: [[u64; 2]; 2],
}

impl PredictionBreakdown {
    /// Records one load's prediction: `predicted` is whether
    /// synchronization was predicted, `actual` whether a dependence
    /// actually manifested.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        self.counts[predicted as usize][actual as usize] += 1;
    }

    /// Reconstructs a breakdown from the four raw category counts, in
    /// N/N, N/Y, Y/N, Y/Y order — the inverse of reading them back with
    /// [`PredictionBreakdown::count`]. Exists for wire codecs that ship
    /// results between processes.
    pub fn from_counts(nn: u64, ny: u64, yn: u64, yy: u64) -> PredictionBreakdown {
        PredictionBreakdown {
            counts: [[nn, ny], [yn, yy]],
        }
    }

    /// Raw count for one category.
    pub fn count(&self, predicted: bool, actual: bool) -> u64 {
        self.counts[predicted as usize][actual as usize]
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Correct predictions (`N/N` + `Y/Y`).
    pub fn correct(&self) -> u64 {
        self.count(false, false) + self.count(true, true)
    }

    /// One category as a percentage of the total (the table 8 format).
    pub fn percent(&self, predicted: bool, actual: bool) -> Percent {
        Percent::of(self.count(predicted, actual), self.total())
    }

    /// The table 8 rows in paper order: `(label, percent)` for
    /// N/N, N/Y, Y/N, Y/Y.
    pub fn rows(&self) -> [(&'static str, Percent); 4] {
        [
            ("N/N", self.percent(false, false)),
            ("N/Y", self.percent(false, true)),
            ("Y/N", self.percent(true, false)),
            ("Y/Y", self.percent(true, true)),
        ]
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &PredictionBreakdown) {
        for p in 0..2 {
            for a in 0..2 {
                self.counts[p][a] += other.counts[p][a];
            }
        }
    }
}

impl ToJson for PredictionBreakdown {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        for (label, pct) in self.rows() {
            obj = obj.field(label, pct.value());
        }
        obj.field("total", self.total())
    }
}

impl fmt::Display for PredictionBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (label, pct) in self.rows() {
            writeln!(f, "{label}: {pct}%")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_are_independent() {
        let mut b = PredictionBreakdown::default();
        b.record(false, false);
        b.record(false, true);
        b.record(true, false);
        b.record(true, true);
        b.record(true, true);
        assert_eq!(b.count(false, false), 1);
        assert_eq!(b.count(false, true), 1);
        assert_eq!(b.count(true, false), 1);
        assert_eq!(b.count(true, true), 2);
        assert_eq!(b.total(), 5);
        assert_eq!(b.correct(), 3);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut b = PredictionBreakdown::default();
        for i in 0..17u32 {
            b.record(i % 2 == 0, i % 3 == 0);
        }
        let sum: f64 = b.rows().iter().map(|(_, p)| p.value()).sum();
        assert!((sum - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        let b = PredictionBreakdown::default();
        assert_eq!(b.total(), 0);
        for (_, p) in b.rows() {
            assert_eq!(p.value(), 0.0);
        }
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PredictionBreakdown::default();
        a.record(true, true);
        let mut b = PredictionBreakdown::default();
        b.record(true, true);
        b.record(false, true);
        a.merge(&b);
        assert_eq!(a.count(true, true), 2);
        assert_eq!(a.count(false, true), 1);
    }

    #[test]
    fn display_contains_all_rows() {
        let mut b = PredictionBreakdown::default();
        b.record(true, false);
        let s = b.to_string();
        for label in ["N/N", "N/Y", "Y/N", "Y/Y"] {
            assert!(s.contains(label), "missing {label}");
        }
    }
}
