//! The distributed MDPT/MDST organization of §4.4.5.
//!
//! For wide machines the paper proposes replicating both tables at every
//! source of memory accesses: *"identical copies of the MDPT and the MDST
//! provided at each source of memory accesses. Each source need only use
//! its local copy most of the time. As soon as a mis-speculation is
//! detected, this fact is broadcast to all copies of the MDPT … In the
//! event a match for a store is found in a local MDPT, all identifying
//! information for the entry is broadcast to all copies of the MDST …
//! any prediction update to an entry of a local MDPT must be broadcast."*
//!
//! [`DistributedSyncUnit`] models exactly that: one [`SyncUnit`] replica
//! per access source, with every state-changing event broadcast so the
//! replicas stay identical, and counters for the broadcast traffic the
//! organization costs. Because the replicas receive identical update
//! streams, lookups against any copy agree — an invariant the unit checks
//! in debug builds and the tests verify explicitly.

use crate::edge::DepEdge;
use crate::unit::{LoadDecision, SyncUnit, SyncUnitConfig};
use mds_isa::Pc;

/// Broadcast-traffic counters for the distributed organization.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BroadcastStats {
    /// Mis-speculation broadcasts (MDPT allocation in every copy).
    pub misspeculations: u64,
    /// Store-match broadcasts (MDST synchronization in every copy).
    pub store_matches: u64,
    /// Prediction-update broadcasts (commit-time training).
    pub prediction_updates: u64,
    /// Squash-invalidation broadcasts.
    pub invalidations: u64,
}

impl BroadcastStats {
    /// Total broadcast messages on the inter-copy network.
    pub fn total(&self) -> u64 {
        self.misspeculations + self.store_matches + self.prediction_updates + self.invalidations
    }
}

/// Replicated prediction/synchronization tables, one copy per memory
/// access source.
///
/// The API mirrors [`SyncUnit`], with each call naming the *source*
/// (load/store queue, reservation-station bank, …) issuing it. Local
/// operations touch only that source's copy; the events the paper calls
/// out are broadcast to all copies.
///
/// # Examples
///
/// ```
/// use mds_core::{DepEdge, DistributedSyncUnit, LoadDecision, SyncUnitConfig};
///
/// let mut unit = DistributedSyncUnit::new(4, SyncUnitConfig::default());
/// let edge = DepEdge { load_pc: 7, store_pc: 3 };
///
/// // A mis-speculation detected at source 2 is broadcast everywhere…
/// unit.record_misspeculation(2, edge, 1, None);
/// // …so a load arriving at a different source still predicts.
/// assert_eq!(unit.on_load_ready(0, 7, 5, 50, None), LoadDecision::Wait);
/// // The store matches in source 3's local MDPT; the match is broadcast
/// // and wakes the waiting load.
/// assert_eq!(unit.on_store_issue(3, 3, 4, 60), vec![50]);
/// assert_eq!(unit.broadcasts().misspeculations, 1);
/// assert_eq!(unit.broadcasts().store_matches, 1);
/// ```
#[derive(Debug, Clone)]
pub struct DistributedSyncUnit {
    copies: Vec<SyncUnit>,
    broadcasts: BroadcastStats,
}

impl DistributedSyncUnit {
    /// Creates `sources` identical table copies.
    ///
    /// # Panics
    ///
    /// Panics if `sources == 0` or the underlying configuration is
    /// invalid.
    pub fn new(sources: usize, config: SyncUnitConfig) -> Self {
        assert!(sources > 0, "need at least one access source");
        DistributedSyncUnit {
            copies: (0..sources).map(|_| SyncUnit::new(config)).collect(),
            broadcasts: BroadcastStats::default(),
        }
    }

    /// Number of replicated copies.
    pub fn sources(&self) -> usize {
        self.copies.len()
    }

    /// Broadcast-traffic counters.
    pub fn broadcasts(&self) -> BroadcastStats {
        self.broadcasts
    }

    /// A mis-speculation detected at `source` — broadcast to every copy.
    pub fn record_misspeculation(
        &mut self,
        source: usize,
        edge: DepEdge,
        dist: u32,
        store_task_pc: Option<Pc>,
    ) {
        self.check_source(source);
        self.broadcasts.misspeculations += 1;
        for copy in &mut self.copies {
            copy.record_misspeculation(edge, dist, store_task_pc);
        }
    }

    /// A load consults its *local* copy only (the common, broadcast-free
    /// case). The MDST entry it allocates lives in every copy so a store
    /// match broadcast from any source can signal it.
    pub fn on_load_ready(
        &mut self,
        source: usize,
        load_pc: Pc,
        load_instance: u64,
        ldid: u32,
        task_pc_of: Option<&dyn Fn(u64) -> Option<Pc>>,
    ) -> LoadDecision {
        self.check_source(source);
        // The local lookup decides; the allocation is mirrored so remote
        // store matches can find the waiter. Replicas receive identical
        // update streams, so their decisions must agree.
        let decisions: Vec<LoadDecision> = self
            .copies
            .iter_mut()
            .map(|copy| copy.on_load_ready(load_pc, load_instance, ldid, task_pc_of))
            .collect();
        debug_assert!(
            decisions.windows(2).all(|w| w[0] == w[1]),
            "replicas diverged: {decisions:?}"
        );
        decisions[source]
    }

    /// A store consults its local MDPT; on a match, the identifying
    /// information is broadcast to all MDST copies (§4.4.5). Returns the
    /// LDIDs woken (identical in every copy).
    pub fn on_store_issue(
        &mut self,
        source: usize,
        store_pc: Pc,
        store_instance: u64,
        stid: u32,
    ) -> Vec<u32> {
        self.check_source(source);
        let mut woken: Vec<u32> = Vec::new();
        let mut matched = false;
        for (i, copy) in self.copies.iter_mut().enumerate() {
            let w = copy.on_store_issue(store_pc, store_instance, stid);
            if !w.is_empty() {
                matched = true;
            }
            if i == source {
                woken = w;
            }
        }
        if matched {
            self.broadcasts.store_matches += 1;
        }
        woken
    }

    /// Releases a non-speculative load in every copy (§4.4.2).
    pub fn release_load(&mut self, ldid: u32) -> Vec<DepEdge> {
        let mut freed = Vec::new();
        for (i, copy) in self.copies.iter_mut().enumerate() {
            let f = copy.release_load(ldid);
            if i == 0 {
                freed = f;
            }
        }
        freed
    }

    /// Commit-time prediction training — broadcast so every MDPT copy
    /// keeps "a similar view" (§4.4.5).
    pub fn train(&mut self, edge: DepEdge, had_dependence: bool) {
        self.broadcasts.prediction_updates += 1;
        for copy in &mut self.copies {
            copy.train(edge, had_dependence);
        }
    }

    /// Squash invalidation — broadcast to every MDST copy.
    pub fn invalidate_squashed(
        &mut self,
        ldid_squashed: impl Fn(u32) -> bool,
        stid_squashed: impl Fn(u32) -> bool,
    ) {
        self.broadcasts.invalidations += 1;
        for copy in &mut self.copies {
            copy.invalidate_squashed(&ldid_squashed, &stid_squashed);
        }
    }

    /// Whether `ldid` waits in the given source's copy (identical across
    /// copies by construction).
    pub fn is_waiting(&self, source: usize, ldid: u32) -> bool {
        self.copies[source].is_waiting(ldid)
    }

    fn check_source(&self, source: usize) {
        assert!(source < self.copies.len(), "source index out of range");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> DepEdge {
        DepEdge {
            load_pc: 7,
            store_pc: 3,
        }
    }

    #[test]
    fn replicas_agree_after_broadcast() {
        let mut u = DistributedSyncUnit::new(3, SyncUnitConfig::default());
        u.record_misspeculation(1, edge(), 1, None);
        // Every source predicts the dependence.
        for src in 0..3 {
            let d = u.on_load_ready(src, 7, 10 + src as u64, 90 + src as u32, None);
            assert_eq!(d, LoadDecision::Wait, "source {src}");
        }
    }

    #[test]
    fn store_match_wakes_waiter_from_any_source() {
        let mut u = DistributedSyncUnit::new(4, SyncUnitConfig::default());
        u.record_misspeculation(0, edge(), 1, None);
        assert_eq!(u.on_load_ready(2, 7, 5, 50, None), LoadDecision::Wait);
        assert!(u.is_waiting(2, 50));
        // The store arrives at a *different* source.
        assert_eq!(u.on_store_issue(1, 3, 4, 60), vec![50]);
        for src in 0..4 {
            assert!(!u.is_waiting(src, 50), "copy {src} still waiting");
        }
    }

    #[test]
    fn broadcast_traffic_is_counted() {
        let mut u = DistributedSyncUnit::new(2, SyncUnitConfig::default());
        u.record_misspeculation(0, edge(), 1, None);
        u.on_load_ready(0, 7, 5, 50, None);
        u.on_store_issue(1, 3, 4, 60);
        u.train(edge(), true);
        u.invalidate_squashed(|_| false, |_| false);
        let b = u.broadcasts();
        assert_eq!(b.misspeculations, 1);
        assert_eq!(b.store_matches, 1);
        assert_eq!(b.prediction_updates, 1);
        assert_eq!(b.invalidations, 1);
        assert_eq!(b.total(), 4);
    }

    #[test]
    fn unmatched_stores_do_not_broadcast() {
        let mut u = DistributedSyncUnit::new(2, SyncUnitConfig::default());
        // No MDPT entry anywhere: the store stays local.
        assert!(u.on_store_issue(0, 3, 4, 60).is_empty());
        assert_eq!(u.broadcasts().store_matches, 0);
    }

    #[test]
    fn release_and_training_keep_copies_consistent() {
        let mut u = DistributedSyncUnit::new(2, SyncUnitConfig::default());
        u.record_misspeculation(0, edge(), 1, None);
        u.on_load_ready(0, 7, 5, 50, None);
        let freed = u.release_load(50);
        assert_eq!(freed, vec![edge()]);
        u.train(edge(), false);
        // Counter fell below threshold in *both* copies.
        for src in 0..2 {
            assert_eq!(
                u.on_load_ready(src, 7, 6, 51, None),
                LoadDecision::NotPredicted,
                "copy {src}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least one access source")]
    fn zero_sources_panics() {
        let _ = DistributedSyncUnit::new(0, SyncUnitConfig::default());
    }

    #[test]
    #[should_panic(expected = "source index out of range")]
    fn bad_source_panics() {
        let mut u = DistributedSyncUnit::new(2, SyncUnitConfig::default());
        u.record_misspeculation(5, edge(), 1, None);
    }
}
