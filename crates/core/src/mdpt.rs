//! The Memory Dependence Prediction Table (MDPT), §4.1 of the paper.

use crate::edge::DepEdge;
use mds_harness::hash::FxHashMap;
use mds_harness::json::{Json, ToJson};
use mds_isa::Pc;
use mds_predict::{LruTable, SatCounter};
use std::collections::BTreeSet;

/// Configuration of an [`Mdpt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdptConfig {
    /// Number of prediction entries (the paper evaluates 64).
    pub capacity: usize,
    /// Width of the up/down saturating prediction counter (paper: 3 bits).
    pub counter_bits: u8,
    /// Counter threshold at or above which synchronization is predicted
    /// (paper: 3).
    pub threshold: u16,
    /// Counter value installed when an entry is first allocated on a
    /// mis-speculation. The paper's working example assumes a fresh entry
    /// immediately predicts synchronization, so the default equals the
    /// threshold.
    pub initial: u16,
}

impl Default for MdptConfig {
    fn default() -> Self {
        MdptConfig {
            capacity: 64,
            counter_bits: 3,
            threshold: 3,
            initial: 3,
        }
    }
}

impl ToJson for MdptConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("capacity", self.capacity)
            .field("counter_bits", u64::from(self.counter_bits))
            .field("threshold", u64::from(self.threshold))
            .field("initial", u64::from(self.initial))
    }
}

/// One MDPT entry: valid flag (implicit in residency), the static edge
/// (LDPC, STPC), the dependence distance, the prediction counter, and the
/// ESYNC store-task-PC refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdptEntry {
    /// The static store→load pair this entry predicts.
    pub edge: DepEdge,
    /// Dependence distance: difference of the instance numbers of the
    /// store and load whose mis-speculation allocated the entry (§4.1).
    pub dist: u32,
    /// The up/down saturating prediction counter.
    pub counter: SatCounter,
    /// For the ESYNC predictor: the start PC of the task that issued the
    /// store (§5.5). `None` under plain SYNC.
    pub store_task_pc: Option<Pc>,
}

impl MdptEntry {
    /// Whether this entry currently predicts synchronization.
    pub fn predicts(&self, threshold: u16) -> bool {
        self.counter.is_at_least(threshold)
    }
}

#[derive(Debug, Clone, Copy)]
struct EntryData {
    dist: u32,
    counter: SatCounter,
    store_task_pc: Option<Pc>,
}

/// The Memory Dependence Prediction Table.
///
/// A fully associative, LRU-replaced table of [`MdptEntry`]s keyed by the
/// static dependence edge, with secondary indexes so a load or a store can
/// find *all* entries naming its PC in one lookup (a single static load or
/// store may participate in several dependences, §4.4.4).
///
/// # Examples
///
/// ```
/// use mds_core::{DepEdge, Mdpt, MdptConfig};
/// let mut mdpt = Mdpt::new(MdptConfig::default());
/// let edge = DepEdge { load_pc: 12, store_pc: 4 };
/// mdpt.allocate(edge, 1, None);
/// let hits = mdpt.predicting_for_load(12);
/// assert_eq!(hits.len(), 1);
/// assert_eq!(hits[0].dist, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Mdpt {
    table: LruTable<DepEdge, EntryData>,
    by_load: FxHashMap<Pc, BTreeSet<DepEdge>>,
    by_store: FxHashMap<Pc, BTreeSet<DepEdge>>,
    config: MdptConfig,
    allocations: u64,
    evictions: u64,
}

impl Mdpt {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is zero or the counter configuration is
    /// inconsistent (initial/threshold beyond the counter range).
    pub fn new(config: MdptConfig) -> Self {
        let max = (1u32 << config.counter_bits) - 1;
        assert!(
            config.threshold as u32 <= max,
            "threshold exceeds counter range"
        );
        assert!(
            config.initial as u32 <= max,
            "initial value exceeds counter range"
        );
        Mdpt {
            table: LruTable::new(config.capacity),
            by_load: FxHashMap::default(),
            by_store: FxHashMap::default(),
            config,
            allocations: 0,
            evictions: 0,
        }
    }

    /// The configuration this table was built with.
    pub fn config(&self) -> MdptConfig {
        self.config
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Entries allocated over the table's lifetime.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Entries displaced by LRU replacement.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Records a mis-speculation on `edge` with the observed dependence
    /// distance: allocates a new entry (initial counter = `config.initial`)
    /// or strengthens an existing one, updating its distance and store-task
    /// PC to the latest observation.
    pub fn allocate(&mut self, edge: DepEdge, dist: u32, store_task_pc: Option<Pc>) {
        if let Some(data) = self.table.get_mut(&edge) {
            data.counter.incr();
            data.dist = dist;
            data.store_task_pc = store_task_pc;
            return;
        }
        self.allocations += 1;
        let data = EntryData {
            dist,
            counter: SatCounter::new(self.config.counter_bits, self.config.initial),
            store_task_pc,
        };
        if let Some((evicted, _)) = self.table.insert(edge, data) {
            self.evictions += 1;
            self.unindex(evicted);
        }
        self.by_load.entry(edge.load_pc).or_default().insert(edge);
        self.by_store.entry(edge.store_pc).or_default().insert(edge);
    }

    fn unindex(&mut self, edge: DepEdge) {
        if let Some(set) = self.by_load.get_mut(&edge.load_pc) {
            set.remove(&edge);
            if set.is_empty() {
                self.by_load.remove(&edge.load_pc);
            }
        }
        if let Some(set) = self.by_store.get_mut(&edge.store_pc) {
            set.remove(&edge);
            if set.is_empty() {
                self.by_store.remove(&edge.store_pc);
            }
        }
    }

    fn snapshot(&mut self, edge: DepEdge) -> Option<MdptEntry> {
        self.table.get(&edge).map(|d| MdptEntry {
            edge,
            dist: d.dist,
            counter: d.counter,
            store_task_pc: d.store_task_pc,
        })
    }

    /// All entries naming `load_pc` that currently predict synchronization
    /// (counter at or above threshold). Touches LRU state.
    pub fn predicting_for_load(&mut self, load_pc: Pc) -> Vec<MdptEntry> {
        self.matching(load_pc, true)
    }

    /// All entries naming `store_pc` that currently predict
    /// synchronization. Touches LRU state.
    pub fn predicting_for_store(&mut self, store_pc: Pc) -> Vec<MdptEntry> {
        self.matching(store_pc, false)
    }

    fn matching(&mut self, pc: Pc, by_load: bool) -> Vec<MdptEntry> {
        let index = if by_load {
            &self.by_load
        } else {
            &self.by_store
        };
        let edges: Vec<DepEdge> = match index.get(&pc) {
            Some(set) => set.iter().copied().collect(),
            None => return Vec::new(),
        };
        let threshold = self.config.threshold;
        edges
            .into_iter()
            .filter_map(|e| self.snapshot(e))
            .filter(|e| e.predicts(threshold))
            .collect()
    }

    /// Reads one entry without filtering by prediction.
    pub fn entry(&mut self, edge: DepEdge) -> Option<MdptEntry> {
        self.snapshot(edge)
    }

    /// Strengthens the prediction for `edge` (dependence did occur).
    /// No-op if the entry has been evicted.
    pub fn strengthen(&mut self, edge: DepEdge) {
        if let Some(d) = self.table.get_mut(&edge) {
            d.counter.incr();
        }
    }

    /// Weakens the prediction for `edge` (synchronization was unnecessary).
    /// No-op if the entry has been evicted.
    pub fn weaken(&mut self, edge: DepEdge) {
        if let Some(d) = self.table.get_mut(&edge) {
            d.counter.decr();
        }
    }

    /// Applies the paper's training rule: strengthen when the dependence
    /// actually occurred, weaken when it did not (§4.4.1).
    pub fn train(&mut self, edge: DepEdge, had_dependence: bool) {
        if had_dependence {
            self.strengthen(edge);
        } else {
            self.weaken(edge);
        }
    }

    /// Iterates over resident entries, most recently used first.
    pub fn iter(&self) -> impl Iterator<Item = MdptEntry> + '_ {
        self.table.iter().map(|(edge, d)| MdptEntry {
            edge: *edge,
            dist: d.dist,
            counter: d.counter,
            store_task_pc: d.store_task_pc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(st: Pc, ld: Pc) -> DepEdge {
        DepEdge::new(st, ld)
    }

    #[test]
    fn fresh_allocation_predicts_immediately() {
        let mut m = Mdpt::new(MdptConfig::default());
        m.allocate(edge(4, 12), 1, None);
        assert_eq!(m.predicting_for_load(12).len(), 1);
        assert_eq!(m.predicting_for_store(4).len(), 1);
        assert_eq!(m.allocations(), 1);
    }

    #[test]
    fn weaken_below_threshold_stops_prediction() {
        let mut m = Mdpt::new(MdptConfig::default());
        let e = edge(4, 12);
        m.allocate(e, 1, None); // counter = 3 = threshold
        m.weaken(e); // 2
        assert!(m.predicting_for_load(12).is_empty());
        // The entry is still resident, just not predicting.
        assert_eq!(m.len(), 1);
        m.strengthen(e); // back to 3
        assert_eq!(m.predicting_for_load(12).len(), 1);
    }

    #[test]
    fn repeated_misspeculation_strengthens_and_updates_distance() {
        let mut m = Mdpt::new(MdptConfig::default());
        let e = edge(4, 12);
        m.allocate(e, 1, Some(100));
        m.allocate(e, 2, Some(200));
        let entry = m.entry(e).unwrap();
        assert_eq!(entry.dist, 2);
        assert_eq!(entry.store_task_pc, Some(200));
        assert_eq!(entry.counter.value(), 4);
        assert_eq!(m.allocations(), 1); // second was an update
    }

    #[test]
    fn multiple_dependences_per_load() {
        // if (cond) store1 M else store2 M; load M  (§4.4.4)
        let mut m = Mdpt::new(MdptConfig::default());
        m.allocate(edge(4, 12), 1, None);
        m.allocate(edge(8, 12), 1, None);
        let hits = m.predicting_for_load(12);
        assert_eq!(hits.len(), 2);
        let stores: Vec<Pc> = hits.iter().map(|e| e.edge.store_pc).collect();
        assert!(stores.contains(&4) && stores.contains(&8));
        // Each store sees only its own edge.
        assert_eq!(m.predicting_for_store(4).len(), 1);
    }

    #[test]
    fn eviction_cleans_indexes() {
        let mut m = Mdpt::new(MdptConfig {
            capacity: 2,
            ..Default::default()
        });
        m.allocate(edge(1, 10), 1, None);
        m.allocate(edge(2, 20), 1, None);
        m.allocate(edge(3, 30), 1, None); // evicts edge(1,10)
        assert_eq!(m.evictions(), 1);
        assert!(m.predicting_for_load(10).is_empty());
        assert!(m.predicting_for_store(1).is_empty());
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn lru_keeps_hot_edges() {
        let mut m = Mdpt::new(MdptConfig {
            capacity: 2,
            ..Default::default()
        });
        let hot = edge(1, 10);
        m.allocate(hot, 1, None);
        m.allocate(edge(2, 20), 1, None);
        let _ = m.predicting_for_load(10); // touch hot
        m.allocate(edge(3, 30), 1, None); // evicts edge(2,20)
        assert!(m.entry(hot).is_some());
        assert!(m.entry(edge(2, 20)).is_none());
    }

    #[test]
    fn counter_saturates_at_width() {
        let mut m = Mdpt::new(MdptConfig::default());
        let e = edge(4, 12);
        m.allocate(e, 1, None);
        for _ in 0..20 {
            m.strengthen(e);
        }
        assert_eq!(m.entry(e).unwrap().counter.value(), 7);
    }

    #[test]
    fn train_maps_outcomes() {
        let mut m = Mdpt::new(MdptConfig::default());
        let e = edge(4, 12);
        m.allocate(e, 1, None);
        m.train(e, false);
        assert_eq!(m.entry(e).unwrap().counter.value(), 2);
        m.train(e, true);
        assert_eq!(m.entry(e).unwrap().counter.value(), 3);
    }

    #[test]
    fn training_evicted_edge_is_noop() {
        let mut m = Mdpt::new(MdptConfig::default());
        m.train(edge(9, 9), true);
        assert!(m.is_empty());
    }

    #[test]
    #[should_panic(expected = "threshold exceeds")]
    fn inconsistent_config_panics() {
        let _ = Mdpt::new(MdptConfig {
            counter_bits: 2,
            threshold: 4,
            ..Default::default()
        });
    }

    #[test]
    fn iter_reports_entries() {
        let mut m = Mdpt::new(MdptConfig::default());
        m.allocate(edge(1, 10), 1, None);
        m.allocate(edge(2, 20), 5, None);
        let dists: Vec<u32> = m.iter().map(|e| e.dist).collect();
        assert_eq!(dists, vec![5, 1]); // MRU first
    }
}
