//! Static dependence edges.

use mds_harness::json::{Json, ToJson};
use mds_isa::Pc;
use std::fmt;

/// A static memory dependence edge: the PCs of a store→load pair.
///
/// This is the identity the paper's machinery revolves around — MDPT
/// entries, DDC entries, and mis-speculation profiles are all keyed by the
/// (LDPC, STPC) pair (§4.1).
///
/// # Examples
///
/// ```
/// use mds_core::DepEdge;
/// let e = DepEdge { load_pc: 12, store_pc: 4 };
/// assert_eq!(e.to_string(), "st@4 -> ld@12");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepEdge {
    /// PC of the consuming load.
    pub load_pc: Pc,
    /// PC of the producing store.
    pub store_pc: Pc,
}

impl DepEdge {
    /// Constructs an edge.
    pub const fn new(store_pc: Pc, load_pc: Pc) -> Self {
        DepEdge { load_pc, store_pc }
    }
}

impl ToJson for DepEdge {
    fn to_json(&self) -> Json {
        Json::object()
            .field("load_pc", self.load_pc)
            .field("store_pc", self.store_pc)
    }
}

impl fmt::Display for DepEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "st@{} -> ld@{}", self.store_pc, self.load_pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn edges_hash_by_both_pcs() {
        let mut set = HashSet::new();
        set.insert(DepEdge::new(1, 2));
        set.insert(DepEdge::new(1, 3));
        set.insert(DepEdge::new(2, 2));
        set.insert(DepEdge::new(1, 2)); // duplicate
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn constructor_order_is_store_then_load() {
        let e = DepEdge::new(4, 12);
        assert_eq!(e.store_pc, 4);
        assert_eq!(e.load_pc, 12);
    }
}
