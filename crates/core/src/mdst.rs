//! The Memory Dependence Synchronization Table (MDST), §4.2 of the paper.

use crate::edge::DepEdge;

/// What to do when the MDST is full and an entry is needed (§4.4.2: "a
/// possible solution is to free entries whose full/empty flag is set to
/// full whenever an entry is needed and no table entries are not in use.
/// Another possible solution is to allocate entries using random or LRU
/// replacement, in which case entries are freed as needed").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MdstReplacement {
    /// Reclaim an entry whose full flag is set and which has no waiting
    /// load; fail the allocation if none exists (the default — the
    /// conservative reading of §4.4.2).
    #[default]
    ReclaimSignalled,
    /// Evict the least recently allocated entry unconditionally (waiting
    /// loads lose their condition variable and fall back to the
    /// deadlock-avoidance release).
    Lru,
}

/// The outcome of a load consulting the MDST before issuing (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadSync {
    /// A matching entry with the full/empty flag *full* existed — the store
    /// already signalled, so the load proceeds immediately (figure 4,
    /// parts (e)/(f)). The entry has been freed.
    Proceed,
    /// An entry was allocated (or joined) with the flag *empty* — the load
    /// must wait for the store's signal (figure 4, parts (c)/(d)).
    Wait,
    /// No entry could be allocated (table full); the load proceeds
    /// unsynchronized, counted as an allocation failure.
    NoEntry,
}

/// The outcome of a store signalling through the MDST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreSync {
    /// A load was waiting: the full/empty flag was set and the load
    /// identifier is returned so the core can wake it. The entry has been
    /// freed (synchronization complete).
    Woke(u32),
    /// No load was waiting yet: an entry was left behind with the flag set
    /// to *full* for the load to find.
    Recorded,
    /// No entry could be allocated (table full); the signal is dropped and
    /// counted (the load will eventually be released by the
    /// deadlock-avoidance rule).
    NoEntry,
}

/// One MDST entry: the fields of §4.2 — valid flag (implicit), the edge's
/// instruction addresses, load/store identifiers, the instance tag, and
/// the full/empty flag that acts as the condition variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MdstEntry {
    /// The static dependence edge being synchronized.
    pub edge: DepEdge,
    /// Instance tag distinguishing dynamic instances of the same static
    /// edge (the load's instance number under distance tagging, §3).
    pub instance: u64,
    /// Identifier of the waiting load within the instruction window.
    pub ldid: Option<u32>,
    /// Identifier of the signalling store (needed to invalidate on control
    /// mis-speculation, §4.3).
    pub stid: Option<u32>,
    /// The condition variable: `true` once the store has signalled.
    pub full: bool,
}

/// Counters describing MDST traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MdstStats {
    /// Loads that found a pre-set (full) entry and proceeded immediately.
    pub pre_signalled: u64,
    /// Loads that allocated/joined an empty entry and waited.
    pub waits: u64,
    /// Stores that woke a waiting load.
    pub wakes: u64,
    /// Stores that recorded a signal before the load arrived.
    pub early_signals: u64,
    /// Entries freed because the waiting load became non-speculative
    /// without a signal (incomplete synchronization, §4.4.2).
    pub releases: u64,
    /// Allocation failures due to a full table.
    pub alloc_failures: u64,
    /// Entries dropped by squash invalidation (§4.4.3).
    pub invalidations: u64,
}

/// The Memory Dependence Synchronization Table: a fixed pool of condition
/// variables keyed by (edge, instance).
///
/// # Examples
///
/// Both orders of the paper's figure 2:
///
/// ```
/// use mds_core::{DepEdge, Mdst, LoadSync, StoreSync};
/// let edge = DepEdge { load_pc: 7, store_pc: 3 };
/// let mut mdst = Mdst::new(16);
///
/// // Load first: it waits; the store then wakes it.
/// assert_eq!(mdst.sync_load(edge, 5, 100), LoadSync::Wait);
/// assert_eq!(mdst.sync_store(edge, 5, 200), StoreSync::Woke(100));
///
/// // Store first: the signal is recorded; the load proceeds immediately.
/// assert_eq!(mdst.sync_store(edge, 6, 201), StoreSync::Recorded);
/// assert_eq!(mdst.sync_load(edge, 6, 101), LoadSync::Proceed);
/// assert!(mdst.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Mdst {
    entries: Vec<Option<MdstEntry>>,
    // Allocation order stamps for LRU replacement.
    stamps: Vec<u64>,
    tick: u64,
    live: usize,
    replacement: MdstReplacement,
    stats: MdstStats,
}

impl Mdst {
    /// Creates a table with `capacity` synchronization entries and the
    /// default ([`MdstReplacement::ReclaimSignalled`]) policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Mdst::with_replacement(capacity, MdstReplacement::default())
    }

    /// Creates a table with an explicit full-table replacement policy.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn with_replacement(capacity: usize, replacement: MdstReplacement) -> Self {
        assert!(capacity > 0, "MDST capacity must be positive");
        Mdst {
            entries: vec![None; capacity],
            stamps: vec![0; capacity],
            tick: 0,
            live: 0,
            replacement,
            stats: MdstStats::default(),
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no entry is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Traffic counters.
    pub fn stats(&self) -> MdstStats {
        self.stats
    }

    fn find(&mut self, edge: DepEdge, instance: u64) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| matches!(e, Some(e) if e.edge == edge && e.instance == instance))
    }

    fn free_slot(&mut self) -> Option<usize> {
        if let Some(idx) = self.entries.iter().position(Option::is_none) {
            return Some(idx);
        }
        // §4.4.2: when the table is full, reclaim an entry whose full flag
        // is set and which has no waiting load — its synchronization would
        // complete trivially anyway.
        if let Some(idx) = self
            .entries
            .iter()
            .position(|e| matches!(e, Some(e) if e.full && e.ldid.is_none()))
        {
            self.entries[idx] = None;
            self.live -= 1;
            return Some(idx);
        }
        // Under LRU replacement, evict the oldest allocation outright.
        if self.replacement == MdstReplacement::Lru {
            let idx = (0..self.entries.len())
                .min_by_key(|&i| self.stamps[i])
                .expect("capacity > 0");
            self.entries[idx] = None;
            self.live -= 1;
            return Some(idx);
        }
        None
    }

    fn put(&mut self, entry: MdstEntry) -> bool {
        match self.free_slot() {
            Some(idx) => {
                self.tick += 1;
                self.stamps[idx] = self.tick;
                self.entries[idx] = Some(entry);
                self.live += 1;
                true
            }
            None => {
                self.stats.alloc_failures += 1;
                false
            }
        }
    }

    fn take(&mut self, idx: usize) -> MdstEntry {
        self.live -= 1;
        self.entries[idx].take().expect("live entry")
    }

    /// A load (identified by `ldid`) predicted to synchronize on
    /// `(edge, instance)` tests the condition variable (§4.3, actions 2–4).
    pub fn sync_load(&mut self, edge: DepEdge, instance: u64, ldid: u32) -> LoadSync {
        if let Some(idx) = self.find(edge, instance) {
            let full = self.entries[idx].as_ref().expect("live entry").full;
            if full {
                // Figure 4 part (f): signal already recorded.
                self.take(idx);
                self.stats.pre_signalled += 1;
                return LoadSync::Proceed;
            }
            let e = self.entries[idx].as_mut().expect("live entry");
            e.ldid = Some(ldid);
            self.stats.waits += 1;
            return LoadSync::Wait;
        }
        let ok = self.put(MdstEntry {
            edge,
            instance,
            ldid: Some(ldid),
            stid: None,
            full: false,
        });
        if ok {
            self.stats.waits += 1;
            LoadSync::Wait
        } else {
            LoadSync::NoEntry
        }
    }

    /// A store signals `(edge, instance)` (§4.3, actions 5–8).
    pub fn sync_store(&mut self, edge: DepEdge, instance: u64, stid: u32) -> StoreSync {
        if let Some(idx) = self.find(edge, instance) {
            let has_waiter = self.entries[idx]
                .as_ref()
                .expect("live entry")
                .ldid
                .is_some();
            if has_waiter {
                let e = self.take(idx);
                self.stats.wakes += 1;
                return StoreSync::Woke(e.ldid.expect("waiter present"));
            }
            let e = self.entries[idx].as_mut().expect("live entry");
            e.full = true;
            e.stid = Some(stid);
            self.stats.early_signals += 1;
            return StoreSync::Recorded;
        }
        let ok = self.put(MdstEntry {
            edge,
            instance,
            ldid: None,
            stid: Some(stid),
            full: true,
        });
        if ok {
            self.stats.early_signals += 1;
            StoreSync::Recorded
        } else {
            StoreSync::NoEntry
        }
    }

    /// Releases every entry on which `ldid` is waiting — the
    /// deadlock-avoidance rule of §4.4.2 (a load is free to execute once
    /// all prior stores are known to have executed). Returns the edges
    /// freed so the caller can weaken the corresponding MDPT predictions.
    pub fn release_load(&mut self, ldid: u32) -> Vec<DepEdge> {
        let mut freed = Vec::new();
        for idx in 0..self.entries.len() {
            if matches!(&self.entries[idx], Some(e) if e.ldid == Some(ldid) && !e.full) {
                let e = self.take(idx);
                self.stats.releases += 1;
                freed.push(e.edge);
            }
        }
        freed
    }

    /// Whether `ldid` still waits on any empty entry.
    pub fn is_waiting(&self, ldid: u32) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e, Some(e) if e.ldid == Some(ldid) && !e.full))
    }

    /// Drops entries for which `doomed` returns `true` — squash
    /// invalidation by LDID/STID (§4.4.3).
    pub fn invalidate_where(&mut self, mut doomed: impl FnMut(&MdstEntry) -> bool) {
        for slot in &mut self.entries {
            if matches!(slot, Some(e) if doomed(e)) {
                *slot = None;
                self.live -= 1;
                self.stats.invalidations += 1;
            }
        }
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        for slot in &mut self.entries {
            *slot = None;
        }
        self.live = 0;
    }

    /// Iterates over live entries (slot order).
    pub fn iter(&self) -> impl Iterator<Item = &MdstEntry> + '_ {
        self.entries.iter().filter_map(Option::as_ref)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge() -> DepEdge {
        DepEdge {
            load_pc: 7,
            store_pc: 3,
        }
    }

    #[test]
    fn figure2_load_first_then_store_wakes() {
        let mut m = Mdst::new(4);
        assert_eq!(m.sync_load(edge(), 1, 10), LoadSync::Wait);
        assert!(m.is_waiting(10));
        assert_eq!(m.sync_store(edge(), 1, 20), StoreSync::Woke(10));
        assert!(!m.is_waiting(10));
        assert!(m.is_empty());
        assert_eq!(m.stats().waits, 1);
        assert_eq!(m.stats().wakes, 1);
    }

    #[test]
    fn figure2_store_first_then_load_proceeds() {
        let mut m = Mdst::new(4);
        assert_eq!(m.sync_store(edge(), 1, 20), StoreSync::Recorded);
        assert_eq!(m.len(), 1);
        assert_eq!(m.sync_load(edge(), 1, 10), LoadSync::Proceed);
        assert!(m.is_empty());
        assert_eq!(m.stats().pre_signalled, 1);
        assert_eq!(m.stats().early_signals, 1);
    }

    #[test]
    fn instances_are_independent() {
        let mut m = Mdst::new(4);
        assert_eq!(m.sync_load(edge(), 1, 10), LoadSync::Wait);
        assert_eq!(m.sync_load(edge(), 2, 11), LoadSync::Wait);
        // The store for instance 2 wakes only load 11.
        assert_eq!(m.sync_store(edge(), 2, 20), StoreSync::Woke(11));
        assert!(m.is_waiting(10));
        assert!(!m.is_waiting(11));
    }

    #[test]
    fn different_edges_do_not_alias() {
        let mut m = Mdst::new(4);
        let other = DepEdge {
            load_pc: 7,
            store_pc: 9,
        }; // same load, other store
        m.sync_load(edge(), 1, 10);
        assert_eq!(m.sync_store(other, 1, 20), StoreSync::Recorded);
        assert!(m.is_waiting(10));
    }

    #[test]
    fn release_frees_and_reports_edges() {
        let mut m = Mdst::new(4);
        let e2 = DepEdge {
            load_pc: 7,
            store_pc: 9,
        };
        m.sync_load(edge(), 1, 10);
        m.sync_load(e2, 1, 10); // same load waits on two dependences
        let freed = m.release_load(10);
        assert_eq!(freed.len(), 2);
        assert!(freed.contains(&edge()) && freed.contains(&e2));
        assert!(m.is_empty());
        assert_eq!(m.stats().releases, 2);
    }

    #[test]
    fn release_ignores_full_entries() {
        let mut m = Mdst::new(4);
        m.sync_store(edge(), 1, 20); // full, no waiter
        assert!(m.release_load(10).is_empty());
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn table_full_fails_allocation_for_loads() {
        let mut m = Mdst::new(1);
        assert_eq!(m.sync_load(edge(), 1, 10), LoadSync::Wait);
        let e2 = DepEdge {
            load_pc: 8,
            store_pc: 3,
        };
        assert_eq!(m.sync_load(e2, 1, 11), LoadSync::NoEntry);
        assert_eq!(m.stats().alloc_failures, 1);
    }

    #[test]
    fn full_unwaited_entries_are_reclaimed_under_pressure() {
        // §4.4.2: a store signal with no load may be displaced when an
        // entry is needed.
        let mut m = Mdst::new(1);
        assert_eq!(m.sync_store(edge(), 1, 20), StoreSync::Recorded);
        let e2 = DepEdge {
            load_pc: 8,
            store_pc: 3,
        };
        assert_eq!(m.sync_load(e2, 1, 11), LoadSync::Wait); // reclaimed the slot
        assert_eq!(m.len(), 1);
        assert!(m.is_waiting(11));
    }

    #[test]
    fn lru_replacement_evicts_the_oldest_waiter() {
        let mut m = Mdst::with_replacement(2, MdstReplacement::Lru);
        let e2 = DepEdge {
            load_pc: 8,
            store_pc: 3,
        };
        let e3 = DepEdge {
            load_pc: 9,
            store_pc: 3,
        };
        assert_eq!(m.sync_load(edge(), 1, 10), LoadSync::Wait);
        assert_eq!(m.sync_load(e2, 1, 11), LoadSync::Wait);
        // Table full of waiters: LRU evicts the first allocation.
        assert_eq!(m.sync_load(e3, 1, 12), LoadSync::Wait);
        assert!(!m.is_waiting(10), "oldest waiter lost its entry");
        assert!(m.is_waiting(11));
        assert!(m.is_waiting(12));
        assert_eq!(m.stats().alloc_failures, 0);
    }

    #[test]
    fn waiting_entries_are_not_reclaimed() {
        let mut m = Mdst::new(1);
        m.sync_load(edge(), 1, 10);
        let e2 = DepEdge {
            load_pc: 8,
            store_pc: 3,
        };
        assert_eq!(m.sync_store(e2, 1, 21), StoreSync::NoEntry);
        assert!(m.is_waiting(10)); // untouched
    }

    #[test]
    fn squash_invalidation_by_ldid() {
        let mut m = Mdst::new(4);
        m.sync_load(edge(), 1, 10);
        m.sync_load(edge(), 2, 11);
        m.invalidate_where(|e| e.ldid == Some(11));
        assert!(m.is_waiting(10));
        assert!(!m.is_waiting(11));
        assert_eq!(m.stats().invalidations, 1);
    }

    #[test]
    fn squash_invalidation_by_stid() {
        let mut m = Mdst::new(4);
        m.sync_store(edge(), 1, 30);
        m.invalidate_where(|e| e.stid == Some(30));
        assert!(m.is_empty());
    }

    #[test]
    fn double_signal_keeps_entry_full() {
        let mut m = Mdst::new(4);
        assert_eq!(m.sync_store(edge(), 1, 20), StoreSync::Recorded);
        assert_eq!(m.sync_store(edge(), 1, 21), StoreSync::Recorded);
        assert_eq!(m.len(), 1);
        assert_eq!(m.sync_load(edge(), 1, 10), LoadSync::Proceed);
    }

    #[test]
    fn clear_and_iter() {
        let mut m = Mdst::new(4);
        m.sync_load(edge(), 1, 10);
        m.sync_store(edge(), 9, 20);
        assert_eq!(m.iter().count(), 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = Mdst::new(0);
    }
}
