//! The data dependence cache (DDC) used for the temporal-locality studies.

use crate::edge::DepEdge;
use mds_predict::LruTable;
use mds_sim::stats::Percent;

/// A data dependence cache of size *n*: it "records the data dependences
/// that caused the *n* most recent mis-speculations" (§5.3).
///
/// On every mis-speculation the offending edge is looked up; a hit means
/// the edge was seen among the recent mis-speculations (temporal
/// locality), a miss allocates it. A low miss rate is the paper's evidence
/// that a small hardware table can capture the dependences that matter —
/// tables 5 and 7.
///
/// # Examples
///
/// ```
/// use mds_core::{Ddc, DepEdge};
/// let mut ddc = Ddc::new(32);
/// let e = DepEdge::new(3, 7);
/// assert!(!ddc.observe(e)); // first mis-speculation on this edge: miss
/// assert!(ddc.observe(e));  // repeat: hit
/// assert_eq!(ddc.miss_rate().value(), 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct Ddc {
    table: LruTable<DepEdge, ()>,
    hits: u64,
    misses: u64,
}

impl Ddc {
    /// Creates a DDC tracking the `capacity` most recent distinct edges.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        Ddc {
            table: LruTable::new(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// Records a mis-speculation on `edge`; returns `true` on a DDC hit.
    pub fn observe(&mut self, edge: DepEdge) -> bool {
        if self.table.get(&edge).is_some() {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            self.table.insert(edge, ());
            false
        }
    }

    /// Mis-speculations whose edge was cached.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Mis-speculations whose edge was not cached (then allocated).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total mis-speculations observed.
    pub fn observations(&self) -> u64 {
        self.hits + self.misses
    }

    /// The miss rate as a percentage — the number reported in tables 5
    /// and 7.
    pub fn miss_rate(&self) -> Percent {
        Percent::of(self.misses, self.observations())
    }

    /// Capacity in edges.
    pub fn capacity(&self) -> usize {
        self.table.capacity()
    }

    /// Distinct edges currently resident.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Returns `true` when no edge is resident.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    #[test]
    fn repeated_edge_hits() {
        let mut d = Ddc::new(4);
        let e = DepEdge::new(1, 2);
        assert!(!d.observe(e));
        for _ in 0..9 {
            assert!(d.observe(e));
        }
        assert_eq!(d.hits(), 9);
        assert_eq!(d.misses(), 1);
        assert_eq!(d.miss_rate().value(), 10.0);
    }

    #[test]
    fn capacity_evicts_lru_edge() {
        let mut d = Ddc::new(2);
        let a = DepEdge::new(1, 10);
        let b = DepEdge::new(2, 20);
        let c = DepEdge::new(3, 30);
        d.observe(a);
        d.observe(b);
        d.observe(c); // evicts a
        assert!(!d.observe(a)); // miss again
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn empty_ddc_reports_zero_rate() {
        let d = Ddc::new(8);
        assert!(d.is_empty());
        assert_eq!(d.miss_rate().value(), 0.0);
        assert_eq!(d.capacity(), 8);
    }

    properties! {
        /// Over any mis-speculation stream, a larger DDC never has *more*
        /// misses than a smaller one — the monotonicity behind tables 5/7.
        #[test]
        fn bigger_ddc_never_misses_more(
            edges in vec_of((0u32..20, 0u32..20), 0..300)
        ) {
            let mut small = Ddc::new(4);
            let mut large = Ddc::new(64);
            for (s, l) in edges {
                let e = DepEdge::new(s, l);
                small.observe(e);
                large.observe(e);
            }
            prop_assert!(large.misses() <= small.misses());
        }

        /// Hits + misses always equals observations.
        #[test]
        fn accounting_is_consistent(
            edges in vec_of((0u32..8, 0u32..8), 0..100)
        ) {
            let mut d = Ddc::new(3);
            for (s, l) in &edges {
                d.observe(DepEdge::new(*s, *l));
            }
            prop_assert_eq!(d.observations(), edges.len() as u64);
            prop_assert_eq!(d.hits() + d.misses(), d.observations());
        }
    }
}
