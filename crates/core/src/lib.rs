//! Dynamic memory dependence prediction and synchronization — the primary
//! contribution of Moshovos, Breach, Vijaykumar & Sohi, *"Dynamic
//! Speculation and Synchronization of Data Dependences"*, ISCA 1997.
//!
//! # The idea
//!
//! Blindly speculating every load is cheap while instruction windows are
//! small, but as windows grow, true store→load dependences get violated
//! often enough that squash costs dominate. The paper's fix has three
//! parts (§3):
//!
//! 1. **Predict** which static store→load pairs will mis-speculate, from
//!    the history of mis-speculations — the [`Mdpt`] (memory dependence
//!    prediction table).
//! 2. **Associate** a condition variable with each dynamic instance of a
//!    predicted dependence — the [`Mdst`] (memory dependence
//!    synchronization table), whose full/empty flags implement wait/signal.
//! 3. **Synchronize**: the load waits on the condition variable; the store
//!    sets it and wakes the load, so the load issues exactly as early as
//!    correctness allows.
//!
//! The observation making this practical: *the static pairs responsible
//! for most dynamic mis-speculations are few and exhibit temporal
//! locality*, which the [`Ddc`] (data dependence cache) measures directly
//! (§5.3).
//!
//! # What lives here
//!
//! - [`DepEdge`]: a static dependence edge (load PC, store PC).
//! - [`Ddc`]: the dependence cache used for the locality studies
//!   (tables 5 and 7).
//! - [`Mdpt`]: prediction entries with the paper's 3-bit up/down counter,
//!   dependence distance, and the ESYNC store-task-PC refinement.
//! - [`Mdst`]: the pool of condition variables with full/empty flags,
//!   instance tags, LDID/STID bookkeeping, and squash invalidation.
//! - [`SyncUnit`]: the combined MDPT+MDST structure evaluated in §5.5
//!   (one prediction entry carries one synchronization slot per stage).
//! - [`Policy`]: the speculation policies compared in §5.4 — `NEVER`,
//!   `ALWAYS`, `WAIT`, `PSYNC`, and the realizable `SYNC`/`ESYNC`.
//! - [`PredictionBreakdown`]: the predicted-vs-actual accounting of
//!   table 8.
//!
//! The structures are processor-agnostic: `mds-multiscalar` drives them
//! from its timing model, and they are equally usable from a superscalar
//! model (see `mds-ooo::timing`), mirroring the paper's claim of
//! generality. Register-dependence speculation (mentioned as future work
//! in §6) works by keying edges on producer/consumer PCs — the tables
//! don't care that the "addresses" are register writes.
//!
//! # Examples
//!
//! The working example of the paper's figure 4: a mis-speculation
//! allocates a prediction entry; the next dynamic instance synchronizes.
//!
//! ```
//! use mds_core::{DepEdge, SyncUnit, SyncUnitConfig, LoadDecision};
//!
//! let mut unit = SyncUnit::new(SyncUnitConfig { stages: 4, ..Default::default() });
//! let edge = DepEdge { load_pc: 7, store_pc: 3 };
//!
//! // A mis-speculation between ST(pc=3) in task 1 and LD(pc=7) in task 2
//! // allocates an MDPT entry with distance 1.
//! unit.record_misspeculation(edge, 1, None);
//!
//! // Next instance: the load from task 3 asks permission before issuing.
//! let decision = unit.on_load_ready(7, 3, 30, None);
//! assert_eq!(decision, LoadDecision::Wait);
//!
//! // The matching store (task 2, distance 1 -> instance 3) signals it.
//! let woken = unit.on_store_issue(3, 2, 20);
//! assert_eq!(woken, vec![30]); // LDID 30 may now issue
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breakdown;
pub mod ddc;
pub mod distributed;
pub mod edge;
pub mod mdpt;
pub mod mdst;
pub mod policy;
pub mod unit;

pub use breakdown::PredictionBreakdown;
pub use ddc::Ddc;
pub use distributed::{BroadcastStats, DistributedSyncUnit};
pub use edge::DepEdge;
pub use mdpt::{Mdpt, MdptConfig, MdptEntry};
pub use mdst::{LoadSync, Mdst, MdstReplacement, StoreSync};
pub use policy::{ParsePolicyError, Policy, PredictorKind};
pub use unit::{LoadDecision, SyncUnit, SyncUnitConfig, SyncUnitStats, TagScheme};
