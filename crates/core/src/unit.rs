//! The combined MDPT+MDST structure evaluated in §5.5 of the paper.

use crate::edge::DepEdge;
use crate::mdpt::{Mdpt, MdptConfig};
use crate::mdst::{LoadSync, Mdst, MdstStats, StoreSync};
use mds_harness::json::{Json, ToJson};
use mds_isa::Pc;

/// How dynamic instances of a static dependence edge are tagged in the
/// MDST (§3 of the paper).
///
/// The paper evaluates **dependence distance** tagging (instance numbers
/// plus a learned distance) and notes **data address** tagging as the
/// alternative: "one approach is to use just the address of the memory
/// location accessed by the store-load pair as a handle". Each can fail
/// where the other succeeds — the distance may change unpredictably, or
/// the address may be shared beyond the pair. Both are implemented; the
/// `ablate-tagging` experiment compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TagScheme {
    /// Tag instances with instance numbers and synchronize the load at
    /// `store_instance + DIST` (the paper's evaluated scheme).
    #[default]
    DependenceDistance,
    /// Tag instances with the data address: a load waits on
    /// (edge, address) and the store signals (edge, address).
    DataAddress,
}

impl ToJson for TagScheme {
    fn to_json(&self) -> Json {
        Json::Str(
            match self {
                TagScheme::DependenceDistance => "dependence_distance",
                TagScheme::DataAddress => "data_address",
            }
            .to_string(),
        )
    }
}

/// Configuration of a [`SyncUnit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyncUnitConfig {
    /// Number of Multiscalar stages (processing units). In the combined
    /// organization each prediction entry carries one synchronization
    /// entry per stage, so the MDST capacity is `mdpt.capacity * stages`.
    pub stages: usize,
    /// MDPT geometry and counter configuration.
    pub mdpt: MdptConfig,
    /// Enable the ESYNC refinement: synchronization is enforced only when
    /// the task at distance DIST has the store-task PC recorded in the
    /// entry (§5.5).
    pub esync: bool,
    /// How dynamic edge instances are tagged.
    pub tagging: TagScheme,
}

impl Default for SyncUnitConfig {
    fn default() -> Self {
        SyncUnitConfig {
            stages: 8,
            mdpt: MdptConfig::default(),
            esync: false,
            tagging: TagScheme::DependenceDistance,
        }
    }
}

/// What a load ready to access memory must do (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadDecision {
    /// No predicting MDPT entry matched: speculate freely.
    NotPredicted,
    /// Synchronization was predicted but every matching condition variable
    /// was already set — the load proceeds without delay.
    Proceed,
    /// The load must wait to be signalled (or released when it becomes
    /// non-speculative).
    Wait,
}

/// Aggregate statistics of a [`SyncUnit`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyncUnitStats {
    /// Loads that consulted the unit.
    pub loads_checked: u64,
    /// Loads for which at least one entry predicted synchronization.
    pub loads_predicted: u64,
    /// Loads told to wait.
    pub loads_waited: u64,
    /// ESYNC path filter rejections (entry matched but task PC differed).
    pub esync_filtered: u64,
    /// Mis-speculations recorded (MDPT allocations/strengthenings).
    pub misspeculations: u64,
}

/// The combined dependence prediction + synchronization unit.
///
/// This is the structure simulated in the paper's evaluation: a
/// centralized, fully associative MDPT whose entries carry per-stage MDST
/// slots, with a 3-bit up/down counter per entry (threshold 3), LRU
/// replacement, speculative allocation, and non-speculative prediction
/// updates (the timing core calls [`SyncUnit::train`] at task commit).
///
/// Instance tags use the dependence-distance scheme of §3 with instance
/// numbers approximated by task sequence numbers (the paper uses statically
/// assigned stage identifiers; both identify the dynamic task, ours without
/// the wrap-around ambiguity of a ring of stage IDs).
///
/// See the [crate documentation](crate) for a worked example.
#[derive(Debug, Clone)]
pub struct SyncUnit {
    mdpt: Mdpt,
    mdst: Mdst,
    config: SyncUnitConfig,
    stats: SyncUnitStats,
}

impl SyncUnit {
    /// Builds the unit.
    ///
    /// # Panics
    ///
    /// Panics if `stages == 0` or the MDPT configuration is inconsistent.
    pub fn new(config: SyncUnitConfig) -> Self {
        assert!(config.stages > 0, "stages must be positive");
        SyncUnit {
            mdpt: Mdpt::new(config.mdpt),
            mdst: Mdst::new(config.mdpt.capacity * config.stages),
            config,
            stats: SyncUnitStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> SyncUnitConfig {
        self.config
    }

    /// Unit-level statistics.
    pub fn stats(&self) -> SyncUnitStats {
        self.stats
    }

    /// MDST-level statistics (waits, wakes, releases, …).
    pub fn mdst_stats(&self) -> MdstStats {
        self.mdst.stats()
    }

    /// Read access to the prediction table.
    pub fn mdpt(&self) -> &Mdpt {
        &self.mdpt
    }

    /// Records a detected memory dependence mis-speculation: allocates (or
    /// strengthens) the MDPT entry for `edge` with the observed dependence
    /// distance and, for ESYNC, the PC of the task that issued the store.
    pub fn record_misspeculation(&mut self, edge: DepEdge, dist: u32, store_task_pc: Option<Pc>) {
        self.stats.misspeculations += 1;
        self.mdpt.allocate(edge, dist, store_task_pc);
    }

    /// The MDPT entries that predict synchronization for a load at
    /// `load_pc` in task `load_instance`, after applying the ESYNC path
    /// filter when enabled. This is the prediction half of
    /// [`SyncUnit::on_load_ready`] without the MDST side effects —
    /// trace-driven timing models use it to compute wake times
    /// analytically.
    pub fn predicted_entries_for_load(
        &mut self,
        load_pc: Pc,
        load_instance: u64,
        task_pc_of: Option<&dyn Fn(u64) -> Option<Pc>>,
    ) -> Vec<crate::mdpt::MdptEntry> {
        let entries = self.mdpt.predicting_for_load(load_pc);
        if !self.config.esync {
            return entries;
        }
        entries
            .into_iter()
            .filter(|entry| {
                // Enforce only when the task at distance DIST matches the
                // recorded store-task PC.
                if let (Some(expected), Some(lookup)) = (entry.store_task_pc, task_pc_of) {
                    let producer = load_instance.checked_sub(entry.dist as u64);
                    let actual = producer.and_then(lookup);
                    if actual != Some(expected) {
                        self.stats.esync_filtered += 1;
                        return false;
                    }
                }
                true
            })
            .collect()
    }

    /// A load at `load_pc` in the task with sequence number
    /// `load_instance` is ready to access memory; `ldid` identifies it in
    /// the window. For ESYNC, `task_pc_of` resolves a task sequence number
    /// to its start PC (the unit checks the task at distance DIST).
    ///
    /// Returns what the load must do; on [`LoadDecision::Wait`] the load
    /// stalls until [`SyncUnit::on_store_issue`] returns its `ldid` or it
    /// is released via [`SyncUnit::release_load`].
    pub fn on_load_ready(
        &mut self,
        load_pc: Pc,
        load_instance: u64,
        ldid: u32,
        task_pc_of: Option<&dyn Fn(u64) -> Option<Pc>>,
    ) -> LoadDecision {
        self.stats.loads_checked += 1;
        let entries = self.predicted_entries_for_load(load_pc, load_instance, task_pc_of);
        if entries.is_empty() {
            return LoadDecision::NotPredicted;
        }
        let mut must_wait = false;
        for entry in entries {
            match self.mdst.sync_load(entry.edge, load_instance, ldid) {
                LoadSync::Wait => must_wait = true,
                LoadSync::Proceed | LoadSync::NoEntry => {}
            }
        }
        self.stats.loads_predicted += 1;
        if must_wait {
            self.stats.loads_waited += 1;
            LoadDecision::Wait
        } else {
            LoadDecision::Proceed
        }
    }

    /// A store at `store_pc` in task `store_instance` is issuing; `stid`
    /// identifies it in the window. Returns the LDIDs of all loads this
    /// signal wakes.
    ///
    /// Under [`TagScheme::DependenceDistance`], the target instance is
    /// `store_instance + DIST` (§4.3 action 6). Under
    /// [`TagScheme::DataAddress`], callers must pass the store's data
    /// address as `store_instance` (and loads theirs to
    /// [`SyncUnit::on_load_ready`]): the tag *is* the address, so no
    /// distance arithmetic applies.
    pub fn on_store_issue(&mut self, store_pc: Pc, store_instance: u64, stid: u32) -> Vec<u32> {
        let mut woken = Vec::new();
        for entry in self.mdpt.predicting_for_store(store_pc) {
            let target = match self.config.tagging {
                TagScheme::DependenceDistance => store_instance + entry.dist as u64,
                TagScheme::DataAddress => store_instance,
            };
            match self.mdst.sync_store(entry.edge, target, stid) {
                StoreSync::Woke(ldid) => woken.push(ldid),
                StoreSync::Recorded | StoreSync::NoEntry => {}
            }
        }
        woken
    }

    /// The deadlock-avoidance release (§4.4.2): `ldid` has become
    /// non-speculative (all prior stores executed) without being
    /// signalled. Frees its MDST entries and returns the edges whose
    /// predictions turned out to be *false dependences* this instance —
    /// the caller should [`SyncUnit::train`] them with
    /// `had_dependence = false` at commit.
    pub fn release_load(&mut self, ldid: u32) -> Vec<DepEdge> {
        self.mdst.release_load(ldid)
    }

    /// Whether `ldid` is still blocked on an empty condition variable.
    pub fn is_waiting(&self, ldid: u32) -> bool {
        self.mdst.is_waiting(ldid)
    }

    /// Non-speculative prediction update at task commit (§5.5: "updates to
    /// the prediction mechanism within an entry only occur
    /// non-speculatively when a stage commits").
    pub fn train(&mut self, edge: DepEdge, had_dependence: bool) {
        self.mdpt.train(edge, had_dependence);
    }

    /// Squash invalidation (§4.4.3): drop MDST entries whose LDID or STID
    /// satisfies the respective predicate (e.g. "belongs to a squashed
    /// task").
    pub fn invalidate_squashed(
        &mut self,
        mut ldid_squashed: impl FnMut(u32) -> bool,
        mut stid_squashed: impl FnMut(u32) -> bool,
    ) {
        self.mdst.invalidate_where(|e| {
            e.ldid.is_some_and(&mut ldid_squashed) || e.stid.is_some_and(&mut stid_squashed)
        });
    }

    /// Clears dynamic (MDST) state, keeping learned predictions.
    pub fn reset_dynamic(&mut self) {
        self.mdst.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> SyncUnit {
        SyncUnit::new(SyncUnitConfig {
            stages: 4,
            ..Default::default()
        })
    }

    fn edge() -> DepEdge {
        DepEdge {
            load_pc: 7,
            store_pc: 3,
        }
    }

    #[test]
    fn unknown_load_is_not_predicted() {
        let mut u = unit();
        assert_eq!(u.on_load_ready(7, 1, 10, None), LoadDecision::NotPredicted);
        assert_eq!(u.stats().loads_checked, 1);
        assert_eq!(u.stats().loads_predicted, 0);
    }

    #[test]
    fn figure4_full_sequence_load_first() {
        let mut u = unit();
        // (b): mis-speculation ST1(task1) -> LD2(task2), distance 1.
        u.record_misspeculation(edge(), 1, None);
        // (c): LD3 (task 3) is ready before ST2; it must wait.
        assert_eq!(u.on_load_ready(7, 3, 30, None), LoadDecision::Wait);
        assert!(u.is_waiting(30));
        // (d): ST2 (task 2) issues; 2 + DIST(1) = 3 -> wakes LDID 30.
        assert_eq!(u.on_store_issue(3, 2, 20), vec![30]);
        assert!(!u.is_waiting(30));
    }

    #[test]
    fn figure4_full_sequence_store_first() {
        let mut u = unit();
        u.record_misspeculation(edge(), 1, None);
        // (e): ST2 issues first; signal recorded for instance 3.
        assert_eq!(u.on_store_issue(3, 2, 20), Vec::<u32>::new());
        // (f): LD3 arrives, finds the full flag set, proceeds immediately.
        assert_eq!(u.on_load_ready(7, 3, 30, None), LoadDecision::Proceed);
        assert_eq!(u.mdst_stats().pre_signalled, 1);
    }

    #[test]
    fn incomplete_synchronization_release_and_weaken() {
        let mut u = unit();
        u.record_misspeculation(edge(), 1, None);
        assert_eq!(u.on_load_ready(7, 3, 30, None), LoadDecision::Wait);
        // The predicted store never arrives; the load becomes head.
        let freed = u.release_load(30);
        assert_eq!(freed, vec![edge()]);
        // Commit-time training with "no dependence" weakens the counter
        // below the threshold: the prediction turns off (counter 2 < 3).
        u.train(edge(), false);
        assert_eq!(u.on_load_ready(7, 4, 31, None), LoadDecision::NotPredicted);
        // A fresh mis-speculation re-arms it.
        u.record_misspeculation(edge(), 1, None);
        assert_eq!(u.on_load_ready(7, 5, 32, None), LoadDecision::Wait);
    }

    #[test]
    fn squash_invalidation_drops_entries() {
        let mut u = unit();
        u.record_misspeculation(edge(), 1, None);
        assert_eq!(u.on_load_ready(7, 3, 30, None), LoadDecision::Wait);
        u.invalidate_squashed(|ldid| ldid == 30, |_| false);
        assert!(!u.is_waiting(30));
        assert_eq!(u.mdst_stats().invalidations, 1);
    }

    #[test]
    fn multiple_dependences_wait_for_all() {
        // §4.4.4: a load with two predicted stores waits for both.
        let mut u = unit();
        let e1 = DepEdge {
            load_pc: 7,
            store_pc: 3,
        };
        let e2 = DepEdge {
            load_pc: 7,
            store_pc: 5,
        };
        u.record_misspeculation(e1, 1, None);
        u.record_misspeculation(e2, 2, None);
        assert_eq!(u.on_load_ready(7, 5, 50, None), LoadDecision::Wait);
        // First store signals; load still waits on the second edge.
        let woken = u.on_store_issue(3, 4, 90);
        assert_eq!(woken, vec![50]);
        assert!(u.is_waiting(50), "still blocked on the second dependence");
        let woken = u.on_store_issue(5, 3, 91);
        assert_eq!(woken, vec![50]);
        assert!(!u.is_waiting(50));
    }

    #[test]
    fn esync_filters_wrong_path() {
        let mut u = SyncUnit::new(SyncUnitConfig {
            stages: 4,
            esync: true,
            ..Default::default()
        });
        // The store was issued by the task starting at PC 100.
        u.record_misspeculation(edge(), 1, Some(100));
        // Producer task (instance 2) actually starts at PC 200: filtered.
        let lookup = |_inst: u64| Some(200);
        let d = u.on_load_ready(7, 3, 30, Some(&lookup));
        assert_eq!(d, LoadDecision::NotPredicted);
        assert_eq!(u.stats().esync_filtered, 1);
        // Matching path: synchronization enforced.
        let lookup = |_inst: u64| Some(100);
        let d = u.on_load_ready(7, 3, 30, Some(&lookup));
        assert_eq!(d, LoadDecision::Wait);
    }

    #[test]
    fn esync_without_lookup_behaves_like_sync() {
        let mut u = SyncUnit::new(SyncUnitConfig {
            stages: 4,
            esync: true,
            ..Default::default()
        });
        u.record_misspeculation(edge(), 1, Some(100));
        assert_eq!(u.on_load_ready(7, 3, 30, None), LoadDecision::Wait);
    }

    #[test]
    fn store_without_entry_is_silent() {
        let mut u = unit();
        assert!(u.on_store_issue(3, 1, 20).is_empty());
    }

    #[test]
    fn reset_dynamic_keeps_predictions() {
        let mut u = unit();
        u.record_misspeculation(edge(), 1, None);
        assert_eq!(u.on_load_ready(7, 3, 30, None), LoadDecision::Wait);
        u.reset_dynamic();
        assert!(!u.is_waiting(30));
        // Prediction survives:
        assert_eq!(u.on_load_ready(7, 4, 31, None), LoadDecision::Wait);
    }

    #[test]
    #[should_panic(expected = "stages must be positive")]
    fn zero_stages_panics() {
        let _ = SyncUnit::new(SyncUnitConfig {
            stages: 0,
            ..Default::default()
        });
    }

    #[test]
    fn address_tagging_matches_on_the_data_address() {
        let mut u = SyncUnit::new(SyncUnitConfig {
            stages: 4,
            tagging: crate::TagScheme::DataAddress,
            ..Default::default()
        });
        u.record_misspeculation(edge(), 1, None);
        // Instances are data addresses now: the load waits on its address.
        assert_eq!(u.on_load_ready(7, 0x100, 30, None), LoadDecision::Wait);
        // A store to a *different* address does not wake it...
        assert!(u.on_store_issue(3, 0x200, 20).is_empty());
        assert!(u.is_waiting(30));
        // ...but the store to the same address does, regardless of how
        // many tasks apart the pair is.
        assert_eq!(u.on_store_issue(3, 0x100, 21), vec![30]);
        assert!(!u.is_waiting(30));
    }

    #[test]
    fn distance_tagging_is_the_default() {
        assert_eq!(
            SyncUnitConfig::default().tagging,
            crate::TagScheme::DependenceDistance
        );
    }
}
