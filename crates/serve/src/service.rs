//! The domain layer: request descriptors and their execution.
//!
//! A `POST /v1/experiments` body is parsed into an [`ExperimentRequest`]
//! (strictly — unknown fields, unknown ids, and type errors all carry
//! positions), normalized into a canonical cache key, and executed
//! through a shared long-lived [`mds_runner::Runner`]. Every request gets
//! its own `mds_bench::Harness` (memoization within the request) while
//! the runner's persistent trace cache is shared across all requests and
//! worker threads, so each workload is emulated at most once for the
//! lifetime of the server.

use mds_harness::json::Json;
use mds_runner::{Runner, TraceCache};
use mds_workloads::Scale;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// A validated, normalized experiment request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentRequest {
    /// A registered experiment id (`fig5`, `table3`, ...).
    pub experiment: String,
    /// The workload scale to simulate at.
    pub scale: Scale,
    /// When true, bypass the result cache *read* and recompute (the
    /// response still refreshes the cache). Cold-path benchmarking.
    pub fresh: bool,
}

impl ExperimentRequest {
    /// Parses and validates a JSON request body.
    ///
    /// Errors are user-facing: JSON syntax errors carry byte offsets,
    /// shape errors carry JSONPath locations, and unknown experiments
    /// list nothing but are named.
    pub fn from_body(body: &[u8]) -> Result<ExperimentRequest, String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = Json::parse(text).map_err(|e| e.to_string())?;
        let Json::Object(pairs) = &doc else {
            return Err("request body must be a JSON object".to_string());
        };
        for (key, _) in pairs {
            if !matches!(key.as_str(), "experiment" | "scale" | "fresh") {
                return Err(format!(
                    "unknown field '{key}' (expected experiment, scale, fresh)"
                ));
            }
        }
        let experiment: String = doc.field_as("experiment").map_err(|e| e.to_string())?;
        if mds_bench::experiment_title(&experiment).is_none() {
            return Err(format!(
                "unknown experiment '{experiment}' (GET /v1/experiments lists valid ids)"
            ));
        }
        let scale = match doc.get("scale") {
            None => Scale::Small,
            Some(v) => {
                let name: String = v.decode().map_err(|e| e.in_field("scale").to_string())?;
                mds_bench::scale_by_name(&name)
                    .ok_or_else(|| format!("unknown scale '{name}' (expected tiny|small|full)"))?
            }
        };
        let fresh = match doc.get("fresh") {
            None => false,
            Some(v) => v.decode().map_err(|e| e.in_field("fresh").to_string())?,
        };
        Ok(ExperimentRequest {
            experiment,
            scale,
            fresh,
        })
    }

    /// The canonical result-cache key: syntactically different bodies
    /// asking for the same `(experiment, scale)` share one entry.
    /// `fresh` deliberately stays out — it controls cache *reads*, not
    /// identity.
    pub fn cache_key(&self) -> String {
        format!("{}@{}", self.experiment, mds_bench::scale_name(self.scale))
    }
}

/// The long-lived execution engine behind the HTTP surface.
pub struct Service {
    runner: Runner,
    trace_cache: Arc<TraceCache>,
}

impl Service {
    /// Builds the shared runner (worker count from `jobs`, else
    /// `MDS_JOBS`, else available parallelism) over a persistent trace
    /// cache.
    pub fn new(jobs: Option<usize>) -> Result<Service, String> {
        let trace_cache = Arc::new(TraceCache::persistent());
        let runner = Runner::try_from_env(jobs)?.with_shared_cache(Arc::clone(&trace_cache));
        Ok(Service {
            runner,
            trace_cache,
        })
    }

    /// The shared trace cache (for `/metrics` and tests).
    pub fn trace_cache(&self) -> &TraceCache {
        &self.trace_cache
    }

    /// Computes the canonical response body for `req`: exactly the bytes
    /// `repro <id> --json` writes to `RESULTS_<id>.json`.
    ///
    /// A panicking workload or simulator bug is caught and mapped to an
    /// error string (the server turns it into a 500), so one bad request
    /// can't take the server down.
    pub fn execute(&self, req: &ExperimentRequest) -> Result<String, String> {
        let runner = self.runner.clone();
        let req = req.clone();
        let id = req.experiment.clone();
        catch_unwind(AssertUnwindSafe(move || {
            let mut h = mds_bench::Harness::with_runner(req.scale, runner);
            let title = mds_bench::experiment_title(&req.experiment).expect("validated id");
            let table = mds_bench::experiment(&mut h, &req.experiment).expect("validated id");
            mds_bench::results_doc(&req.experiment, title, req.scale, &table).pretty()
        }))
        .map_err(|payload| format!("experiment '{id}' failed: {}", panic_message(payload)))
    }

    /// Executes one wire-encoded grid cell (`POST /v1/cells`): decodes
    /// the job, runs it on the shared runner (sharing the persistent
    /// trace cache with every other cell and experiment), and returns
    /// the `{"id", "output"}` response body.
    ///
    /// Errors carry the HTTP status the server should answer with: 400
    /// for undecodable jobs, 500 for a simulation panic.
    pub fn execute_cell(&self, body: &[u8]) -> Result<String, (u16, String)> {
        let text = std::str::from_utf8(body).map_err(|_| (400, "body is not UTF-8".to_string()))?;
        let doc = Json::parse(text).map_err(|e| (400, e.to_string()))?;
        let job = mds_runner::wire::decode_job(&doc).map_err(|e| (400, e.to_string()))?;
        let runner = self.runner.clone();
        catch_unwind(AssertUnwindSafe(move || {
            let id = job.id.clone();
            let mut grid = mds_runner::Grid::new(job.scale);
            grid.push(job);
            let outcome = runner.run(&grid);
            let result = outcome
                .results
                .into_iter()
                .next()
                .expect("one job in, one result out");
            Json::object()
                .field("id", id)
                .field("output", mds_runner::wire::encode_output(&result.output))
                .pretty()
        }))
        .map_err(|payload| (500, format!("cell failed: {}", panic_message(payload))))
    }

    /// The `GET /v1/experiments` body: every registered id with its
    /// title, in canonical order.
    pub fn experiments_json() -> String {
        let list: Vec<Json> = mds_bench::EXPERIMENT_IDS
            .iter()
            .map(|&id| {
                Json::object().field("id", id).field(
                    "title",
                    mds_bench::experiment_title(id).expect("registered"),
                )
            })
            .collect();
        Json::object()
            .field("experiments", Json::Array(list))
            .pretty()
    }
}

/// Renders the panic payload a simulation worker died with.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "execution panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_body_with_defaults() {
        let req = ExperimentRequest::from_body(br#"{"experiment":"fig5"}"#).unwrap();
        assert_eq!(req.experiment, "fig5");
        assert_eq!(req.scale, Scale::Small);
        assert!(!req.fresh);
        assert_eq!(req.cache_key(), "fig5@small");
    }

    #[test]
    fn canonical_key_ignores_field_order_and_fresh() {
        let a = ExperimentRequest::from_body(br#"{"experiment":"table3","scale":"tiny"}"#).unwrap();
        let b = ExperimentRequest::from_body(
            br#"{ "scale" : "tiny" , "fresh" : true , "experiment" : "table3" }"#,
        )
        .unwrap();
        assert_eq!(a.cache_key(), b.cache_key());
        assert!(b.fresh);
    }

    #[test]
    fn rejections_carry_positions() {
        let syntax = ExperimentRequest::from_body(b"{").unwrap_err();
        assert!(syntax.contains("byte"), "{syntax}");
        let shape = ExperimentRequest::from_body(br#"{"experiment":7}"#).unwrap_err();
        assert!(shape.contains("$.experiment"), "{shape}");
        let missing = ExperimentRequest::from_body(br#"{}"#).unwrap_err();
        assert!(missing.contains("$.experiment"), "{missing}");
        let unknown = ExperimentRequest::from_body(br#"{"experiment":"fig99"}"#).unwrap_err();
        assert!(unknown.contains("fig99"), "{unknown}");
        let field = ExperimentRequest::from_body(br#"{"experiment":"fig5","jobs":4}"#).unwrap_err();
        assert!(field.contains("unknown field 'jobs'"), "{field}");
        let scale =
            ExperimentRequest::from_body(br#"{"experiment":"fig5","scale":"huge"}"#).unwrap_err();
        assert!(scale.contains("tiny|small|full"), "{scale}");
    }

    #[test]
    fn execute_matches_the_cli_results_document() {
        let service = Service::new(Some(2)).unwrap();
        let req =
            ExperimentRequest::from_body(br#"{"experiment":"table2","scale":"tiny"}"#).unwrap();
        let body = service.execute(&req).unwrap();
        let mut h = mds_bench::Harness::with_runner(Scale::Tiny, Runner::new(1));
        let table = mds_bench::experiment(&mut h, "table2").unwrap();
        let expected = mds_bench::results_doc(
            "table2",
            mds_bench::experiment_title("table2").unwrap(),
            Scale::Tiny,
            &table,
        )
        .pretty();
        assert_eq!(body, expected);
    }

    #[test]
    fn repeat_executions_share_the_persistent_trace_cache() {
        let service = Service::new(Some(2)).unwrap();
        let req =
            ExperimentRequest::from_body(br#"{"experiment":"table1","scale":"tiny"}"#).unwrap();
        let first = service.execute(&req).unwrap();
        let misses_after_first = service.trace_cache().misses();
        let second = service.execute(&req).unwrap();
        assert_eq!(first, second, "serving is deterministic");
        assert_eq!(
            service.trace_cache().misses(),
            misses_after_first,
            "the second execution re-used every emulated trace"
        );
        assert!(service.trace_cache().hits() > 0);
    }

    #[test]
    fn experiments_listing_is_complete() {
        let listing = Service::experiments_json();
        let doc = Json::parse(&listing).unwrap();
        let list = doc.get("experiments").unwrap().as_array().unwrap();
        assert_eq!(list.len(), mds_bench::EXPERIMENT_IDS.len());
        assert!(listing.contains("fig5"));
    }
}
