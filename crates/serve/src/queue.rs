//! The bounded admission queue between the acceptor and the workers.
//!
//! Backpressure is explicit: [`Bounded::push`] on a full (or closed)
//! queue hands the item straight back so the acceptor can shed load with
//! a `503` + `Retry-After` instead of queuing unboundedly. [`Bounded::pop`]
//! blocks until an item arrives or the queue is closed and drained, which
//! is how graceful shutdown lets workers finish in-flight work.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Recovers a usable guard from a poisoned mutex: queue state is a plain
/// `VecDeque` that stays consistent even if a holder panicked.
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity multi-producer multi-consumer queue.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    capacity: usize,
    ready: Condvar,
}

impl<T> Bounded<T> {
    /// A queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> Bounded<T> {
        Bounded {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            capacity,
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`, or hands it back if the queue is full or closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = lock(&self.state);
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. `None` once the queue is closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = lock(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Dequeues the oldest item without blocking. `None` when the queue
    /// is currently empty (open or closed). The event-driven reactor uses
    /// this to drain leftover jobs at shutdown when no workers exist.
    pub fn try_pop(&self) -> Option<T> {
        lock(&self.state).items.pop_front()
    }

    /// Closes the queue: pending items can still be popped, new pushes
    /// fail, and blocked poppers wake up.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.ready.notify_all();
    }

    /// Items currently queued (the `/metrics` queue-depth gauge).
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// The fixed capacity this queue admits (the readiness probe compares
    /// it against [`Bounded::len`] to report saturation).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_fails_when_full_and_hands_the_item_back() {
        let q = Bounded::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert!(q.push(3).is_ok());
    }

    #[test]
    fn close_drains_then_yields_none() {
        let q = Bounded::new(4);
        q.push("a").unwrap();
        q.close();
        assert_eq!(q.push("b"), Err("b"));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_poppers() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let handle = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the popper a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(handle.join().unwrap(), None);
    }

    #[test]
    fn items_flow_producer_to_consumer() {
        let q = Arc::new(Bounded::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..20 {
            loop {
                match q.push(i) {
                    Ok(()) => break,
                    Err(_) => std::thread::yield_now(),
                }
            }
        }
        q.close();
        let mut got = consumer.join().unwrap();
        got.sort_unstable();
        assert_eq!(got, (0..20).collect::<Vec<_>>());
    }
}
