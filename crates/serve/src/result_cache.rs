//! The canonical-request result cache: normalized descriptor → response
//! body, LRU within a byte budget.
//!
//! Keys are canonical request strings (see
//! [`ExperimentRequest::cache_key`](crate::service::ExperimentRequest::cache_key)),
//! so syntactically different JSON bodies asking for the same experiment
//! share one entry. A warm hit returns the exact bytes of the original
//! response — no re-simulation, no re-serialization — which is what makes
//! repeat queries byte-identical and nearly free.
//!
//! Recency is an index-based doubly-linked list over a slab of nodes
//! (same shape as `mds_predict::LruTable`), so `get` and `put` are O(1)
//! regardless of how many entries are resident — the earlier `Vec` order
//! list made every warm hit an O(n) scan. The key map deliberately stays
//! on `std`'s SipHash `HashMap`: cache keys come from client-controlled
//! request bodies, where a seedless hash would invite collision flooding.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

const NIL: usize = usize::MAX;

struct Node {
    // `None` while the slot sits on the free list.
    entry: Option<(String, Arc<str>)>,
    prev: usize,
    next: usize,
}

struct Lru {
    map: HashMap<String, usize>,
    nodes: Vec<Node>,
    head: usize, // most recently used
    tail: usize, // least recently used
    free: Vec<usize>,
    bytes: usize,
}

impl Lru {
    fn new() -> Lru {
        Lru {
            map: HashMap::new(),
            nodes: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            bytes: 0,
        }
    }

    fn touch(&mut self, idx: usize) {
        if self.head != idx {
            self.unlink(idx);
            self.push_front(idx);
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Unlinks `idx`, frees its slot, and returns the stored body.
    fn evict(&mut self, idx: usize) -> Arc<str> {
        self.unlink(idx);
        self.free.push(idx);
        let (key, body) = self.nodes[idx].entry.take().expect("occupied LRU slot");
        self.map.remove(&key);
        self.bytes -= body.len();
        body
    }

    fn insert_front(&mut self, key: &str, body: Arc<str>) {
        self.bytes += body.len();
        let idx = match self.free.pop() {
            Some(slot) => {
                self.nodes[slot].entry = Some((key.to_string(), body));
                slot
            }
            None => {
                self.nodes.push(Node {
                    entry: Some((key.to_string(), body)),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key.to_string(), idx);
        self.push_front(idx);
    }
}

/// A byte-budgeted LRU cache of serialized responses.
pub struct ResultCache {
    inner: Mutex<Lru>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache evicting least-recently-used entries once the resident
    /// bodies exceed `budget_bytes`.
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru::new()),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cached body for `key`, refreshing its recency. Counts a hit or
    /// a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let mut lru = lock(&self.inner);
        match lru.map.get(key).copied() {
            Some(idx) => {
                lru.touch(idx);
                self.hits.fetch_add(1, Ordering::Relaxed);
                lru.nodes[idx].entry.as_ref().map(|(_, body)| body.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, then evicts LRU entries until the
    /// byte budget holds. A body larger than the whole budget is not
    /// cached at all.
    pub fn put(&self, key: &str, body: Arc<str>) {
        if body.len() > self.budget {
            return;
        }
        let mut lru = lock(&self.inner);
        if let Some(idx) = lru.map.get(key).copied() {
            // Refresh: replacing an entry is not an eviction.
            let _ = lru.evict(idx);
        }
        lru.insert_front(key, body);
        while lru.bytes > self.budget {
            let victim = lru.tail;
            let _ = lru.evict(victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes of response bodies currently resident.
    pub fn resident_bytes(&self) -> usize {
        lock(&self.inner).bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        lock(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every resident entry, most- to least-recently used, without
    /// touching recency or the hit/miss counters. This is the warm-state
    /// export surface (`GET /v1/cache`): MRU-first order means a receiver
    /// with a smaller budget keeps the hottest keys.
    pub fn entries(&self) -> Vec<(String, Arc<str>)> {
        let lru = lock(&self.inner);
        let mut out = Vec::with_capacity(lru.map.len());
        let mut idx = lru.head;
        while idx != NIL {
            let (key, body) = lru.nodes[idx].entry.as_ref().expect("linked LRU slot");
            out.push((key.clone(), body.clone()));
            idx = lru.nodes[idx].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ResultCache::new(1024);
        assert!(cache.get("a").is_none());
        cache.put("a", body("xyz"));
        assert_eq!(cache.get("a").as_deref(), Some("xyz"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.resident_bytes(), 3);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(10);
        cache.put("a", body("aaaa")); // 4 bytes
        cache.put("b", body("bbbb")); // 8 bytes
        let _ = cache.get("a"); // refresh a: b is now coldest
        cache.put("c", body("cccc")); // 12 bytes -> evict b
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert!(cache.resident_bytes() <= 10);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let cache = ResultCache::new(4);
        cache.put("huge", body("too big to fit"));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let cache = ResultCache::new(100);
        cache.put("k", body("first"));
        cache.put("k", body("second!"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), 7);
        assert_eq!(cache.get("k").as_deref(), Some("second!"));
    }

    #[test]
    fn slots_are_reused_across_evictions() {
        let cache = ResultCache::new(8);
        for i in 0..100 {
            cache.put(&format!("k{i}"), body("12345678"));
        }
        let lru = lock(&cache.inner);
        assert!(lru.nodes.len() <= 2, "slab must not grow unboundedly");
    }

    #[test]
    fn entries_walks_mru_first_without_touching_state() {
        let cache = ResultCache::new(1024);
        cache.put("a", body("1"));
        cache.put("b", body("2"));
        cache.put("c", body("3"));
        cache.get("a");
        let (hits, misses) = (cache.hits(), cache.misses());
        let keys: Vec<String> = cache.entries().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a", "c", "b"]);
        assert_eq!((cache.hits(), cache.misses()), (hits, misses));
    }

    /// Reference model: a `Vec` ordered least- to most-recently used, the
    /// shape (and the O(n) cost) of the original implementation.
    struct Model {
        order: Vec<(String, Arc<str>)>,
        bytes: usize,
        budget: usize,
        evictions: u64,
    }

    impl Model {
        fn get(&mut self, key: &str) -> Option<Arc<str>> {
            let pos = self.order.iter().position(|(k, _)| k == key)?;
            let entry = self.order.remove(pos);
            let found = entry.1.clone();
            self.order.push(entry);
            Some(found)
        }

        fn put(&mut self, key: &str, val: Arc<str>) {
            if val.len() > self.budget {
                return;
            }
            if let Some(pos) = self.order.iter().position(|(k, _)| k == key) {
                self.bytes -= self.order.remove(pos).1.len();
            }
            self.bytes += val.len();
            self.order.push((key.to_string(), val));
            while self.bytes > self.budget {
                self.bytes -= self.order.remove(0).1.len();
                self.evictions += 1;
            }
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Get(u8),
        Put(u8, usize),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u8..12).prop_map(Op::Get),
            (0u8..12, 0usize..24).prop_map(|(k, n)| Op::Put(k, n)),
        ]
    }

    properties! {
        #[test]
        fn behaves_like_reference_model(
            budget in 1usize..40,
            ops in vec_of(arb_op(), 0..200),
        ) {
            let cache = ResultCache::new(budget);
            let mut model = Model {
                order: Vec::new(),
                bytes: 0,
                budget,
                evictions: 0,
            };
            for op in ops {
                match op {
                    Op::Get(k) => {
                        let key = format!("k{k}");
                        prop_assert_eq!(cache.get(&key), model.get(&key));
                    }
                    Op::Put(k, n) => {
                        let key = format!("k{k}");
                        let val: Arc<str> = Arc::from("x".repeat(n));
                        cache.put(&key, val.clone());
                        model.put(&key, val);
                    }
                }
                prop_assert_eq!(cache.len(), model.order.len());
                prop_assert_eq!(cache.resident_bytes(), model.bytes);
                prop_assert!(cache.resident_bytes() <= budget);
                prop_assert_eq!(cache.evictions(), model.evictions);
            }
        }
    }
}
