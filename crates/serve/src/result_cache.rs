//! The canonical-request result cache: normalized descriptor → response
//! body, LRU within a byte budget.
//!
//! Keys are canonical request strings (see
//! [`ExperimentRequest::cache_key`](crate::service::ExperimentRequest::cache_key)),
//! so syntactically different JSON bodies asking for the same experiment
//! share one entry. A warm hit returns the exact bytes of the original
//! response — no re-simulation, no re-serialization — which is what makes
//! repeat queries byte-identical and nearly free.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Lru {
    entries: HashMap<String, Arc<str>>,
    /// Keys from least- to most-recently used.
    order: Vec<String>,
    bytes: usize,
}

/// A byte-budgeted LRU cache of serialized responses.
pub struct ResultCache {
    inner: Mutex<Lru>,
    budget: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl ResultCache {
    /// A cache evicting least-recently-used entries once the resident
    /// bodies exceed `budget_bytes`.
    pub fn new(budget_bytes: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Lru {
                entries: HashMap::new(),
                order: Vec::new(),
                bytes: 0,
            }),
            budget: budget_bytes,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The cached body for `key`, refreshing its recency. Counts a hit or
    /// a miss.
    pub fn get(&self, key: &str) -> Option<Arc<str>> {
        let mut lru = lock(&self.inner);
        match lru.entries.get(key).cloned() {
            Some(body) => {
                if let Some(pos) = lru.order.iter().position(|k| k == key) {
                    let k = lru.order.remove(pos);
                    lru.order.push(k);
                }
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(body)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or refreshes) `key`, then evicts LRU entries until the
    /// byte budget holds. A body larger than the whole budget is not
    /// cached at all.
    pub fn put(&self, key: &str, body: Arc<str>) {
        if body.len() > self.budget {
            return;
        }
        let mut lru = lock(&self.inner);
        if let Some(old) = lru.entries.remove(key) {
            lru.bytes -= old.len();
            if let Some(pos) = lru.order.iter().position(|k| k == key) {
                lru.order.remove(pos);
            }
        }
        lru.bytes += body.len();
        lru.entries.insert(key.to_string(), body);
        lru.order.push(key.to_string());
        while lru.bytes > self.budget {
            let victim = lru.order.remove(0);
            if let Some(old) = lru.entries.remove(&victim) {
                lru.bytes -= old.len();
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to stay within the byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Bytes of response bodies currently resident.
    pub fn resident_bytes(&self) -> usize {
        lock(&self.inner).bytes
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        lock(&self.inner).entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = ResultCache::new(1024);
        assert!(cache.get("a").is_none());
        cache.put("a", body("xyz"));
        assert_eq!(cache.get("a").as_deref(), Some("xyz"));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.resident_bytes(), 3);
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ResultCache::new(10);
        cache.put("a", body("aaaa")); // 4 bytes
        cache.put("b", body("bbbb")); // 8 bytes
        let _ = cache.get("a"); // refresh a: b is now coldest
        cache.put("c", body("cccc")); // 12 bytes -> evict b
        assert_eq!(cache.evictions(), 1);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
        assert!(cache.resident_bytes() <= 10);
    }

    #[test]
    fn oversized_bodies_are_not_cached() {
        let cache = ResultCache::new(4);
        cache.put("huge", body("too big to fit"));
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn reinsert_replaces_without_leaking_bytes() {
        let cache = ResultCache::new(100);
        cache.put("k", body("first"));
        cache.put("k", body("second!"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.resident_bytes(), 7);
        assert_eq!(cache.get("k").as_deref(), Some("second!"));
    }
}
