//! The HTTP server: acceptor thread, bounded admission, fixed worker
//! pool, routing, and graceful shutdown.
//!
//! Connection lifecycle: the acceptor accepts, stamps an admission time,
//! and pushes the connection into the bounded queue — or, when the queue
//! is full, immediately writes `503` + `Retry-After` and closes (explicit
//! load shedding, never unbounded buffering). A worker pops the
//! connection and serves requests on it until the client closes, an idle
//! timeout fires, or the per-connection request cap is reached.
//!
//! Graceful shutdown (triggered by [`Server::shutdown`] or a
//! `POST /v1/shutdown` — the SIGTERM surrogate, since plain `std` has no
//! signal handling): stop accepting, close the queue, let workers drain
//! queued and in-flight connections, join everything, then flush a final
//! metrics summary to the structured log.

use crate::access_log::{AccessLog, AccessRecord};
use crate::http::{self, Limits, ReadError, Request, Response};
use crate::io::reactor::{self, Dispatch, Outcome};
use crate::io::IoModel;
use crate::metrics::{self, Gauges, Metrics};
use crate::persist;
use crate::queue::Bounded;
use crate::result_cache::ResultCache;
use crate::service::{ExperimentRequest, Service};
use mds_harness::json::Json;
use mds_runner::TraceCache;
use mds_store::{Store, StoreConfig};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the structured access log goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogTarget {
    /// JSON lines to stderr (production).
    Stderr,
    /// Nowhere (benchmarks, `--quiet`).
    Discard,
    /// An in-memory buffer (tests).
    Memory,
}

/// Server tunables. `Default` is a sensible local configuration; tests
/// override the pieces they probe.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Connection-serving worker threads. Zero is allowed (nothing is
    /// ever served — useful to test admission backpressure).
    pub workers: usize,
    /// Admission-queue capacity; beyond it, connections get `503`.
    pub queue_depth: usize,
    /// Simulation worker threads for the shared runner (`None`: from
    /// `MDS_JOBS` or available parallelism).
    pub jobs: Option<usize>,
    /// Per-connection read timeout (also the keep-alive idle timeout).
    pub read_timeout: Duration,
    /// Total deadline for one request head, first byte to final CRLF.
    /// Distinct from `read_timeout`, which only bounds the gap between
    /// reads — a drip-fed header resets that clock forever (slow loris);
    /// this one it cannot reset.
    pub header_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Request head/body size limits.
    pub limits: Limits,
    /// Keep-alive cap: requests served per connection before closing.
    pub max_requests_per_connection: usize,
    /// Result-cache byte budget.
    pub cache_budget_bytes: usize,
    /// Durable result store directory (`None`: in-memory cache only).
    /// When set, the result cache is prewarmed from the store at boot
    /// and every cache fill is appended, so warm state survives
    /// restarts — including `kill -9`.
    pub store_dir: Option<PathBuf>,
    /// Access-log destination.
    pub log: LogTarget,
    /// Connection engine: event-driven `epoll` (default on Linux) or the
    /// legacy thread-per-connection pool.
    pub io: IoModel,
    /// Concurrent-connection cap under `--io epoll`; accepts beyond it
    /// are shed with `503` immediately. (The threaded engine is capped
    /// by `workers + queue_depth` by construction.)
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            workers: 4,
            queue_depth: 64,
            jobs: None,
            read_timeout: Duration::from_secs(5),
            header_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            max_requests_per_connection: 1000,
            cache_budget_bytes: 16 * 1024 * 1024,
            store_dir: None,
            log: LogTarget::Stderr,
            io: IoModel::default(),
            max_connections: 10_000,
        }
    }
}

/// An admitted connection, stamped for queue-wait accounting.
struct Admitted {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by the acceptor, the workers, and the handle.
struct Shared {
    config: ServerConfig,
    service: Service,
    results: ResultCache,
    /// The durable result tier (`--store`); `None` keeps today's
    /// in-memory-only behavior.
    store: Option<Store>,
    /// The effective output epoch (build epoch + registered WDL
    /// fingerprints); tags stored records and the `/v1/cache` wire.
    epoch: u64,
    /// Result-cache entries replayed from the store at boot.
    prewarmed: usize,
    metrics: Metrics,
    log: AccessLog,
    queue: Bounded<Admitted>,
    /// The request-level work queue under `--io epoll`: parsed requests
    /// waiting for a worker. `None` under `--io threads`, where the
    /// admission queue above holds whole connections instead.
    jobs: Option<Arc<Bounded<reactor::Job>>>,
    /// Reactor gauges (`mds_io_*`); all-zero under `--io threads`.
    io_stats: Arc<reactor::IoStats>,
    stop: AtomicBool,
    /// Set the moment shutdown is *requested* (before the drain finishes),
    /// so the readiness probe flips to 503 while in-flight work completes
    /// and a gateway can eject this backend ahead of hard failures.
    draining: AtomicBool,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

impl Shared {
    /// Work waiting for a worker: queued requests under `--io epoll`,
    /// queued connections under `--io threads`.
    fn depth(&self) -> usize {
        self.jobs
            .as_ref()
            .map_or_else(|| self.queue.len(), |j| j.len())
    }

    /// Capacity of whichever queue [`Shared::depth`] reports on.
    fn depth_capacity(&self) -> usize {
        self.jobs
            .as_ref()
            .map_or_else(|| self.queue.capacity(), |j| j.capacity())
    }
}

/// A running server. Dropping it performs a graceful shutdown.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    /// Background drain point for deferred store work (compaction);
    /// `None` when no store is attached.
    maintenance: Option<JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    reactor: Option<reactor::Reactor>,
    /// Guards the final summary so Drop after `shutdown` is a no-op.
    finished: bool,
}

impl Server {
    /// Binds, spawns the acceptor and workers, and returns immediately.
    pub fn start(config: ServerConfig) -> Result<Server, String> {
        let service = Service::new(config.jobs)?;
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("no local addr: {e}"))?;
        let log = match config.log {
            LogTarget::Stderr => AccessLog::stderr(),
            LogTarget::Discard => AccessLog::discard(),
            LogTarget::Memory => AccessLog::memory(),
        };
        // The epoch must be computed after any WDL registration (the
        // binary registers families before calling `start`), because
        // registered fingerprints are part of output identity.
        let epoch = persist::effective_epoch();
        let results = ResultCache::new(config.cache_budget_bytes);
        let mut prewarmed = 0usize;
        let store = match &config.store_dir {
            None => None,
            Some(dir) => {
                let store = Store::open(
                    dir,
                    StoreConfig {
                        epoch,
                        ..StoreConfig::default()
                    },
                )
                .map_err(|e| format!("cannot open store {}: {e}", dir.display()))?;
                for (key, body) in store.iter() {
                    results.put(&key, body);
                    prewarmed += 1;
                }
                let r = store.recovery();
                log.event(
                    Json::object()
                        .field("evt", "store")
                        .field("dir", dir.display().to_string())
                        .field("epoch", epoch)
                        .field("records", store.len())
                        .field("prewarmed", prewarmed)
                        .field("stale_skipped", r.stale_skipped)
                        .field("corrupt_bytes", r.corrupt_bytes),
                );
                Some(store)
            }
        };
        let io = config.io.effective();
        let jobs = match io {
            IoModel::Epoll => Some(Arc::new(Bounded::new(config.queue_depth))),
            IoModel::Threads => None,
        };
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_depth),
            results,
            store,
            epoch,
            prewarmed,
            config,
            service,
            metrics: Metrics::default(),
            log,
            jobs,
            io_stats: Arc::new(reactor::IoStats::default()),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
        });
        // The maintenance thread is the drain point for deferred store
        // work: appends never compact the log inline (that would stall
        // the unlucky request), so this sweep does it off the request
        // path. Spawned before the engine branch — both io models need
        // it.
        let maintenance = match &shared.store {
            None => None,
            Some(_) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("mds-serve-maintenance".to_string())
                        .spawn(move || maintenance_loop(&shared))
                        .map_err(|e| format!("cannot spawn maintenance: {e}"))?,
                )
            }
        };
        #[cfg(target_os = "linux")]
        if io == IoModel::Epoll {
            let app = Arc::new(ServeApp {
                shared: Arc::clone(&shared),
            });
            let reactor = reactor::Reactor::start(
                listener,
                app,
                reactor::Config {
                    limits: shared.config.limits,
                    max_requests: shared.config.max_requests_per_connection,
                    read_timeout: shared.config.read_timeout,
                    header_timeout: shared.config.header_timeout,
                    write_timeout: shared.config.write_timeout,
                    max_connections: shared.config.max_connections,
                },
                shared.config.workers,
                Arc::clone(shared.jobs.as_ref().expect("epoll mode has a job queue")),
                Arc::clone(&shared.io_stats),
            )
            .map_err(|e| format!("cannot start reactor: {e}"))?;
            return Ok(Server {
                shared,
                local_addr,
                acceptor: None,
                workers: Vec::new(),
                maintenance,
                reactor: Some(reactor),
                finished: false,
            });
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mds-serve-acceptor".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };
        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mds-serve-worker-{i}"))
                    .spawn(move || {
                        while let Some(conn) = shared.queue.pop() {
                            handle_connection(&shared, conn);
                        }
                    })
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        Ok(Server {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            maintenance,
            #[cfg(target_os = "linux")]
            reactor: None,
            finished: false,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Request-path counters (tests, final summaries).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// The result cache.
    pub fn result_cache(&self) -> &ResultCache {
        &self.shared.results
    }

    /// The shared trace cache.
    pub fn trace_cache(&self) -> &TraceCache {
        self.shared.service.trace_cache()
    }

    /// The durable result store, when configured.
    pub fn store(&self) -> Option<&Store> {
        self.shared.store.as_ref()
    }

    /// The effective output epoch this server stores and serves under.
    pub fn epoch(&self) -> u64 {
        self.shared.epoch
    }

    /// Result-cache entries replayed from the store at boot.
    pub fn prewarmed(&self) -> usize {
        self.shared.prewarmed
    }

    /// Work currently waiting for a worker: parsed requests under
    /// `--io epoll`, whole connections under `--io threads`.
    pub fn queue_depth(&self) -> usize {
        self.shared.depth()
    }

    /// Reactor gauges (`mds_io_*`); all-zero under `--io threads`.
    pub fn io_stats(&self) -> &reactor::IoStats {
        &self.shared.io_stats
    }

    /// Buffered log lines (only with [`LogTarget::Memory`]).
    pub fn log_lines(&self) -> Vec<String> {
        self.shared.log.lines()
    }

    /// Blocks until a client posts `/v1/shutdown` (or [`Server::shutdown`]
    /// runs from another thread).
    pub fn wait_for_shutdown(&self) {
        let mut requested = self
            .shared
            .shutdown_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join all threads, flush the final metrics summary.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        signal_shutdown(&self.shared);
        #[cfg(target_os = "linux")]
        if let Some(mut reactor) = self.reactor.take() {
            reactor.stop_and_join();
        }
        if self.acceptor.is_some() {
            // Wake the acceptor out of its blocking accept().
            let _ = TcpStream::connect(self.local_addr);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(maintenance) = self.maintenance.take() {
            let _ = maintenance.join();
        }
        let m = &self.shared.metrics;
        let load = |v: &std::sync::atomic::AtomicU64| v.load(Ordering::Relaxed);
        self.shared.log.event(
            Json::object()
                .field("evt", "shutdown")
                .field("requests_total", load(&m.requests_total))
                .field("rejected_total", load(&m.rejected_total))
                .field("result_cache_hits", load(&m.result_cache_hits))
                .field("result_cache_misses", load(&m.result_cache_misses))
                .field(
                    "trace_emulations",
                    self.shared.service.trace_cache().misses(),
                ),
        );
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// The deferred-store-work sweep: compacts the durable log once it
/// outgrows its threshold, off the request path (appends only mark the
/// debt — see [`mds_store::Store::append`]). Wakes every 100ms on the
/// shutdown condvar, and runs one final sweep after shutdown is
/// signalled so a drained server leaves a compact store behind.
fn maintenance_loop(shared: &Shared) {
    let Some(store) = &shared.store else {
        return;
    };
    let sweep = |store: &Store| match store.compact_if_due() {
        Ok(false) => {}
        Ok(true) => shared.log.event(
            Json::object()
                .field("evt", "store_compact")
                .field("snapshot_bytes", store.snapshot_bytes()),
        ),
        Err(e) => shared.log.event(
            Json::object()
                .field("evt", "store_compact_error")
                .field("error", e.to_string()),
        ),
    };
    let mut requested = shared
        .shutdown_flag
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    while !*requested {
        requested = shared
            .shutdown_cv
            .wait_timeout(requested, Duration::from_millis(100))
            .unwrap_or_else(PoisonError::into_inner)
            .0;
        if !*requested {
            drop(requested);
            sweep(store);
            requested = shared
                .shutdown_flag
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    drop(requested);
    sweep(store);
}

fn signal_shutdown(shared: &Shared) {
    shared.draining.store(true, Ordering::SeqCst);
    *shared
        .shutdown_flag
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = true;
    shared.shutdown_cv.notify_all();
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let _ = stream.set_nodelay(true);
        let admitted = Admitted {
            stream,
            enqueued: Instant::now(),
        };
        if let Err(rejected) = shared.queue.push(admitted) {
            shed(shared, rejected.stream);
        }
    }
    shared.queue.close();
}

/// Counts and logs one shed, returning the backpressure response. Shared
/// by the threaded acceptor (which sheds whole connections) and the
/// event-driven engine (which sheds individual requests when the job
/// queue or connection table is full).
fn shed_response(shared: &Shared, queue_depth: usize) -> Response {
    shared
        .metrics
        .rejected_total
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.count_response(503);
    shared.log.event(
        Json::object()
            .field("evt", "shed")
            .field("status", 503u64)
            .field("queue_depth", queue_depth),
    );
    Response::json(503, r#"{"error":"admission queue full, retry shortly"}"#)
        .header("retry-after", "1")
}

/// Writes the backpressure response on an over-capacity connection.
fn shed(shared: &Shared, mut stream: TcpStream) {
    let response = shed_response(shared, shared.queue.len());
    let _ = response.write_to(&mut stream, false);
}

/// The serving application behind the event-driven engine: the same
/// `route` as the threaded path, with metrics and access logging hung on
/// the reactor's callbacks.
struct ServeApp {
    shared: Arc<Shared>,
}

impl ServeApp {
    /// Counts and logs one finished response.
    fn account(&self, request: &Request, outcome: &Outcome, queue_wait_us: u64, compute_us: u64) {
        let shared = &self.shared;
        shared.metrics.queue_wait.observe_us(queue_wait_us);
        shared.metrics.compute.observe_us(compute_us);
        shared.metrics.count_response(outcome.response.status());
        shared.log.record(&AccessRecord {
            method: request.method.clone(),
            target: request.target.clone(),
            status: outcome.response.status(),
            queue_wait_us,
            compute_us,
            cache: outcome.cache,
            bytes: outcome.response.body_len(),
        });
    }
}

impl reactor::App for ServeApp {
    fn dispatch(&self, request: &Request) -> Dispatch {
        // The worker pool is for *work*: experiment execution and store
        // writes. Probes, metrics, and control answers stay on the
        // reactor thread, where they cost microseconds and skip a hop.
        match (request.method.as_str(), request.target.as_str()) {
            ("POST", "/v1/experiments" | "/v1/grids" | "/v1/cells") | (_, "/v1/cache") => {
                Dispatch::Defer
            }
            _ => {
                let started = Instant::now();
                let routed = route(&self.shared, request);
                let compute_us = started.elapsed().as_micros() as u64;
                let outcome = Outcome {
                    response: routed.response,
                    cache: routed.cache,
                    close: routed.close,
                };
                self.account(request, &outcome, 0, compute_us);
                Dispatch::Inline(outcome)
            }
        }
    }

    fn execute(&self, request: &Request) -> Outcome {
        let routed = route(&self.shared, request);
        Outcome {
            response: routed.response,
            cache: routed.cache,
            close: routed.close,
        }
    }

    fn on_connection(&self) {
        self.shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_response(
        &self,
        request: &Request,
        outcome: &Outcome,
        queue_wait_us: u64,
        compute_us: u64,
    ) {
        self.account(request, outcome, queue_wait_us, compute_us);
    }

    fn shed(&self, queue_len: usize) -> Response {
        shed_response(&self.shared, queue_len)
    }

    fn on_request_error(&self, status: u16) {
        self.shared.metrics.count_response(status);
    }

    fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst) || self.shared.stop.load(Ordering::SeqCst)
    }
}

/// What the router produced for one request.
struct Routed {
    response: Response,
    cache: &'static str,
    /// Close the connection after this response regardless of keep-alive.
    close: bool,
}

/// What came of waiting for the next keep-alive request.
enum IdleWait {
    /// Bytes are waiting; go read the request.
    Ready,
    /// Other connections queued up (or shutdown began): release the
    /// worker instead of pinning it to an idle peer.
    Yield,
    /// The peer closed, errored, or idled past the read timeout.
    Gone,
}

/// Blocks until the next request's first byte arrives, but in short
/// slices that re-check the admission queue: a worker parked on an idle
/// keep-alive connection would otherwise be pinned for the whole read
/// timeout while admitted connections starve behind it. Restores the
/// configured read timeout before returning.
fn await_next_request(stream: &mut TcpStream, shared: &Shared) -> IdleWait {
    let slice = Duration::from_millis(20).min(shared.config.read_timeout);
    let deadline = Instant::now() + shared.config.read_timeout;
    let _ = stream.set_read_timeout(Some(slice));
    let mut byte = [0u8; 1];
    let outcome = loop {
        if shared.stop.load(Ordering::SeqCst) || !shared.queue.is_empty() {
            break IdleWait::Yield;
        }
        match stream.peek(&mut byte) {
            Ok(0) => break IdleWait::Gone,
            Ok(_) => break IdleWait::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    break IdleWait::Gone;
                }
            }
            Err(_) => break IdleWait::Gone,
        }
    };
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    outcome
}

fn handle_connection(shared: &Shared, admitted: Admitted) {
    let queue_wait_us = admitted.enqueued.elapsed().as_micros() as u64;
    shared.metrics.queue_wait.observe_us(queue_wait_us);
    let mut stream = admitted.stream;
    // One reader for the whole connection: bytes a client pipelines past
    // the current request carry over to the next iteration.
    let mut reader = http::RequestReader::new();
    for served in 0..shared.config.max_requests_per_connection {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        // Between requests (nothing pipelined), wait in queue-aware
        // slices so contended workers cycle instead of idling here.
        if served > 0 && reader.buffered() == 0 {
            match await_next_request(&mut stream, shared) {
                IdleWait::Ready => {}
                IdleWait::Yield | IdleWait::Gone => break,
            }
        }
        // Read under a *total* header deadline: the per-read timeout
        // alone resets on every byte, so a client dripping one header
        // byte per timeout window could pin this worker forever.
        let request = match http::read_request_deadline(
            &mut reader,
            &mut stream,
            shared.config.limits,
            shared.config.read_timeout,
            shared.config.header_timeout,
        ) {
            Ok(request) => request,
            Err(e) => {
                let status = match e {
                    ReadError::Closed | ReadError::TimedOut | ReadError::Io(_) => break,
                    ReadError::HeaderTimeout => 408,
                    ReadError::HeadTooLarge | ReadError::BodyTooLarge => 413,
                    ReadError::Malformed(_) => 400,
                };
                shared.metrics.count_response(status);
                let body = Json::object().field("error", e.to_string()).to_string();
                let _ = Response::json(status, body).write_to(&mut stream, false);
                break;
            }
        };
        let wait = if served == 0 { queue_wait_us } else { 0 };
        let started = Instant::now();
        let routed = route(shared, &request);
        let compute_us = started.elapsed().as_micros() as u64;
        shared.metrics.compute.observe_us(compute_us);
        shared.metrics.count_response(routed.response.status());
        // Yield the worker when other connections are queued for one:
        // a long-lived keep-alive connection would otherwise pin this
        // worker while admitted connections starve behind it (until an
        // idle timeout frees a slot, seconds later). Closing sends the
        // client back through the admission queue, so worker slots cycle
        // fairly under connection oversubscription; with a free worker
        // for every connection, keep-alive persists untouched.
        let keep_alive = request.wants_keep_alive()
            && !routed.close
            && served + 1 < shared.config.max_requests_per_connection
            && shared.queue.is_empty()
            && !shared.stop.load(Ordering::SeqCst);
        shared.log.record(&AccessRecord {
            method: request.method.clone(),
            target: request.target.clone(),
            status: routed.response.status(),
            queue_wait_us: wait,
            compute_us,
            cache: routed.cache,
            bytes: routed.response.body_len(),
        });
        if routed.response.write_to(&mut stream, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

fn route(shared: &Shared, request: &Request) -> Routed {
    let pass = |response: Response| Routed {
        response,
        cache: "-",
        close: false,
    };
    match (request.method.as_str(), request.target.as_str()) {
        // Liveness: the process is up and serving the request path.
        ("GET", "/healthz") => pass(Response::text(200, "ok\n")),
        // Readiness: whether this backend should receive NEW traffic.
        // 503 while the admission queue is saturated (the next connection
        // would be shed anyway) or once shutdown drain has begun, so a
        // gateway ejects the backend before requests start failing.
        ("GET", "/readyz") => pass(readiness(shared)),
        ("GET", "/metrics") => {
            let gauges = Gauges {
                queue_depth: shared.depth(),
                result_cache_entries: shared.results.len(),
                result_cache_bytes: shared.results.resident_bytes(),
                result_cache_evictions: shared.results.evictions(),
                trace_cache_hits: shared.service.trace_cache().hits(),
                trace_cache_misses: shared.service.trace_cache().misses(),
                trace_cache_bytes: shared.service.trace_cache().resident_bytes(),
                store_records: shared.store.as_ref().map_or(0, Store::len),
                store_log_bytes: shared.store.as_ref().map_or(0, Store::log_bytes),
                store_snapshot_bytes: shared.store.as_ref().map_or(0, Store::snapshot_bytes),
                store_prewarmed: shared.prewarmed,
                store_appends: shared.store.as_ref().map_or(0, Store::appends),
                store_append_errors: shared.store.as_ref().map_or(0, Store::append_errors),
                store_compactions: shared.store.as_ref().map_or(0, Store::compactions),
                io_registered_fds: shared.io_stats.registered_fds.load(Ordering::Relaxed),
                io_ready_depth: shared.io_stats.ready_depth.load(Ordering::Relaxed),
                io_timer_fires: shared.io_stats.timer_fires.load(Ordering::Relaxed),
            };
            pass(
                Response::new(200)
                    .header("content-type", "text/plain; version=0.0.4; charset=utf-8")
                    .body(metrics::render(&shared.metrics, gauges)),
            )
        }
        ("GET", "/v1/experiments") => pass(Response::json(200, Service::experiments_json())),
        ("POST", "/v1/experiments") => serve_experiment(shared, &request.body),
        ("POST", "/v1/grids") => serve_grid(shared, &request.body),
        ("POST", "/v1/cells") => serve_cell(shared, &request.body),
        // Warm-state transfer: export (GET) / bulk-import (POST) of the
        // result cache, epoch-tagged. Intra-cluster plumbing — the
        // gateway's ring-neighbor handoff — not a public surface.
        ("GET", "/v1/cache") => pass(Response::json(
            200,
            persist::dump(shared.epoch, &shared.results.entries()),
        )),
        ("POST", "/v1/cache") => pass(fill_cache(shared, &request.body)),
        ("POST", "/v1/shutdown") => {
            signal_shutdown(shared);
            Routed {
                response: Response::json(200, r#"{"status":"shutting down"}"#),
                cache: "-",
                close: true,
            }
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/experiments" | "/v1/grids" | "/v1/cells"
            | "/v1/cache" | "/v1/shutdown",
        ) => pass(Response::json(405, r#"{"error":"method not allowed"}"#)),
        _ => pass(Response::json(404, r#"{"error":"not found"}"#)),
    }
}

/// The `GET /readyz` response: `200` when this backend should receive new
/// traffic, `503` + `Retry-After` while draining or saturated.
fn readiness(shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, r#"{"ready":false,"reason":"draining"}"#)
            .header("retry-after", "1");
    }
    if shared.depth() >= shared.depth_capacity() {
        return Response::json(
            503,
            r#"{"ready":false,"reason":"admission queue saturated"}"#,
        )
        .header("retry-after", "1");
    }
    Response::text(200, "ready\n")
}

fn serve_experiment(shared: &Shared, body: &[u8]) -> Routed {
    let request = match ExperimentRequest::from_body(body) {
        Ok(request) => request,
        Err(message) => {
            let body = Json::object().field("error", message).to_string();
            return Routed {
                response: Response::json(400, body),
                cache: "-",
                close: false,
            };
        }
    };
    match experiment_body(shared, &request) {
        Ok((body, cache)) => Routed {
            response: Response::json(200, body),
            cache,
            close: false,
        },
        Err((status, message)) => Routed {
            response: Response::json(status, Json::object().field("error", message).to_string()),
            cache: "miss",
            close: false,
        },
    }
}

/// The cached-execute core shared by `/v1/experiments` and `/v1/grids`:
/// result-cache read (unless `fresh`), compute on miss, cache + persist
/// the fill. Returns the response body and its cache disposition.
fn experiment_body(
    shared: &Shared,
    request: &ExperimentRequest,
) -> Result<(String, &'static str), (u16, String)> {
    let key = request.cache_key();
    if !request.fresh {
        if let Some(cached) = shared.results.get(&key) {
            shared
                .metrics
                .result_cache_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok((cached.to_string(), "hit"));
        }
    }
    shared
        .metrics
        .result_cache_misses
        .fetch_add(1, Ordering::Relaxed);
    match shared.service.execute(request) {
        Ok(body) => {
            shared.results.put(&key, Arc::from(body.as_str()));
            persist(shared, &key, &body);
            Ok((body, "miss"))
        }
        Err(message) => Err((500, message)),
    }
}

/// `POST /v1/grids` on a lone backend: every requested experiment served
/// through the same cached-execute core as `/v1/experiments`, documents
/// concatenated in request order. This is the reference the gateway's
/// scatter-gather response must match byte for byte.
fn serve_grid(shared: &Shared, body: &[u8]) -> Routed {
    let text = match std::str::from_utf8(body) {
        Ok(text) => text,
        Err(_) => {
            let body = Json::object()
                .field("error", "body is not UTF-8")
                .to_string();
            return Routed {
                response: Response::json(400, body),
                cache: "-",
                close: false,
            };
        }
    };
    let request = match mds_bench::grid::GridRequest::from_body(text) {
        Ok(request) => request,
        Err(message) => {
            let body = Json::object().field("error", message).to_string();
            return Routed {
                response: Response::json(400, body),
                cache: "-",
                close: false,
            };
        }
    };
    let mut out = String::new();
    let mut all_hit = true;
    for id in &request.experiments {
        let sub = ExperimentRequest {
            experiment: id.clone(),
            scale: request.scale,
            fresh: request.fresh,
        };
        match experiment_body(shared, &sub) {
            Ok((body, cache)) => {
                all_hit &= cache == "hit";
                out.push_str(&body);
            }
            Err((status, message)) => {
                let body = Json::object().field("error", message).to_string();
                return Routed {
                    response: Response::json(status, body),
                    cache: "miss",
                    close: false,
                };
            }
        }
    }
    Routed {
        response: Response::json(200, out),
        cache: if all_hit { "hit" } else { "miss" },
        close: false,
    }
}

/// `POST /v1/cells`: one wire-encoded grid job, executed on the shared
/// runner. Intra-cluster plumbing for scatter-gather grid execution —
/// not a public surface.
fn serve_cell(shared: &Shared, body: &[u8]) -> Routed {
    match shared.service.execute_cell(body) {
        Ok(body) => Routed {
            response: Response::json(200, body),
            cache: "-",
            close: false,
        },
        Err((status, message)) => Routed {
            response: Response::json(status, Json::object().field("error", message).to_string()),
            cache: "-",
            close: false,
        },
    }
}

/// Appends a freshly computed (or imported) body to the durable store,
/// if one is attached. Deduplicated against the stored value: recomputes
/// of an already-persisted key (`fresh:true` benchmarking, handoff
/// replays) must not grow the log or pay an fsync per request. Append
/// failures are logged and counted but never fail the response — losing
/// durability is strictly better than losing the request.
fn persist(shared: &Shared, key: &str, body: &str) {
    let Some(store) = &shared.store else {
        return;
    };
    if store.get(key).as_deref() == Some(body) {
        return;
    }
    if let Err(e) = store.append(key, body) {
        shared.log.event(
            Json::object()
                .field("evt", "store_append_error")
                .field("key", key)
                .field("error", e.to_string()),
        );
    }
}

/// `POST /v1/cache`: bulk-imports entries into the result cache (and the
/// store, when attached). An epoch mismatch is a `409` — a peer from a
/// different build (or with different WDL registrations) must never
/// launder its bytes into this process's cache.
fn fill_cache(shared: &Shared, body: &[u8]) -> Response {
    let (epoch, entries) = match persist::parse(body) {
        Ok(parsed) => parsed,
        Err(message) => {
            return Response::json(400, Json::object().field("error", message).to_string())
        }
    };
    if epoch != shared.epoch {
        let body = Json::object()
            .field(
                "error",
                format!("epoch mismatch: ours {}, offered {epoch}", shared.epoch),
            )
            .to_string();
        return Response::json(409, body);
    }
    let accepted = entries.len();
    for (key, value) in entries {
        shared.results.put(&key, Arc::from(value.as_str()));
        persist(shared, &key, &value);
    }
    Response::json(
        200,
        Json::object()
            .field("accepted", accepted as u64)
            .to_string(),
    )
}
