//! The event-driven I/O core: readiness loop, connection state machines,
//! and deadline timers.
//!
//! The thread-per-connection server caps concurrent connections at pool
//! size — the PR-5 keep-alive slicing made that survivable, not right.
//! This module replaces blocking-per-connection with one reactor thread
//! that owns every connection fd:
//!
//! - [`poller`] — readiness collection behind the [`Poller`] trait: a raw
//!   `epoll` implementation on Linux ([`poller::EpollPoller`]) and a
//!   deterministic in-memory [`poller::FakePoller`] so every state-machine
//!   path is testable without sockets. The split follows the
//!   time-agnostic, caller-driven scheduler discipline: the loop asks
//!   "what is ready?" and is handed an explicit answer it can replay.
//! - [`timer`] — a hashed timer wheel with lazy cancellation for
//!   per-connection header/idle/write deadlines; time is a caller-supplied
//!   millisecond clock, never read inside the wheel.
//! - [`conn`] — the per-connection non-blocking state machine
//!   (idle → reading → executing → writing) over the incremental
//!   [`RequestReader`](crate::http::RequestReader) parser.
//! - [`reactor`] — the event loop binding them together with a worker
//!   pool: heavy requests are queued to workers, I/O never blocks a
//!   worker, and completions flow back over a wake channel.
//!
//! The only `unsafe` in the crate lives in [`sys`], a ~60-line epoll
//! syscall shim.

pub mod conn;
pub mod poller;
pub mod reactor;
#[cfg(target_os = "linux")]
mod sys;
pub mod timer;

pub use poller::{Event, Interest, Poller};

/// Which connection engine a server runs.
///
/// `Epoll` is the default on Linux; `Threads` keeps the previous
/// thread-per-connection path available for one release as an escape
/// hatch (`--io threads`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// One reactor thread multiplexing every connection over `epoll`;
    /// workers execute only ready (fully read) requests.
    Epoll,
    /// Acceptor + blocking worker pool, one connection held per worker.
    Threads,
}

impl Default for IoModel {
    fn default() -> IoModel {
        if cfg!(target_os = "linux") {
            IoModel::Epoll
        } else {
            IoModel::Threads
        }
    }
}

impl IoModel {
    /// The model that will actually run: `Epoll` falls back to `Threads`
    /// on platforms without an epoll implementation.
    pub fn effective(self) -> IoModel {
        if cfg!(target_os = "linux") {
            self
        } else {
            IoModel::Threads
        }
    }

    /// The flag spelling (`epoll` / `threads`).
    pub fn as_str(self) -> &'static str {
        match self {
            IoModel::Epoll => "epoll",
            IoModel::Threads => "threads",
        }
    }
}

impl std::str::FromStr for IoModel {
    type Err = String;

    fn from_str(s: &str) -> Result<IoModel, String> {
        match s {
            "epoll" => Ok(IoModel::Epoll),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!("unknown io model '{other}' (epoll|threads)")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_model_parses_both_spellings_and_rejects_junk() {
        assert_eq!("epoll".parse::<IoModel>().unwrap(), IoModel::Epoll);
        assert_eq!("threads".parse::<IoModel>().unwrap(), IoModel::Threads);
        assert!("kqueue".parse::<IoModel>().is_err());
        assert_eq!(IoModel::Epoll.as_str(), "epoll");
        assert_eq!(IoModel::Threads.as_str(), "threads");
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_is_the_default_and_effective_on_linux() {
        assert_eq!(IoModel::default(), IoModel::Epoll);
        assert_eq!(IoModel::Epoll.effective(), IoModel::Epoll);
    }
}
