//! A hashed timer wheel with lazy cancellation for connection deadlines.
//!
//! Time never advances inside the wheel: the caller supplies a
//! monotonic millisecond clock to [`TimerWheel::advance`], the same
//! caller-driven discipline as the poller fake, so deadline behavior is
//! fully deterministic under test.
//!
//! Cancellation is lazy: deadlines are invalidated by bumping a
//! per-connection generation counter, and stale entries are discarded
//! when their slot is swept instead of being searched for eagerly. Arming
//! is O(1), firing amortizes over the sweep, and the wheel never holds a
//! reference into connection state.

/// Which deadline class fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerKind {
    /// No request bytes for the keep-alive idle window: close silently.
    Idle,
    /// A request started arriving but did not complete its head in time:
    /// answer `408` and close (the slow-loris guard).
    Read,
    /// A response flush made no progress for the write window: close.
    Write,
}

impl TimerKind {
    /// Stable index for per-kind generation arrays.
    pub fn index(self) -> usize {
        match self {
            TimerKind::Idle => 0,
            TimerKind::Read => 1,
            TimerKind::Write => 2,
        }
    }
}

/// An armed deadline as reported back by [`TimerWheel::advance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Expired {
    /// The connection token the deadline was armed for.
    pub token: u64,
    /// The deadline class.
    pub kind: TimerKind,
    /// The arming generation; stale if the owner has re-armed since.
    pub generation: u64,
    /// Absolute due time in caller milliseconds.
    pub due_ms: u64,
}

#[derive(Debug, Clone, Copy)]
struct Entry {
    token: u64,
    kind: TimerKind,
    generation: u64,
    due_tick: u64,
}

/// The wheel: `slots` buckets of `tick_ms` granularity each.
///
/// Entries further out than one revolution stay bucketed and are
/// re-examined each revolution — correct, just re-scanned. Deadlines
/// fire at the first tick at or after their due time, so a deadline can
/// fire up to `tick_ms` late but never early.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    tick_ms: u64,
    current_tick: u64,
    armed: usize,
    fired: u64,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `tick_ms` each (both clamped to at
    /// least 1).
    pub fn new(slots: usize, tick_ms: u64) -> TimerWheel {
        TimerWheel {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            tick_ms: tick_ms.max(1),
            current_tick: 0,
            armed: 0,
            fired: 0,
        }
    }

    /// The sweep granularity in milliseconds.
    pub fn tick_ms(&self) -> u64 {
        self.tick_ms
    }

    /// How many entries are armed (including lazily cancelled ones not
    /// yet swept).
    pub fn armed(&self) -> usize {
        self.armed
    }

    /// Total deadlines delivered by [`TimerWheel::advance`] over the
    /// wheel's lifetime (the `mds_io_timer_fires_total` counter; stale
    /// generations are counted by the caller's validation, not here).
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Arms a deadline `delay_ms` from `now_ms` for (`token`, `kind`,
    /// `generation`). Cancellation is by generation: re-arm with a bumped
    /// generation and the old entry dies stale at sweep time.
    pub fn arm(
        &mut self,
        token: u64,
        kind: TimerKind,
        generation: u64,
        now_ms: u64,
        delay_ms: u64,
    ) {
        // Never due at the current tick: a zero delay still waits one tick.
        let due_tick = (now_ms + delay_ms)
            .div_ceil(self.tick_ms)
            .max(self.current_tick + 1);
        let slot = (due_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            token,
            kind,
            generation,
            due_tick,
        });
        self.armed += 1;
    }

    /// Sweeps every tick between the last advance and `now_ms`,
    /// collecting due entries into `out`. The caller validates each
    /// [`Expired`] against its connection's current generation.
    pub fn advance(&mut self, now_ms: u64, out: &mut Vec<Expired>) {
        let new_tick = now_ms / self.tick_ms;
        if new_tick <= self.current_tick {
            return;
        }
        let slots = self.slots.len() as u64;
        // A jump past a full revolution visits each slot exactly once.
        let first = self.current_tick + 1;
        let last = if new_tick - first >= slots {
            first + slots - 1
        } else {
            new_tick
        };
        for tick in first..=last {
            let slot = (tick % slots) as usize;
            let bucket = &mut self.slots[slot];
            let mut i = 0;
            while i < bucket.len() {
                if bucket[i].due_tick <= new_tick {
                    let entry = bucket.swap_remove(i);
                    self.armed -= 1;
                    self.fired += 1;
                    out.push(Expired {
                        token: entry.token,
                        kind: entry.kind,
                        generation: entry.generation,
                        due_ms: entry.due_tick * self.tick_ms,
                    });
                } else {
                    i += 1;
                }
            }
        }
        self.current_tick = new_tick;
    }

    /// How long until the next sweep could deliver something: one tick
    /// when anything is armed, `None` when the wheel is empty.
    pub fn next_due_ms(&self) -> Option<u64> {
        (self.armed > 0).then_some(self.tick_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deadlines_fire_at_or_after_their_due_time_never_early() {
        let mut wheel = TimerWheel::new(8, 10);
        wheel.arm(1, TimerKind::Idle, 0, 0, 35);
        let mut out = Vec::new();
        wheel.advance(30, &mut out);
        assert!(out.is_empty(), "due at 35ms, must not fire at 30ms");
        wheel.advance(40, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 1);
        assert_eq!(out[0].kind, TimerKind::Idle);
        assert_eq!(wheel.armed(), 0);
        assert_eq!(wheel.fired(), 1);
    }

    #[test]
    fn entries_beyond_one_revolution_wait_their_full_delay() {
        // 4 slots x 10ms = 40ms revolution; a 95ms deadline must not fire
        // when its slot is first swept at ~15ms.
        let mut wheel = TimerWheel::new(4, 10);
        wheel.arm(9, TimerKind::Read, 0, 0, 95);
        let mut out = Vec::new();
        wheel.advance(90, &mut out);
        assert!(out.is_empty(), "fired {out:?} before due");
        wheel.advance(100, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 9);
    }

    #[test]
    fn lazy_cancellation_is_observable_through_generations() {
        let mut wheel = TimerWheel::new(8, 10);
        wheel.arm(4, TimerKind::Idle, 7, 0, 20);
        // The owner re-arms with a newer generation (cancelling gen 7).
        wheel.arm(4, TimerKind::Idle, 8, 0, 50);
        let mut out = Vec::new();
        wheel.advance(30, &mut out);
        // The stale entry still surfaces; the caller discards it because
        // the connection's live generation is 8.
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].generation, 7);
        out.clear();
        wheel.advance(60, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].generation, 8);
    }

    #[test]
    fn a_large_time_jump_sweeps_every_slot_once() {
        let mut wheel = TimerWheel::new(4, 10);
        for token in 0..8 {
            wheel.arm(token, TimerKind::Write, 0, 0, 5 + token * 7);
        }
        let mut out = Vec::new();
        wheel.advance(10_000, &mut out);
        assert_eq!(out.len(), 8, "all deadlines fire across the jump");
        assert_eq!(wheel.armed(), 0);
    }

    #[test]
    fn zero_delay_fires_on_the_next_tick_not_the_current_one() {
        let mut wheel = TimerWheel::new(8, 10);
        let mut out = Vec::new();
        wheel.advance(25, &mut out); // current tick 2
        wheel.arm(3, TimerKind::Idle, 0, 25, 0);
        wheel.advance(25, &mut out);
        assert!(out.is_empty());
        wheel.advance(35, &mut out);
        assert_eq!(out.len(), 1);
        assert!(wheel.next_due_ms().is_none());
    }
}
