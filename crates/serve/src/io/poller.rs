//! Readiness collection behind a trait: real `epoll` and a deterministic
//! in-memory fake.
//!
//! The reactor never talks to the kernel directly; it asks a [`Poller`]
//! which registered tokens are ready. That seam is what makes the
//! connection state machines testable byte-for-byte without sockets: the
//! fake is scripted with explicit readiness events and records every
//! interest change for assertions.

use std::io;
use std::time::Duration;

/// What a registration wants to be woken for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only — the resting state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only — flushing a response, input paused.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Neither — parked (a request is executing on a worker).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness event delivered by [`Poller::wait`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Bytes (or EOF) are available to read.
    pub readable: bool,
    /// The socket send buffer has room.
    pub writable: bool,
    /// The peer shut down its write side (`EPOLLRDHUP`): no more request
    /// bytes will arrive, but the peer may still be reading — a response
    /// in flight must be finished, not aborted. Delivered only while the
    /// registration has read interest.
    pub read_closed: bool,
    /// Error or full hangup (`EPOLLERR`/`EPOLLHUP`): the connection is
    /// dead in both directions.
    pub hangup: bool,
}

/// Readiness collection over a set of registered fds.
///
/// Level-triggered semantics: a ready fd keeps reporting ready until the
/// condition is consumed, so a handler that stops at `WouldBlock` never
/// misses data.
pub trait Poller: Send {
    /// Starts watching `fd` with the given interest.
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;
    /// Changes the interest (and token) of a watched fd.
    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()>;
    /// Stops watching `fd`.
    fn deregister(&mut self, fd: i32) -> io::Result<()>;
    /// Blocks until at least one event is ready or `timeout` elapses
    /// (`None` blocks indefinitely), appending events to `out`.
    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()>;
    /// How many fds are currently registered (the `mds_io_registered_fds`
    /// gauge).
    fn registered(&self) -> usize;
}

/// The real thing: raw `epoll` on Linux.
#[cfg(target_os = "linux")]
pub use epoll::EpollPoller;

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Interest, Poller};
    use crate::io::sys;
    use std::io;
    use std::os::fd::{AsRawFd, OwnedFd};
    use std::time::Duration;

    /// A [`Poller`] over one `epoll` instance (level-triggered).
    pub struct EpollPoller {
        epfd: OwnedFd,
        registered: usize,
        buf: Vec<sys::EpollEvent>,
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = 0;
        if interest.readable {
            // RDHUP rides with read interest only: while a connection is
            // executing or flushing a response, the peer half-closing its
            // send side is not actionable — subscribing it there would
            // spin the level-triggered loop and tempt the core to abort a
            // write the peer is still waiting for. (ERR/HUP are always
            // reported regardless of the mask.)
            events |= sys::EPOLLIN | sys::EPOLLRDHUP;
        }
        if interest.writable {
            events |= sys::EPOLLOUT;
        }
        events
    }

    impl EpollPoller {
        /// Creates the epoll instance.
        pub fn new() -> io::Result<EpollPoller> {
            Ok(EpollPoller {
                epfd: sys::create()?,
                registered: 0,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; 256],
            })
        }
    }

    impl Poller for EpollPoller {
        fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd.as_raw_fd(),
                sys::EPOLL_CTL_ADD,
                fd,
                mask(interest),
                token,
            )?;
            self.registered += 1;
            Ok(())
        }

        fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
            sys::ctl(
                self.epfd.as_raw_fd(),
                sys::EPOLL_CTL_MOD,
                fd,
                mask(interest),
                token,
            )
        }

        fn deregister(&mut self, fd: i32) -> io::Result<()> {
            sys::ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, 0, 0)?;
            self.registered = self.registered.saturating_sub(1);
            Ok(())
        }

        fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
            let timeout_ms = match timeout {
                // Round up so a 0.4ms deadline doesn't spin at timeout 0.
                Some(t) => t.as_micros().div_ceil(1000).min(i32::MAX as u128) as i32,
                None => -1,
            };
            let n = sys::wait(self.epfd.as_raw_fd(), &mut self.buf, timeout_ms)?;
            for event in &self.buf[..n] {
                let bits = event.events;
                out.push(Event {
                    token: event.data,
                    readable: bits & sys::EPOLLIN != 0,
                    writable: bits & sys::EPOLLOUT != 0,
                    read_closed: bits & sys::EPOLLRDHUP != 0,
                    hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
                });
            }
            if n == self.buf.len() {
                // Saturated the event buffer: grow so a flood of ready
                // connections is drained in few syscalls.
                let len = self.buf.len() * 2;
                self.buf.resize(len, sys::EpollEvent { events: 0, data: 0 });
            }
            Ok(())
        }

        fn registered(&self) -> usize {
            self.registered
        }
    }
}

/// A scripted, deterministic [`Poller`] for state-machine tests.
///
/// Tests inject readiness with [`FakePoller::make_ready`]; `wait` drains
/// injected events that match current registrations and interest, never
/// blocking. Every `register`/`modify`/`deregister` is recorded so tests
/// can assert interest transitions (e.g. "input paused while executing").
#[derive(Default)]
pub struct FakePoller {
    registrations: std::collections::HashMap<i32, (u64, Interest)>,
    ready: Vec<(i32, Event)>,
    /// Chronological log of interest changes: `(op, fd, interest)`.
    pub log: Vec<(&'static str, i32, Interest)>,
    /// Timeouts passed to `wait`, for deadline-scheduling assertions.
    pub waits: Vec<Option<Duration>>,
}

impl FakePoller {
    /// An empty fake.
    pub fn new() -> FakePoller {
        FakePoller::default()
    }

    /// Scripts a readiness event for `fd`. Delivered by the next `wait`
    /// if the fd is registered with a matching interest; hangup events
    /// are always delivered.
    pub fn make_ready(&mut self, fd: i32, readable: bool, writable: bool, hangup: bool) {
        self.ready.push((
            fd,
            Event {
                token: 0, // filled from the registration at delivery
                readable,
                writable,
                read_closed: false,
                hangup,
            },
        ));
    }

    /// Scripts a peer half-close (`EPOLLRDHUP`): held until the fd has
    /// read interest, like the real mask, so a connection mid-execute or
    /// mid-flush sees it only once it returns to reading.
    pub fn make_half_closed(&mut self, fd: i32) {
        self.ready.push((
            fd,
            Event {
                token: 0,
                readable: false,
                writable: false,
                read_closed: true,
                hangup: false,
            },
        ));
    }

    /// The interest currently registered for `fd`, if any.
    pub fn interest(&self, fd: i32) -> Option<Interest> {
        self.registrations.get(&fd).map(|(_, i)| *i)
    }
}

impl Poller for FakePoller {
    fn register(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        if self.registrations.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.registrations.insert(fd, (token, interest));
        self.log.push(("register", fd, interest));
        Ok(())
    }

    fn modify(&mut self, fd: i32, token: u64, interest: Interest) -> io::Result<()> {
        match self.registrations.get_mut(&fd) {
            Some(entry) => {
                *entry = (token, interest);
                self.log.push(("modify", fd, interest));
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&mut self, fd: i32) -> io::Result<()> {
        match self.registrations.remove(&fd) {
            Some(_) => {
                self.log.push(("deregister", fd, Interest::NONE));
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        self.waits.push(timeout);
        let registrations = &self.registrations;
        // Level-triggered: undelivered events stay queued.
        let mut kept = Vec::new();
        for (fd, mut event) in self.ready.drain(..) {
            // A deregistered fd's stale events are dropped outright.
            if let Some(&(token, interest)) = registrations.get(&fd) {
                let wanted = (event.readable && interest.readable)
                    || (event.writable && interest.writable)
                    || (event.read_closed && interest.readable)
                    || event.hangup;
                if wanted {
                    event.token = token;
                    event.readable &= interest.readable;
                    event.writable &= interest.writable;
                    event.read_closed &= interest.readable;
                    out.push(event);
                } else {
                    kept.push((fd, event));
                }
            }
        }
        self.ready = kept;
        Ok(())
    }

    fn registered(&self) -> usize {
        self.registrations.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_delivers_only_matching_interest_and_keeps_the_rest() {
        let mut poller = FakePoller::new();
        poller.register(5, 50, Interest::READ).unwrap();
        poller.make_ready(5, false, true, false); // writable, not wanted
        let mut out = Vec::new();
        poller.wait(None, &mut out).unwrap();
        assert!(out.is_empty(), "writable event must be held back");
        poller.modify(5, 50, Interest::WRITE).unwrap();
        poller.wait(None, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 50);
        assert!(out[0].writable);
    }

    #[test]
    fn fake_drops_events_for_deregistered_fds() {
        let mut poller = FakePoller::new();
        poller.register(3, 30, Interest::READ).unwrap();
        poller.make_ready(3, true, false, false);
        poller.deregister(3).unwrap();
        let mut out = Vec::new();
        poller.wait(None, &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(poller.registered(), 0);
    }

    #[test]
    fn fake_always_delivers_hangups() {
        let mut poller = FakePoller::new();
        poller.register(7, 70, Interest::NONE).unwrap();
        poller.make_ready(7, false, false, true);
        let mut out = Vec::new();
        poller.wait(None, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out[0].hangup);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_roundtrips_a_pipe_readiness_event() {
        use std::io::Write;
        use std::os::fd::AsRawFd;
        // A socketpair via UnixStream: write one byte, expect readable.
        let (mut a, b) = std::os::unix::net::UnixStream::pair().unwrap();
        b.set_nonblocking(true).unwrap();
        let mut poller = EpollPoller::new().unwrap();
        poller.register(b.as_raw_fd(), 42, Interest::READ).unwrap();
        let mut out = Vec::new();
        poller
            .wait(Some(Duration::from_millis(10)), &mut out)
            .unwrap();
        assert!(out.is_empty(), "nothing written yet");
        a.write_all(b"x").unwrap();
        poller
            .wait(Some(Duration::from_millis(1000)), &mut out)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].token, 42);
        assert!(out[0].readable);
        poller.deregister(b.as_raw_fd()).unwrap();
        assert_eq!(poller.registered(), 0);
    }
}
