//! The event loop: one reactor thread owning every connection fd, a
//! worker pool executing only ready work, and the [`App`] seam that lets
//! `mds-serve` and the `mds-cluster` gateway share the engine.
//!
//! Division of labor:
//!
//! - The **reactor thread** accepts, reads, parses, writes, and answers
//!   cheap routes inline (probes, metrics, cache hits). It never blocks
//!   on a socket and never executes a simulation.
//! - **Workers** pop fully-read requests from a bounded queue, execute
//!   them ([`App::execute`] — experiment simulation, upstream
//!   forwarding), and push the finished response back over a completion
//!   list plus a wake byte. A full queue sheds the *request* with a
//!   `503` + `Retry-After` inline — admission control moves from
//!   connection-accept time (the threaded model's only choke point) to
//!   request-dispatch time, which is what lets 10k idle keep-alive
//!   connections cost nothing.
//!
//! [`Core`] holds all of the per-connection machinery generically over
//! [`Poller`] and [`Stream`], so the deterministic suite drives it with
//! [`FakePoller`](crate::io::poller::FakePoller) +
//! [`FakeStream`](crate::io::conn::FakeStream) — scripted readiness, no
//! sockets — while [`Reactor`] runs the same code over `epoll` and
//! `TcpStream`.

use crate::http::{Limits, ReadError, Request, Response};
use crate::io::conn::{Conn, ConnState, Ctx, Stream, Verdict};
use crate::io::poller::{Event, Interest, Poller};
use crate::io::timer::{Expired, TimerKind, TimerWheel};
use crate::queue::Bounded;
use mds_harness::json::Json;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Token reserved for the listening socket.
pub const LISTENER_TOKEN: u64 = u64::MAX;
/// Token reserved for the wake pipe.
pub const WAKE_TOKEN: u64 = u64::MAX - 1;

/// How the app wants a parsed request handled.
pub enum Dispatch {
    /// Answered by the reactor thread, right now. Only for routes that
    /// complete in microseconds — anything slower stalls every
    /// connection.
    Inline(Outcome),
    /// Queue for the worker pool ([`App::execute`]).
    Defer,
}

/// A finished response plus its bookkeeping labels.
pub struct Outcome {
    /// The response to send.
    pub response: Response,
    /// Result-cache disposition for the access log (`hit`/`miss`/`-`).
    pub cache: &'static str,
    /// Close the connection after this response regardless of keep-alive
    /// negotiation (shutdown acknowledgements, sheds).
    pub close: bool,
}

/// The application seam between the event core and a server.
///
/// `mds-serve` and the cluster gateway each implement this once; the
/// reactor owns all socket mechanics.
pub trait App: Send + Sync + 'static {
    /// Routes a parsed request: answer inline or defer to the pool.
    ///
    /// An `Inline` return is self-accounting: the app counts and logs the
    /// outcome before returning it (it holds the timing); the reactor
    /// calls [`App::on_response`] only for deferred work.
    fn dispatch(&self, request: &Request) -> Dispatch;
    /// Executes a deferred request on a worker thread.
    fn execute(&self, request: &Request) -> Outcome;
    /// A connection was accepted.
    fn on_connection(&self);
    /// A deferred response was produced on a worker: count + log.
    fn on_response(
        &self,
        request: &Request,
        outcome: &Outcome,
        queue_wait_us: u64,
        compute_us: u64,
    );
    /// The work queue (or connection table) is full: count the rejection
    /// and produce the `503` + `Retry-After` response.
    fn shed(&self, queue_len: usize) -> Response;
    /// A request failed to parse or timed out mid-head; `status` is the
    /// error response code (`400`/`408`/`413`).
    fn on_request_error(&self, status: u16);
    /// Whether graceful drain has been requested.
    fn draining(&self) -> bool;
}

/// A fully-read request waiting for a worker.
pub struct Job {
    /// The connection token the response must return to.
    pub token: u64,
    /// The parsed request.
    pub request: Request,
    /// When the job was queued (queue-wait accounting).
    pub enqueued: Instant,
}

/// A finished deferred response on its way back to the reactor.
pub struct Completion {
    /// The connection token from the originating [`Job`].
    pub token: u64,
    /// The response to flush.
    pub response: Response,
    /// [`Outcome::close`] carried through.
    pub close: bool,
}

/// Counters exported as `mds_io_*` gauges.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Fds currently registered with the poller (connections + listener
    /// + wake pipe).
    pub registered_fds: AtomicU64,
    /// Readiness events delivered by the most recent poll.
    pub ready_depth: AtomicU64,
    /// Deadlines fired (and validated) over the reactor's lifetime.
    pub timer_fires: AtomicU64,
}

/// Reactor tunables, a subset of the server config.
#[derive(Debug, Clone)]
pub struct Config {
    /// Request head/body limits.
    pub limits: Limits,
    /// Keep-alive request cap per connection.
    pub max_requests: usize,
    /// Keep-alive idle window, and the per-request body deadline.
    pub read_timeout: Duration,
    /// Total first-byte-to-complete-head deadline (the slow-loris guard).
    pub header_timeout: Duration,
    /// Total flush deadline for one response backlog.
    pub write_timeout: Duration,
    /// Hard cap on concurrent connections; beyond it accepts are shed
    /// with `503` immediately.
    pub max_connections: usize,
}

/// Deadline class derived from the connection's current phase. Distinct
/// from [`TimerKind`] because head and body phases share a wheel kind but
/// differ in duration and in what expiry means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Want {
    Idle,
    Head,
    Body,
    Write,
    Parked,
}

struct Slot<S> {
    conn: Conn<S>,
    generation: u32,
    timer_generation: u64,
    want: Want,
    interest: Interest,
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Slot generations come from a process-wide counter so a token minted
/// for a closed connection can never validate against the slot's next
/// occupant, even across reactor instances.
fn next_generation() -> u32 {
    use std::sync::atomic::AtomicU32;
    static NEXT: AtomicU32 = AtomicU32::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// The connection engine, generic over poller and stream so the entire
/// state space is drivable from deterministic tests.
pub struct Core<P: Poller, S: Stream> {
    poller: P,
    slots: Vec<Option<Slot<S>>>,
    free: Vec<usize>,
    live: usize,
    wheel: TimerWheel,
    jobs: Arc<Bounded<Job>>,
    completions: Arc<Mutex<Vec<Completion>>>,
    app: Arc<dyn App>,
    config: Config,
    stats: Arc<IoStats>,
    draining: bool,
    expired: Vec<Expired>,
}

fn token_of(index: usize, generation: u32) -> u64 {
    (index as u64) | ((generation as u64) << 32)
}

fn index_of(token: u64) -> (usize, u32) {
    ((token & 0xffff_ffff) as usize, (token >> 32) as u32)
}

impl<P: Poller, S: Stream> Core<P, S> {
    /// A core over `poller` with an empty connection table.
    pub fn new(
        poller: P,
        app: Arc<dyn App>,
        config: Config,
        jobs: Arc<Bounded<Job>>,
        completions: Arc<Mutex<Vec<Completion>>>,
        stats: Arc<IoStats>,
    ) -> Core<P, S> {
        Core {
            poller,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            // 16ms ticks x 512 slots ≈ 8s per revolution: one revolution
            // covers the default 5s deadlines without re-scans.
            wheel: TimerWheel::new(512, 16),
            jobs,
            completions,
            app,
            config,
            stats,
            draining: false,
            expired: Vec::new(),
        }
    }

    /// Registers a non-connection fd (listener, wake pipe) for readable
    /// readiness.
    ///
    /// # Errors
    ///
    /// Poller registration failures.
    pub fn register_external(&mut self, fd: i32, token: u64) -> io::Result<()> {
        self.poller.register(fd, token, Interest::READ)
    }

    /// Deregisters a non-connection fd (the listener, at drain start).
    pub fn deregister_external(&mut self, fd: i32) {
        let _ = self.poller.deregister(fd);
    }

    /// Polls for readiness events (see [`Poller::wait`]).
    ///
    /// # Errors
    ///
    /// Poller failures.
    pub fn wait(&mut self, timeout: Option<Duration>, out: &mut Vec<Event>) -> io::Result<()> {
        self.poller.wait(timeout, out)?;
        self.stats
            .ready_depth
            .store(out.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Live connections.
    pub fn conns(&self) -> usize {
        self.live
    }

    /// Whether drain has begun.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// How long the event loop may sleep: the timer tick when any
    /// deadline is armed, otherwise forever (a wake byte or readiness
    /// interrupts either way).
    pub fn next_timeout(&self) -> Option<Duration> {
        self.wheel.next_due_ms().map(Duration::from_millis)
    }

    /// Accepts a new connection: registers it, arms its idle deadline,
    /// and — beyond `max_connections` — sheds it with an immediate `503`.
    pub fn accept(&mut self, stream: S, now_ms: u64) {
        self.app.on_connection();
        if self.live >= self.config.max_connections {
            let mut stream = stream;
            let response = self.app.shed(self.jobs.len());
            let _ = response.write_to(&mut stream, false);
            return;
        }
        let mut conn = Conn::new(stream);
        let fd = conn.stream_mut().raw_fd();
        let index = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.slots.len() - 1
        });
        let generation = next_generation();
        let token = token_of(index, generation);
        if self.poller.register(fd, token, Interest::READ).is_err() {
            self.free.push(index);
            return;
        }
        self.wheel.arm(
            token,
            TimerKind::Idle,
            1,
            now_ms,
            self.config.read_timeout.as_millis() as u64,
        );
        self.slots[index] = Some(Slot {
            conn,
            generation,
            timer_generation: 1,
            want: Want::Idle,
            interest: Interest::READ,
        });
        self.live += 1;
        self.publish_registered();
    }

    /// Handles one readiness event for a connection token.
    pub fn on_event(&mut self, event: Event, now_ms: u64) {
        let (index, generation) = index_of(event.token);
        if !self.is_live(index, generation) {
            return;
        }
        if event.writable {
            self.drive_write(index, now_ms);
        }
        if event.readable {
            self.drive_read(index, now_ms);
        }
        if event.read_closed && !event.readable {
            // The peer shut down its write side but may still be reading:
            // let the read path observe the EOF (silent close at idle,
            // `400` mid-request). Responses in flight are untouched —
            // read_closed is only delivered while read interest is on, so
            // an executing or flushing connection finishes its write
            // first and discovers the EOF when it next reads.
            if self.is_live(index, generation) {
                self.drive_read(index, now_ms);
            }
        }
        if event.hangup && !event.readable {
            // Error or full hangup with nothing readable: the peer is
            // gone in both directions.
            if self.is_live(index, generation) {
                if let Some(slot) = self.slots[index].as_mut() {
                    slot.conn.close();
                }
                self.sync(index, now_ms);
            }
        }
    }

    fn is_live(&self, index: usize, generation: u32) -> bool {
        self.slots
            .get(index)
            .and_then(Option::as_ref)
            .is_some_and(|slot| slot.generation == generation)
    }

    /// Drives the read side of one connection as far as it will go.
    pub fn drive_read(&mut self, index: usize, now_ms: u64) {
        let draining = self.draining || self.app.draining();
        let ctx = Ctx {
            limits: self.config.limits,
            max_requests: self.config.max_requests,
            draining,
        };
        let app = Arc::clone(&self.app);
        let jobs = Arc::clone(&self.jobs);
        let result = {
            let Some(slot) = self.slots.get_mut(index).and_then(Option::as_mut) else {
                return;
            };
            let token = token_of(index, slot.generation);
            let mut sink = |request: Request, _keep_alive: bool| -> Verdict {
                match app.dispatch(&request) {
                    Dispatch::Inline(outcome) => {
                        if outcome.close {
                            Verdict::RespondAndClose(outcome.response)
                        } else {
                            Verdict::Respond(outcome.response)
                        }
                    }
                    Dispatch::Defer => {
                        let job = Job {
                            token,
                            request,
                            enqueued: Instant::now(),
                        };
                        match jobs.push(job) {
                            Ok(()) => Verdict::Deferred,
                            Err(_rejected) => Verdict::RespondAndClose(app.shed(jobs.len())),
                        }
                    }
                }
            };
            slot.conn.on_readable(&ctx, &mut sink)
        };
        if let Err(e) = result {
            self.fail(index, &e);
        }
        self.sync(index, now_ms);
    }

    fn drive_write(&mut self, index: usize, now_ms: u64) {
        let failed = {
            let Some(slot) = self.slots.get_mut(index).and_then(Option::as_mut) else {
                return;
            };
            slot.conn.on_writable().is_err()
        };
        if failed {
            if let Some(slot) = self.slots[index].as_mut() {
                slot.conn.close();
            }
        }
        self.sync(index, now_ms);
        // A drained flush may unblock pipelined requests already buffered.
        if self
            .slots
            .get(index)
            .and_then(Option::as_ref)
            .is_some_and(|s| matches!(s.conn.state(), ConnState::Idle | ConnState::Reading))
        {
            self.drive_read(index, now_ms);
        }
    }

    /// Maps a terminal read error to the threaded path's behavior:
    /// protocol violations get an error response then close, transport
    /// conditions close silently.
    fn fail(&mut self, index: usize, error: &ReadError) {
        let status = match error {
            ReadError::Closed | ReadError::TimedOut | ReadError::Io(_) => {
                if let Some(slot) = self.slots[index].as_mut() {
                    slot.conn.close();
                }
                return;
            }
            ReadError::HeaderTimeout => 408,
            ReadError::HeadTooLarge | ReadError::BodyTooLarge => 413,
            ReadError::Malformed(_) => 400,
        };
        self.app.on_request_error(status);
        let body = Json::object().field("error", error.to_string()).to_string();
        let response = Response::json(status, body);
        if let Some(slot) = self.slots[index].as_mut() {
            if slot.conn.respond_error(&response).is_err() {
                slot.conn.close();
            }
        }
    }

    /// Applies all queued worker completions.
    pub fn apply_completions(&mut self, now_ms: u64) {
        let pending: Vec<Completion> = {
            let mut completions = lock(&self.completions);
            completions.drain(..).collect()
        };
        for completion in pending {
            let (index, generation) = index_of(completion.token);
            if !self.is_live(index, generation) {
                continue; // connection died while its request executed
            }
            let failed = {
                let slot = self.slots[index].as_mut().expect("liveness checked");
                slot.conn
                    .complete(&completion.response, completion.close)
                    .is_err()
            };
            if failed {
                if let Some(slot) = self.slots[index].as_mut() {
                    slot.conn.close();
                }
            }
            self.sync(index, now_ms);
            if self
                .slots
                .get(index)
                .and_then(Option::as_ref)
                .is_some_and(|s| matches!(s.conn.state(), ConnState::Idle | ConnState::Reading))
            {
                self.drive_read(index, now_ms);
            }
        }
    }

    /// Sweeps the timer wheel and acts on expired, still-valid deadlines.
    pub fn on_tick(&mut self, now_ms: u64) {
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.wheel.advance(now_ms, &mut expired);
        for deadline in &expired {
            let (index, generation) = index_of(deadline.token);
            let want = match self.slots.get(index).and_then(Option::as_ref) {
                Some(slot)
                    if slot.generation == generation
                        && slot.timer_generation == deadline.generation =>
                {
                    slot.want
                }
                _ => continue, // lazily cancelled
            };
            self.stats.timer_fires.fetch_add(1, Ordering::Relaxed);
            match want {
                // Idle keep-alive window expired: close silently, exactly
                // like the threaded path's read timeout between requests.
                Want::Idle => {
                    if let Some(slot) = self.slots[index].as_mut() {
                        slot.conn.close();
                    }
                }
                // The total header deadline: answer 408 and close (the
                // slow-loris guard — progress no longer resets the clock).
                Want::Head => self.fail(index, &ReadError::HeaderTimeout),
                // Body bytes stalled past the read window: the threaded
                // path treats this as a silent timeout; match it.
                Want::Body | Want::Write => {
                    if let Some(slot) = self.slots[index].as_mut() {
                        slot.conn.close();
                    }
                }
                Want::Parked => continue,
            }
            self.sync(index, now_ms);
        }
        self.expired = expired;
    }

    /// Begins graceful drain: stop arming idle work, close idle
    /// connections now, let reading/executing/writing connections finish
    /// their current request (each bounded by its deadline).
    pub fn begin_drain(&mut self, now_ms: u64) {
        if self.draining {
            return;
        }
        self.draining = true;
        for index in 0..self.slots.len() {
            let close = self.slots[index]
                .as_ref()
                .is_some_and(|slot| slot.conn.state() == ConnState::Idle);
            if close {
                if let Some(slot) = self.slots[index].as_mut() {
                    slot.conn.close();
                }
                self.sync(index, now_ms);
            }
        }
    }

    /// Recomputes poller interest, deadline, and liveness for one
    /// connection after any drive.
    fn sync(&mut self, index: usize, now_ms: u64) {
        let Some(slot) = self.slots.get_mut(index).and_then(Option::as_mut) else {
            return;
        };
        if self.draining && slot.conn.state() == ConnState::Idle {
            // Drain admits no further requests: a connection landing back
            // in the keep-alive gap has nothing left to wait for, and
            // leaving it would stall shutdown until its idle deadline.
            slot.conn.close();
        }
        if slot.conn.state() == ConnState::Closed {
            let fd = slot.conn.stream_mut().raw_fd();
            let _ = self.poller.deregister(fd);
            self.slots[index] = None;
            self.free.push(index);
            self.live -= 1;
            self.publish_registered();
            return;
        }
        let interest = slot.conn.interest();
        if interest != slot.interest {
            let fd = slot.conn.stream_mut().raw_fd();
            let token = token_of(index, slot.generation);
            if self.poller.modify(fd, token, interest).is_err() {
                slot.conn.close();
                let _ = self.poller.deregister(fd);
                self.slots[index] = None;
                self.free.push(index);
                self.live -= 1;
                self.publish_registered();
                return;
            }
            slot.interest = interest;
        }
        let want = match slot.conn.state() {
            ConnState::Idle => Want::Idle,
            ConnState::Reading => {
                if slot.conn.head_pending() {
                    Want::Head
                } else {
                    Want::Body
                }
            }
            ConnState::Executing => Want::Parked,
            ConnState::Writing => Want::Write,
            ConnState::Closed => unreachable!("handled above"),
        };
        if want != slot.want {
            slot.want = want;
            slot.timer_generation += 1;
            let delay = match want {
                Want::Idle | Want::Body => Some(self.config.read_timeout),
                Want::Head => Some(self.config.header_timeout),
                Want::Write => Some(self.config.write_timeout),
                Want::Parked => None,
            };
            if let Some(delay) = delay {
                let kind = match want {
                    Want::Idle => TimerKind::Idle,
                    Want::Head | Want::Body => TimerKind::Read,
                    _ => TimerKind::Write,
                };
                self.wheel.arm(
                    token_of(index, slot.generation),
                    kind,
                    slot.timer_generation,
                    now_ms,
                    delay.as_millis() as u64,
                );
            }
        }
    }

    fn publish_registered(&self) {
        self.stats
            .registered_fds
            .store(self.poller.registered() as u64, Ordering::Relaxed);
    }

    /// Test/diagnostic access to a connection's state.
    pub fn conn_state(&self, index: usize) -> Option<ConnState> {
        self.slots
            .get(index)
            .and_then(Option::as_ref)
            .map(|slot| slot.conn.state())
    }

    /// Test/diagnostic access to a connection's stream.
    pub fn conn_stream_mut(&mut self, index: usize) -> Option<&mut S> {
        self.slots
            .get_mut(index)
            .and_then(Option::as_mut)
            .map(|slot| slot.conn.stream_mut())
    }

    /// Test/diagnostic access to the poller.
    pub fn poller_mut(&mut self) -> &mut P {
        &mut self.poller
    }

    /// The token for a live slot index (tests).
    pub fn token_for(&self, index: usize) -> Option<u64> {
        self.slots
            .get(index)
            .and_then(Option::as_ref)
            .map(|slot| token_of(index, slot.generation))
    }
}

/// The running event engine for real sockets: reactor thread + workers.
#[cfg(target_os = "linux")]
pub struct Reactor {
    thread: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
    stop: Arc<std::sync::atomic::AtomicBool>,
    waker: Waker,
    jobs: Arc<Bounded<Job>>,
}

/// Wakes the reactor out of `epoll_wait` by writing one byte to the wake
/// pipe. Cloneable into workers and the server handle.
#[cfg(target_os = "linux")]
#[derive(Clone)]
pub struct Waker {
    tx: Arc<std::os::unix::net::UnixStream>,
}

#[cfg(target_os = "linux")]
impl Waker {
    /// Nudges the reactor; never blocks (a full pipe already guarantees a
    /// pending wake).
    pub fn wake(&self) {
        use std::io::Write;
        let _ = (&*self.tx).write(&[1u8]);
    }
}

#[cfg(target_os = "linux")]
impl Reactor {
    /// Spawns the reactor thread over `listener` plus `workers` pool
    /// threads with a job queue of `queue_depth`.
    ///
    /// # Errors
    ///
    /// Epoll/wake-pipe setup or thread-spawn failures.
    pub fn start(
        listener: std::net::TcpListener,
        app: Arc<dyn App>,
        config: Config,
        workers: usize,
        jobs: Arc<Bounded<Job>>,
        stats: Arc<IoStats>,
    ) -> io::Result<Reactor> {
        use crate::io::poller::EpollPoller;
        use std::os::fd::AsRawFd;

        listener.set_nonblocking(true)?;
        let (wake_rx, wake_tx) = std::os::unix::net::UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        let waker = Waker {
            tx: Arc::new(wake_tx),
        };
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));

        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let jobs = Arc::clone(&jobs);
            let app = Arc::clone(&app);
            let completions = Arc::clone(&completions);
            let waker = waker.clone();
            worker_handles.push(
                std::thread::Builder::new()
                    .name(format!("mds-io-worker-{i}"))
                    .spawn(move || {
                        while let Some(job) = jobs.pop() {
                            run_job(&*app, &completions, Some(&waker), job);
                        }
                    })
                    .map_err(io::Error::other)?,
            );
        }

        let thread = {
            let app = Arc::clone(&app);
            let jobs_for_loop = Arc::clone(&jobs);
            let stop = Arc::clone(&stop);
            let completions_for_loop = Arc::clone(&completions);
            std::thread::Builder::new()
                .name("mds-io-reactor".to_string())
                .spawn(move || {
                    let poller = match EpollPoller::new() {
                        Ok(poller) => poller,
                        Err(_) => return,
                    };
                    let mut core: Core<EpollPoller, std::net::TcpStream> = Core::new(
                        poller,
                        app,
                        config,
                        Arc::clone(&jobs_for_loop),
                        Arc::clone(&completions_for_loop),
                        stats,
                    );
                    let listener_fd = listener.as_raw_fd();
                    let wake_fd = wake_rx.as_raw_fd();
                    if core.register_external(listener_fd, LISTENER_TOKEN).is_err() {
                        return;
                    }
                    if core.register_external(wake_fd, WAKE_TOKEN).is_err() {
                        return;
                    }
                    let start = Instant::now();
                    let mut events: Vec<Event> = Vec::new();
                    let mut listener_open = true;
                    loop {
                        let now_ms = start.elapsed().as_millis() as u64;
                        // The app's drain signal (`/v1/shutdown`) opens the
                        // drain *window*: readiness flips to 503 and
                        // keep-alive is withdrawn, but the server keeps
                        // accepting and answering (liveness probes must
                        // still see 200). Only the explicit stop — the
                        // owner calling `stop_and_join` — closes the
                        // listener and drains connections for real.
                        if stop.load(Ordering::SeqCst) && !core.draining() {
                            if listener_open {
                                core.deregister_external(listener_fd);
                                listener_open = false;
                            }
                            core.begin_drain(now_ms);
                        }
                        if core.draining() {
                            // With no pool, leftover queued jobs would
                            // strand their connections: finish them here.
                            // Completions are applied immediately below, so
                            // no wake is needed.
                            if workers == 0 {
                                let app = Arc::clone(&core.app);
                                while let Some(job) = jobs_for_loop.try_pop() {
                                    run_job(&*app, &completions_for_loop, None, job);
                                }
                                core.apply_completions(now_ms);
                            }
                            if core.conns() == 0 {
                                break;
                            }
                        }
                        let timeout = core.next_timeout();
                        events.clear();
                        if core.wait(timeout, &mut events).is_err() {
                            break;
                        }
                        let now_ms = start.elapsed().as_millis() as u64;
                        for event in &events {
                            match event.token {
                                LISTENER_TOKEN => loop {
                                    match listener.accept() {
                                        Ok((stream, _)) => {
                                            if stream.set_nonblocking(true).is_err() {
                                                continue;
                                            }
                                            let _ = stream.set_nodelay(true);
                                            core.accept(stream, now_ms);
                                        }
                                        Err(ref e) if e.kind() == io::ErrorKind::WouldBlock => {
                                            break
                                        }
                                        Err(_) => break,
                                    }
                                },
                                WAKE_TOKEN => {
                                    use std::io::Read;
                                    let mut sink = [0u8; 64];
                                    while let Ok(n) = (&wake_rx).read(&mut sink) {
                                        if n < sink.len() {
                                            break;
                                        }
                                    }
                                }
                                _ => core.on_event(*event, now_ms),
                            }
                        }
                        core.apply_completions(now_ms);
                        core.on_tick(now_ms);
                    }
                    jobs_for_loop.close();
                })
                .map_err(io::Error::other)?
        };

        Ok(Reactor {
            thread: Some(thread),
            workers: worker_handles,
            stop,
            waker,
            jobs,
        })
    }

    /// Requests stop (if not already draining via the app) and joins the
    /// reactor and workers. Idempotent.
    pub fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
        self.jobs.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(target_os = "linux")]
impl Drop for Reactor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Executes one job and queues its completion (shared by pool workers and
/// the reactor's no-pool drain path, which applies completions itself and
/// passes no waker).
#[cfg(target_os = "linux")]
fn run_job(app: &dyn App, completions: &Mutex<Vec<Completion>>, waker: Option<&Waker>, job: Job) {
    let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
    let started = Instant::now();
    let outcome = app.execute(&job.request);
    let compute_us = started.elapsed().as_micros() as u64;
    app.on_response(&job.request, &outcome, queue_wait_us, compute_us);
    lock(completions).push(Completion {
        token: job.token,
        response: outcome.response,
        close: outcome.close,
    });
    if let Some(waker) = waker {
        waker.wake();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::conn::FakeStream;
    use crate::io::poller::FakePoller;
    use std::sync::atomic::AtomicBool;

    /// A scripted [`App`]: `/defer` goes to the queue, everything else is
    /// answered inline with a body echoing the target.
    struct TestApp {
        connections: AtomicU64,
        deferred_responses: AtomicU64,
        sheds: AtomicU64,
        request_errors: Mutex<Vec<u16>>,
        draining: AtomicBool,
    }

    impl TestApp {
        fn new() -> Arc<TestApp> {
            Arc::new(TestApp {
                connections: AtomicU64::new(0),
                deferred_responses: AtomicU64::new(0),
                sheds: AtomicU64::new(0),
                request_errors: Mutex::new(Vec::new()),
                draining: AtomicBool::new(false),
            })
        }
    }

    impl App for TestApp {
        fn dispatch(&self, request: &Request) -> Dispatch {
            if request.target == "/defer" {
                return Dispatch::Defer;
            }
            Dispatch::Inline(Outcome {
                response: Response::json(200, format!("{{\"target\":\"{}\"}}", request.target)),
                cache: "hit",
                close: false,
            })
        }

        fn execute(&self, request: &Request) -> Outcome {
            Outcome {
                response: Response::json(200, format!("{{\"executed\":\"{}\"}}", request.target)),
                cache: "miss",
                close: false,
            }
        }

        fn on_connection(&self) {
            self.connections.fetch_add(1, Ordering::Relaxed);
        }

        fn on_response(&self, _: &Request, _: &Outcome, _: u64, _: u64) {
            self.deferred_responses.fetch_add(1, Ordering::Relaxed);
        }

        fn shed(&self, _queue_len: usize) -> Response {
            self.sheds.fetch_add(1, Ordering::Relaxed);
            Response::json(503, r#"{"error":"full"}"#).header("retry-after", "1")
        }

        fn on_request_error(&self, status: u16) {
            lock(&self.request_errors).push(status);
        }

        fn draining(&self) -> bool {
            self.draining.load(Ordering::SeqCst)
        }
    }

    struct Rig {
        core: Core<FakePoller, FakeStream>,
        app: Arc<TestApp>,
        jobs: Arc<Bounded<Job>>,
        completions: Arc<Mutex<Vec<Completion>>>,
        /// Written-byte mirrors by fd, surviving connection teardown so
        /// tests can assert on the final bytes of a closed connection.
        sinks: std::collections::HashMap<i32, Arc<Mutex<Vec<u8>>>>,
    }

    fn rig(queue_depth: usize) -> Rig {
        let app = TestApp::new();
        let jobs = Arc::new(Bounded::new(queue_depth));
        let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
        let core = Core::new(
            FakePoller::new(),
            Arc::clone(&app) as Arc<dyn App>,
            Config {
                limits: Limits::default(),
                max_requests: 100,
                read_timeout: Duration::from_millis(5_000),
                header_timeout: Duration::from_millis(2_000),
                write_timeout: Duration::from_millis(5_000),
                max_connections: 8,
            },
            Arc::clone(&jobs),
            Arc::clone(&completions),
            Arc::new(IoStats::default()),
        );
        Rig {
            core,
            app,
            jobs,
            completions,
            sinks: std::collections::HashMap::new(),
        }
    }

    impl Rig {
        /// Accepts a fake connection with fd `fd`; returns its slot index.
        fn connect(&mut self, fd: i32, now_ms: u64) -> usize {
            let before = self.core.conns();
            let sink: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
            let mut stream = FakeStream::new(fd);
            stream.mirror_writes(Arc::clone(&sink));
            self.sinks.insert(fd, sink);
            self.core.accept(stream, now_ms);
            assert_eq!(self.core.conns(), before + 1, "accept registered");
            // Slots are reused LIFO, so the freshest connection is either
            // a recycled slot or the new tail; find it by fd.
            (0..)
                .find(|&i| {
                    self.core
                        .conn_stream_mut(i)
                        .is_some_and(|s| s.raw_fd() == fd)
                })
                .expect("accepted slot")
        }

        /// Feeds bytes and delivers one readable event through the poller,
        /// exactly as the event loop would.
        fn feed_and_drive(&mut self, index: usize, fd: i32, bytes: &[u8], now_ms: u64) {
            self.core.conn_stream_mut(index).expect("live").feed(bytes);
            self.core.poller_mut().make_ready(fd, true, false, false);
            self.drive(now_ms);
        }

        /// One event-loop iteration: wait, dispatch events, completions,
        /// tick.
        fn drive(&mut self, now_ms: u64) {
            let mut events = Vec::new();
            self.core.wait(Some(Duration::ZERO), &mut events).unwrap();
            for event in events {
                self.core.on_event(event, now_ms);
            }
            self.core.apply_completions(now_ms);
            self.core.on_tick(now_ms);
        }

        /// Every byte the connection on `fd` ever flushed, even after it
        /// closed.
        fn written(&self, fd: i32) -> Vec<u8> {
            self.sinks
                .get(&fd)
                .map(|sink| lock(sink).clone())
                .unwrap_or_default()
        }

        /// Runs `job` synchronously as a pool worker would.
        fn work_one(&mut self) {
            let job = self.jobs.try_pop().expect("a queued job");
            let queue_wait_us = job.enqueued.elapsed().as_micros() as u64;
            let outcome = self.app.execute(&job.request);
            self.app
                .on_response(&job.request, &outcome, queue_wait_us, 0);
            lock(&self.completions).push(Completion {
                token: job.token,
                response: outcome.response,
                close: outcome.close,
            });
        }
    }

    fn count_status(bytes: &[u8], needle: &str) -> usize {
        String::from_utf8_lossy(bytes).matches(needle).count()
    }

    const GET: &[u8] = b"GET /ping HTTP/1.1\r\nhost: t\r\n\r\n";
    const POST: &[u8] = b"POST /sum HTTP/1.1\r\nhost: t\r\ncontent-length: 11\r\n\r\nhello world";

    #[test]
    fn partial_reads_at_every_boundary_yield_exactly_one_response() {
        for request in [GET, POST] {
            for split in 1..request.len() {
                let mut rig = rig(4);
                let index = rig.connect(9, 0);
                rig.feed_and_drive(index, 9, &request[..split], 0);
                assert_eq!(
                    count_status(&rig.written(9), "HTTP/1.1 200"),
                    0,
                    "no response from a partial request (split {split})"
                );
                assert_eq!(
                    rig.core.conn_state(index),
                    Some(ConnState::Reading),
                    "split {split} leaves the connection reading"
                );
                rig.feed_and_drive(index, 9, &request[split..], 1);
                assert_eq!(
                    count_status(&rig.written(9), "HTTP/1.1 200"),
                    1,
                    "one response once complete (split {split})"
                );
                assert_eq!(
                    rig.core.conn_state(index),
                    Some(ConnState::Idle),
                    "keep-alive returns to idle (split {split})"
                );
            }
        }
    }

    #[test]
    fn pipelined_pair_in_one_readiness_event_yields_two_responses_in_order() {
        let mut rig = rig(4);
        let index = rig.connect(7, 0);
        let mut both = GET.to_vec();
        both.extend_from_slice(b"GET /second HTTP/1.1\r\nhost: t\r\n\r\n");
        rig.feed_and_drive(index, 7, &both, 0);
        let written = rig.written(7);
        assert_eq!(count_status(&written, "HTTP/1.1 200"), 2);
        let text = String::from_utf8_lossy(&written);
        let first = text.find("/ping").expect("first response body");
        let second = text.find("/second").expect("second response body");
        assert!(first < second, "responses in request order");
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Idle));
    }

    #[test]
    fn short_writes_backpressure_until_writable_events_drain_the_backlog() {
        let mut rig = rig(4);
        let index = rig.connect(5, 0);
        rig.core.conn_stream_mut(index).unwrap().write_cap = 7;
        rig.feed_and_drive(index, 5, GET, 0);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Writing));
        let interest = rig.core.poller_mut().interest(5).expect("registered");
        assert!(interest.writable, "backlog demands write interest");
        assert!(!interest.readable, "input paused while flushing");
        // Deliver writable readiness until the 7-bytes-per-call flush
        // finishes; a bounded loop so a regression fails, not hangs.
        for round in 0..100 {
            if rig.core.conn_state(index) == Some(ConnState::Idle) {
                break;
            }
            // The kernel freed 7 bytes of send buffer and reports
            // writable: refill the budget, deliver the event.
            rig.core.conn_stream_mut(index).unwrap().write_cap = 7;
            rig.core.poller_mut().make_ready(5, false, true, false);
            rig.drive(round + 1);
        }
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Idle));
        assert_eq!(count_status(&rig.written(5), "HTTP/1.1 200"), 1);
        assert_eq!(
            rig.core.poller_mut().interest(5),
            Some(Interest::READ),
            "drained connection reads again"
        );
    }

    #[test]
    fn idle_deadline_closes_a_quiet_keepalive_silently() {
        let mut rig = rig(4);
        rig.connect(3, 0);
        rig.core.on_tick(4_900);
        assert_eq!(rig.core.conns(), 1, "before the idle deadline");
        rig.core.on_tick(5_100);
        assert_eq!(rig.core.conns(), 0, "idle deadline closes");
        assert!(rig.written(3).is_empty(), "silent close, no 408");
        assert_eq!(rig.core.poller_mut().registered(), 0, "fd deregistered");
        assert!(lock(&rig.app.request_errors).is_empty());
    }

    #[test]
    fn stalled_header_hits_the_total_deadline_with_408() {
        let mut rig = rig(4);
        let index = rig.connect(4, 0);
        // Trickle the head one byte at a time; each byte re-drives the
        // reader but must NOT extend the total header deadline.
        for (i, &byte) in GET.iter().take(6).enumerate() {
            rig.feed_and_drive(index, 4, &[byte], i as u64 * 300);
        }
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Reading));
        // 6 bytes * 300ms = 1.8s of "progress"; the 2s total deadline
        // still fires because it was armed at the first head byte.
        rig.core.on_tick(2_400);
        let written = rig.written(4);
        assert_eq!(
            count_status(&written, "HTTP/1.1 408"),
            1,
            "slow loris gets 408"
        );
        assert_eq!(rig.core.conns(), 0, "then the connection closes");
        assert_eq!(*lock(&rig.app.request_errors), vec![408]);
    }

    #[test]
    fn deferred_request_parks_input_and_completion_resumes_keepalive() {
        let mut rig = rig(4);
        let index = rig.connect(6, 0);
        rig.feed_and_drive(index, 6, b"POST /defer HTTP/1.1\r\nhost: t\r\n\r\n", 0);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Executing));
        assert_eq!(
            rig.core.poller_mut().interest(6),
            Some(Interest::NONE),
            "no read-ahead while a worker owns the request"
        );
        assert_eq!(rig.jobs.len(), 1);
        rig.work_one();
        rig.drive(10);
        assert_eq!(count_status(&rig.written(6), "HTTP/1.1 200"), 1);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Idle));
        assert_eq!(rig.app.deferred_responses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_job_queue_sheds_the_request_with_503_and_close() {
        let mut rig = rig(1);
        let a = rig.connect(11, 0);
        let b = rig.connect(12, 0);
        rig.feed_and_drive(a, 11, b"POST /defer HTTP/1.1\r\nhost: t\r\n\r\n", 0);
        assert_eq!(rig.jobs.len(), 1, "first defer fills the queue");
        rig.feed_and_drive(b, 12, b"POST /defer HTTP/1.1\r\nhost: t\r\n\r\n", 0);
        let written = rig.written(12);
        assert_eq!(count_status(&written, "HTTP/1.1 503"), 1);
        assert!(String::from_utf8_lossy(&written).contains("retry-after: 1"));
        assert_eq!(rig.core.conn_state(b), None, "shed request closes its conn");
        assert_eq!(rig.app.sheds.load(Ordering::Relaxed), 1);
        assert_eq!(
            rig.core.conn_state(a),
            Some(ConnState::Executing),
            "the admitted request is untouched"
        );
    }

    #[test]
    fn accepts_beyond_max_connections_are_shed_at_the_door() {
        let mut rig = rig(4);
        for fd in 0..8 {
            rig.connect(100 + fd, 0);
        }
        assert_eq!(rig.core.conns(), 8);
        rig.core.accept(FakeStream::new(200), 0);
        assert_eq!(rig.core.conns(), 8, "over-cap accept not registered");
        assert_eq!(rig.app.sheds.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn drain_closes_idle_conns_but_lets_inflight_work_finish() {
        let mut rig = rig(4);
        let idle = rig.connect(21, 0);
        let busy = rig.connect(22, 0);
        rig.feed_and_drive(busy, 22, b"POST /defer HTTP/1.1\r\nhost: t\r\n\r\n", 0);
        assert_eq!(rig.core.conn_state(busy), Some(ConnState::Executing));
        rig.core.begin_drain(1);
        assert_eq!(rig.core.conn_state(idle), None, "idle closed at drain");
        assert_eq!(
            rig.core.conn_state(busy),
            Some(ConnState::Executing),
            "in-flight request survives drain"
        );
        rig.work_one();
        rig.drive(2);
        let written = rig.written(22);
        assert_eq!(
            count_status(&written, "HTTP/1.1 200"),
            1,
            "response delivered"
        );
        assert_eq!(
            rig.core.conns(),
            0,
            "drained conn closes after its response"
        );
    }

    #[test]
    fn half_close_while_executing_still_delivers_the_response() {
        let mut rig = rig(4);
        let index = rig.connect(51, 0);
        rig.feed_and_drive(index, 51, b"POST /defer HTTP/1.1\r\nhost: t\r\n\r\n", 0);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Executing));
        // The client sent its whole request and shutdown(WR); the kernel
        // reports RDHUP. The request is executing — the peer is waiting
        // for its answer on the still-open other half.
        rig.core.conn_stream_mut(index).unwrap().half_close();
        rig.core.poller_mut().make_half_closed(51);
        rig.drive(1);
        assert_eq!(
            rig.core.conn_state(index),
            Some(ConnState::Executing),
            "a half-close must not abort an executing request"
        );
        rig.work_one();
        rig.drive(2);
        let written = rig.written(51);
        assert_eq!(
            count_status(&written, "HTTP/1.1 200"),
            1,
            "the response reaches the half-closed peer"
        );
        assert!(String::from_utf8_lossy(&written).contains("/defer"));
        // The EOF is then discovered through the read path: silent close.
        rig.drive(3);
        assert_eq!(rig.core.conns(), 0, "connection closes after the flush");
        assert!(lock(&rig.app.request_errors).is_empty(), "no error counted");
    }

    #[test]
    fn half_close_while_write_throttled_finishes_the_flush() {
        let mut rig = rig(4);
        let index = rig.connect(52, 0);
        rig.core.conn_stream_mut(index).unwrap().write_cap = 7;
        rig.feed_and_drive(index, 52, GET, 0);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Writing));
        // Mid-flush the client shuts down its send side.
        rig.core.conn_stream_mut(index).unwrap().half_close();
        rig.core.poller_mut().make_half_closed(52);
        rig.drive(1);
        assert_ne!(rig.core.conn_state(index), None, "still flushing");
        // Writable readiness keeps draining the backlog, 7 bytes a round.
        for round in 0..100 {
            if rig.core.conn_state(index).is_none() {
                break;
            }
            rig.core.conn_stream_mut(index).unwrap().write_cap = 7;
            rig.core.poller_mut().make_ready(52, false, true, false);
            rig.drive(round + 2);
        }
        let written = rig.written(52);
        assert_eq!(
            count_status(&written, "HTTP/1.1 200"),
            1,
            "the throttled response flushes to completion"
        );
        assert!(
            String::from_utf8_lossy(&written).contains("/ping"),
            "the body made it out whole"
        );
        assert_eq!(rig.core.conns(), 0, "then the EOF closes the connection");
        assert!(lock(&rig.app.request_errors).is_empty());
    }

    #[test]
    fn full_hangup_while_executing_still_closes_immediately() {
        let mut rig = rig(4);
        let index = rig.connect(53, 0);
        rig.feed_and_drive(index, 53, b"POST /defer HTTP/1.1\r\nhost: t\r\n\r\n", 0);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Executing));
        // ERR/HUP — dead in both directions — still tears down at once.
        rig.core.poller_mut().make_ready(53, false, false, true);
        rig.drive(1);
        assert_eq!(rig.core.conns(), 0, "full hangup closes the connection");
        rig.work_one();
        rig.drive(2);
        assert_eq!(
            count_status(&rig.written(53), "HTTP/1.1 200"),
            0,
            "the stale completion is dropped, not written to a corpse"
        );
    }

    #[test]
    fn half_close_mid_body_is_a_malformed_request() {
        let mut rig = rig(4);
        let index = rig.connect(31, 0);
        rig.core
            .conn_stream_mut(index)
            .unwrap()
            .feed(&POST[..POST.len() - 4]);
        rig.core.conn_stream_mut(index).unwrap().half_close();
        rig.core.poller_mut().make_ready(31, true, false, false);
        rig.drive(0);
        assert_eq!(count_status(&rig.written(31), "HTTP/1.1 400"), 1);
        assert_eq!(*lock(&rig.app.request_errors), vec![400]);
    }

    #[test]
    fn stale_timer_after_response_does_not_kill_the_next_request() {
        let mut rig = rig(4);
        let index = rig.connect(41, 0);
        // First request served at t=0 re-arms the idle deadline.
        rig.feed_and_drive(index, 41, GET, 0);
        assert_eq!(rig.core.conn_state(index), Some(ConnState::Idle));
        // The second request starts at 4.9s — inside the idle window —
        // and its body trickles; the *original* idle timer (due at 5s)
        // must not fire on the now-Reading connection.
        rig.feed_and_drive(index, 41, &POST[..10], 4_900);
        rig.core.on_tick(5_200);
        assert_eq!(
            rig.core.conn_state(index),
            Some(ConnState::Reading),
            "stale idle deadline was lazily cancelled"
        );
        rig.feed_and_drive(index, 41, &POST[10..], 5_300);
        assert_eq!(count_status(&rig.written(41), "HTTP/1.1 200"), 2);
    }
}
