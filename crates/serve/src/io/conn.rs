//! The per-connection non-blocking state machine.
//!
//! A [`Conn`] owns one stream and drives it entirely from readiness
//! callbacks: `on_readable` pulls bytes through the incremental
//! [`RequestReader`] and hands complete requests to a sink, `on_writable`
//! flushes the outgoing byte backlog, and `complete` delivers a deferred
//! response computed on a worker. The machine never blocks — every read
//! and write stops at `WouldBlock` — and never reads ahead of the
//! protocol: input is paused (no read interest) while a request executes
//! or a response is flushing, which both preserves serial per-connection
//! semantics and keeps a level-triggered poller from spinning.
//!
//! ```text
//!        bytes            complete request           response queued
//! Idle ────────▶ Reading ────────────────▶ Executing ──────────────▶ Writing
//!   ▲              │        (deferred)                                  │
//!   │              └──────────────────────▶ Writing (inline response)   │
//!   └──────────────────────────────────────────────────────────────────┘
//!                        flush drained, keep-alive
//! ```
//!
//! Timeouts live outside: the reactor arms header/idle/write deadlines on
//! a [`TimerWheel`](crate::io::timer::TimerWheel) keyed off
//! [`Conn::state`] and [`Conn::head_pending`].

use crate::http::{Fill, Limits, ReadError, Request, RequestReader, Response};
use std::io::{self, Read, Write};

/// A bidirectional byte stream with an identifiable fd.
///
/// Implemented by [`std::net::TcpStream`] (the fd registers with the
/// poller) and by [`FakeStream`] for socketless state-machine tests.
pub trait Stream: Read + Write {
    /// The raw fd to register with a poller. Fake streams make one up.
    fn raw_fd(&self) -> i32;
}

#[cfg(unix)]
impl Stream for std::net::TcpStream {
    fn raw_fd(&self) -> i32 {
        std::os::fd::AsRawFd::as_raw_fd(self)
    }
}

/// Where a connection is in its request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Keep-alive gap: no partial request, nothing to write.
    Idle,
    /// Part of a request (head or body) has arrived.
    Reading,
    /// A deferred request is executing on a worker; input is paused.
    Executing,
    /// Flushing response bytes; input stays paused until drained.
    Writing,
    /// Finished: the reactor deregisters and drops the connection.
    Closed,
}

/// Per-drive context the reactor passes in.
#[derive(Debug, Clone, Copy)]
pub struct Ctx {
    /// Head/body size limits, as for the blocking path.
    pub limits: Limits,
    /// Keep-alive is withdrawn on the request that reaches this count.
    pub max_requests: usize,
    /// Draining servers answer with `connection: close`.
    pub draining: bool,
}

/// What the request sink decided.
pub enum Verdict {
    /// Answer now; keep-alive negotiation decides whether to persist.
    Respond(Response),
    /// Answer now and close regardless of negotiation (shed, shutdown).
    RespondAndClose(Response),
    /// The request was handed to the worker pool; pause this connection
    /// until [`Conn::complete`] delivers the outcome.
    Deferred,
}

/// One connection's state machine over stream `S`.
#[derive(Debug)]
pub struct Conn<S> {
    stream: S,
    reader: RequestReader,
    out: Vec<u8>,
    out_at: usize,
    state: ConnState,
    served: usize,
    flushed: u64,
    close_after_flush: bool,
    /// Keep-alive decision frozen when a request was deferred, applied
    /// when its completion arrives.
    deferred_keep_alive: bool,
}

impl<S: Stream> Conn<S> {
    /// Wraps an accepted (already non-blocking) stream.
    pub fn new(stream: S) -> Conn<S> {
        Conn {
            stream,
            reader: RequestReader::new(),
            out: Vec::new(),
            out_at: 0,
            state: ConnState::Idle,
            served: 0,
            flushed: 0,
            close_after_flush: false,
            deferred_keep_alive: false,
        }
    }

    /// The underlying stream (reactor needs the fd; tests inject bytes).
    pub fn stream_mut(&mut self) -> &mut S {
        &mut self.stream
    }

    /// Current lifecycle state.
    pub fn state(&self) -> ConnState {
        self.state
    }

    /// Requests answered (or deferred) on this connection so far.
    pub fn served(&self) -> usize {
        self.served
    }

    /// Whether the *head* of the next request is still incomplete — the
    /// phase the total header deadline covers.
    pub fn head_pending(&self) -> bool {
        self.reader.head_pending()
    }

    /// Response bytes accepted by the kernel so far for this connection.
    pub fn bytes_flushed(&self) -> u64 {
        self.flushed
    }

    /// Whether unflushed response bytes remain.
    pub fn has_backlog(&self) -> bool {
        self.out_at < self.out.len()
    }

    /// The poller interest implied by the current state: read while
    /// idle/reading, write while a backlog remains, nothing while a
    /// worker owns the request.
    pub fn interest(&self) -> super::Interest {
        super::Interest {
            readable: matches!(self.state, ConnState::Idle | ConnState::Reading),
            writable: self.has_backlog(),
        }
    }

    /// Marks the connection finished (peer reset, deadline expired).
    pub fn close(&mut self) {
        self.state = ConnState::Closed;
    }

    /// Drives reads as far as the socket allows, feeding each complete
    /// request to `sink` (which receives the request and the negotiated
    /// keep-alive decision). Returns parse/IO errors for the reactor to
    /// map to an error response; any error is terminal for the
    /// connection.
    ///
    /// # Errors
    ///
    /// [`ReadError`] variants as for the blocking reader.
    pub fn on_readable(
        &mut self,
        ctx: &Ctx,
        sink: &mut dyn FnMut(Request, bool) -> Verdict,
    ) -> Result<(), ReadError> {
        loop {
            if !matches!(self.state, ConnState::Idle | ConnState::Reading) {
                break;
            }
            match self.reader.try_parse(ctx.limits)? {
                Some(request) => {
                    self.served += 1;
                    let keep_alive = request.wants_keep_alive()
                        && self.served < ctx.max_requests
                        && !ctx.draining;
                    match sink(request, keep_alive) {
                        Verdict::Respond(response) => {
                            self.enqueue(&response, keep_alive);
                            if !keep_alive {
                                self.close_after_flush = true;
                                break;
                            }
                            // Keep parsing: pipelined requests may already
                            // be buffered.
                        }
                        Verdict::RespondAndClose(response) => {
                            self.enqueue(&response, false);
                            self.close_after_flush = true;
                            break;
                        }
                        Verdict::Deferred => {
                            self.deferred_keep_alive = keep_alive;
                            self.state = ConnState::Executing;
                            break;
                        }
                    }
                }
                None => match self.reader.fill_from(&mut self.stream)? {
                    Fill::Data(_) => {
                        if self.state == ConnState::Idle {
                            self.state = ConnState::Reading;
                        }
                    }
                    Fill::Blocked => break,
                    Fill::Eof => {
                        if self.reader.has_partial() {
                            return Err(if self.reader.head_pending() {
                                ReadError::Malformed("truncated head")
                            } else {
                                ReadError::Malformed("truncated body")
                            });
                        }
                        // Clean half-close between requests: flush any
                        // backlog, then close.
                        self.close_after_flush = true;
                        break;
                    }
                },
            }
        }
        self.settle()
    }

    /// Flushes the outgoing backlog as far as the socket allows.
    ///
    /// # Errors
    ///
    /// Terminal stream failures; the reactor closes the connection.
    pub fn on_writable(&mut self) -> Result<(), ReadError> {
        self.settle()
    }

    /// Delivers the outcome of a deferred request from a worker.
    /// `force_close` overrides the keep-alive negotiated at defer time.
    ///
    /// # Errors
    ///
    /// Terminal stream failures while flushing.
    pub fn complete(&mut self, response: &Response, force_close: bool) -> Result<(), ReadError> {
        debug_assert_eq!(self.state, ConnState::Executing);
        let keep_alive = self.deferred_keep_alive && !force_close;
        self.enqueue(response, keep_alive);
        if !keep_alive {
            self.close_after_flush = true;
        }
        self.state = ConnState::Writing;
        self.settle()
    }

    /// Queues a terminal error response (`400`/`408`/`413`): written with
    /// `connection: close`, then the connection closes. The reader may
    /// hold unparseable bytes, so no further requests are read.
    ///
    /// # Errors
    ///
    /// Terminal stream failures while flushing.
    pub fn respond_error(&mut self, response: &Response) -> Result<(), ReadError> {
        self.enqueue(response, false);
        self.close_after_flush = true;
        self.state = ConnState::Writing;
        self.settle()
    }

    fn enqueue(&mut self, response: &Response, keep_alive: bool) {
        response
            .write_to(&mut self.out, keep_alive)
            .expect("writing to a Vec cannot fail");
    }

    /// Pushes backlog into the socket and recomputes the lifecycle state.
    fn settle(&mut self) -> Result<(), ReadError> {
        while self.out_at < self.out.len() {
            match self.stream.write(&self.out[self.out_at..]) {
                Ok(0) => {
                    return Err(ReadError::Io(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stream accepted zero bytes",
                    )))
                }
                Ok(n) => {
                    self.out_at += n;
                    self.flushed += n as u64;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    break
                }
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
        if self.state == ConnState::Closed {
            return Ok(());
        }
        if self.has_backlog() {
            // Executing keeps its label (a worker owns the request) but
            // the interest still includes write until the backlog drains.
            if self.state != ConnState::Executing {
                self.state = ConnState::Writing;
            }
            return Ok(());
        }
        self.out.clear();
        self.out_at = 0;
        if self.state == ConnState::Executing {
            return Ok(());
        }
        if self.close_after_flush {
            self.state = ConnState::Closed;
        } else {
            self.state = if self.reader.has_partial() {
                ConnState::Reading
            } else {
                ConnState::Idle
            };
        }
        Ok(())
    }
}

/// A scripted in-memory [`Stream`] for state-machine tests: reads come
/// from a caller-fed buffer (then block or EOF), writes land in
/// [`FakeStream::written`] and can be throttled to exercise short-write
/// backpressure.
#[derive(Debug, Default)]
pub struct FakeStream {
    input: std::collections::VecDeque<u8>,
    eof: bool,
    /// Every byte the connection flushed, in order.
    pub written: Vec<u8>,
    /// Write *budget* in bytes: each write draws it down, and a zero
    /// budget returns `WouldBlock` — how a full socket send buffer
    /// applies backpressure. `usize::MAX` means unlimited.
    pub write_cap: usize,
    /// Max bytes returned per `read` call (simulates tiny packets).
    pub read_cap: usize,
    /// Optional mirror of every written byte, surviving the stream's
    /// drop (the reactor drops closed connections; post-mortem asserts
    /// need the bytes).
    mirror: Option<std::sync::Arc<std::sync::Mutex<Vec<u8>>>>,
    fd: i32,
}

impl FakeStream {
    /// A fake with unlimited read/write sizes and the given fake fd.
    pub fn new(fd: i32) -> FakeStream {
        FakeStream {
            write_cap: usize::MAX,
            read_cap: usize::MAX,
            fd,
            ..FakeStream::default()
        }
    }

    /// Makes `bytes` available to subsequent reads.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.input.extend(bytes.iter().copied());
    }

    /// After the fed bytes drain, reads return EOF instead of blocking.
    pub fn half_close(&mut self) {
        self.eof = true;
    }

    /// Unread fed bytes.
    pub fn unread(&self) -> usize {
        self.input.len()
    }

    /// Mirrors every written byte into `sink` as well as
    /// [`FakeStream::written`].
    pub fn mirror_writes(&mut self, sink: std::sync::Arc<std::sync::Mutex<Vec<u8>>>) {
        self.mirror = Some(sink);
    }
}

impl Read for FakeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.input.is_empty() {
            return if self.eof {
                Ok(0)
            } else {
                Err(io::ErrorKind::WouldBlock.into())
            };
        }
        let n = buf.len().min(self.input.len()).min(self.read_cap.max(1));
        for slot in buf.iter_mut().take(n) {
            *slot = self.input.pop_front().expect("length checked");
        }
        Ok(n)
    }
}

impl Write for FakeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.write_cap == 0 {
            return Err(io::ErrorKind::WouldBlock.into());
        }
        let n = buf.len().min(self.write_cap);
        if self.write_cap != usize::MAX {
            self.write_cap -= n;
        }
        self.written.extend_from_slice(&buf[..n]);
        if let Some(mirror) = &self.mirror {
            mirror
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .extend_from_slice(&buf[..n]);
        }
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Stream for FakeStream {
    fn raw_fd(&self) -> i32 {
        self.fd
    }
}
