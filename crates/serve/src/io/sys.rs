//! Raw `epoll` syscall shim — the single `unsafe` island in the crate.
//!
//! The workspace is dependency-free, so instead of `libc` this declares
//! the three epoll entry points directly. Everything above this module
//! handles fds through safe `std::os::fd` types: the epoll instance is an
//! [`OwnedFd`] (closed on drop), and registered fds are only ever raw
//! integers handed to the kernel, never dereferenced.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::{FromRawFd, OwnedFd, RawFd};

pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;

pub const EPOLL_CTL_ADD: i32 = 1;
pub const EPOLL_CTL_DEL: i32 = 2;
pub const EPOLL_CTL_MOD: i32 = 3;

const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `struct epoll_event` from `<sys/epoll.h>`. On x86-64 the kernel ABI
/// packs it (12 bytes); other architectures use natural alignment.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    pub events: u32,
    pub data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
}

/// Creates a close-on-exec epoll instance.
pub fn create() -> io::Result<OwnedFd> {
    // SAFETY: epoll_create1 takes no pointers; a negative return is an
    // error, a non-negative return is a freshly created fd we own.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: `fd` was just returned by epoll_create1 and is owned by
    // nobody else; OwnedFd takes over closing it.
    Ok(unsafe { OwnedFd::from_raw_fd(fd) })
}

/// `epoll_ctl` with an event payload (`ADD`/`MOD`; pass `DEL` with any
/// payload — the kernel ignores it).
pub fn ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, data: u64) -> io::Result<()> {
    let mut event = EpollEvent { events, data };
    // SAFETY: `event` is a live stack value for the duration of the call;
    // the kernel copies it and keeps no reference.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut event) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// `epoll_wait` into `buf`; returns how many events were written.
/// `timeout_ms` of `-1` blocks indefinitely. `EINTR` is reported as zero
/// events so callers simply loop.
pub fn wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    // SAFETY: `buf` is valid writable memory of `buf.len()` events; the
    // kernel writes at most that many and returns the count.
    let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
    if rc < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(rc as usize)
}
