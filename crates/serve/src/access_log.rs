//! The structured access log: one JSON line per request.
//!
//! Lines are built with the harness `Json` writer, so field escaping and
//! ordering are exactly the workspace's canonical serialization. Tests
//! and benchmarks use the discarding sink; the binary logs to stderr so
//! stdout stays clean for piping.

use mds_harness::json::Json;
use std::io::Write;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What one request did, for the log line.
#[derive(Debug, Clone)]
pub struct AccessRecord {
    /// Request method.
    pub method: String,
    /// Request target (path).
    pub target: String,
    /// Response status.
    pub status: u16,
    /// Microseconds the connection waited in the admission queue before a
    /// worker picked it up (0 for follow-on keep-alive requests).
    pub queue_wait_us: u64,
    /// Microseconds spent producing the response.
    pub compute_us: u64,
    /// Result-cache disposition: `"hit"`, `"miss"`, or `"-"` for routes
    /// without a cache.
    pub cache: &'static str,
    /// Response body bytes.
    pub bytes: usize,
}

impl AccessRecord {
    /// The JSON line for this record (no trailing newline).
    pub fn line(&self) -> String {
        Json::object()
            .field("evt", "request")
            .field("method", self.method.as_str())
            .field("target", self.target.as_str())
            .field("status", self.status as u64)
            .field("queue_wait_us", self.queue_wait_us)
            .field("compute_us", self.compute_us)
            .field("cache", self.cache)
            .field("bytes", self.bytes)
            .to_string()
    }
}

enum Sink {
    Stderr,
    Discard,
    Memory(Vec<String>),
}

/// A thread-safe structured log writer.
pub struct AccessLog {
    sink: Mutex<Sink>,
}

impl AccessLog {
    /// Logs JSON lines to stderr (the production configuration).
    pub fn stderr() -> AccessLog {
        AccessLog {
            sink: Mutex::new(Sink::Stderr),
        }
    }

    /// Discards everything (benchmarks and quiet mode).
    pub fn discard() -> AccessLog {
        AccessLog {
            sink: Mutex::new(Sink::Discard),
        }
    }

    /// Buffers lines in memory (tests).
    pub fn memory() -> AccessLog {
        AccessLog {
            sink: Mutex::new(Sink::Memory(Vec::new())),
        }
    }

    /// Writes one request record.
    pub fn record(&self, rec: &AccessRecord) {
        self.write_line(rec.line());
    }

    /// Writes one non-request event line (startup, shutdown, rejection).
    pub fn event(&self, doc: Json) {
        self.write_line(doc.to_string());
    }

    fn write_line(&self, line: String) {
        let mut sink = lock(&self.sink);
        match &mut *sink {
            Sink::Stderr => {
                let _ = writeln!(std::io::stderr(), "{line}");
            }
            Sink::Discard => {}
            Sink::Memory(lines) => lines.push(line),
        }
    }

    /// The buffered lines of a [`AccessLog::memory`] log.
    pub fn lines(&self) -> Vec<String> {
        match &*lock(&self.sink) {
            Sink::Memory(lines) => lines.clone(),
            _ => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_valid_json_with_every_field() {
        let log = AccessLog::memory();
        log.record(&AccessRecord {
            method: "POST".into(),
            target: "/v1/experiments".into(),
            status: 200,
            queue_wait_us: 42,
            compute_us: 1234,
            cache: "miss",
            bytes: 99,
        });
        log.event(Json::object().field("evt", "shutdown"));
        let lines = log.lines();
        assert_eq!(lines.len(), 2);
        let parsed = Json::parse(&lines[0]).unwrap();
        assert_eq!(parsed.get("evt").unwrap().as_str(), Some("request"));
        assert_eq!(parsed.get("status").unwrap().as_u64(), Some(200));
        assert_eq!(parsed.get("queue_wait_us").unwrap().as_u64(), Some(42));
        assert_eq!(parsed.get("cache").unwrap().as_str(), Some("miss"));
        assert_eq!(
            Json::parse(&lines[1]).unwrap().get("evt").unwrap().as_str(),
            Some("shutdown")
        );
    }
}
