//! Lock-free serving metrics and their Prometheus text rendering.
//!
//! Everything on the request path is an atomic counter or a fixed-bucket
//! histogram, so recording never blocks a worker. `GET /metrics` renders
//! the exposition-format text (version 0.0.4) from a point-in-time
//! snapshot that also folds in gauges owned elsewhere (queue depth, cache
//! residency).

use std::sync::atomic::{AtomicU64, Ordering};

// The histogram lives in the harness so the cluster gateway and benches
// record latency the same way; re-exported here for existing users.
pub use mds_harness::stats::{Histogram, BUCKET_BOUNDS_US};

/// All request-path counters.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Connections the acceptor accepted.
    pub connections_total: AtomicU64,
    /// Connections shed at admission (503 + `Retry-After`).
    pub rejected_total: AtomicU64,
    /// Requests fully parsed and dispatched.
    pub requests_total: AtomicU64,
    /// Responses with 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with 5xx status.
    pub responses_5xx: AtomicU64,
    /// Experiment requests answered from the result cache.
    pub result_cache_hits: AtomicU64,
    /// Experiment requests that had to compute.
    pub result_cache_misses: AtomicU64,
    /// Time connections spent in the admission queue.
    pub queue_wait: Histogram,
    /// Time spent computing (or fetching) an experiment response.
    pub compute: Histogram,
}

impl Metrics {
    /// Counts a response by status class.
    pub fn count_response(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }
}

/// Point-in-time gauges owned outside [`Metrics`], folded into the
/// rendered exposition.
#[derive(Debug, Clone, Copy, Default)]
pub struct Gauges {
    /// Connections currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Result-cache entries resident.
    pub result_cache_entries: usize,
    /// Result-cache bytes resident.
    pub result_cache_bytes: usize,
    /// Result-cache evictions so far.
    pub result_cache_evictions: u64,
    /// Trace-cache hits (simulations that reused an emulated trace).
    pub trace_cache_hits: u64,
    /// Trace-cache misses (emulations performed).
    pub trace_cache_misses: u64,
    /// Trace bytes currently resident in the shared trace cache.
    pub trace_cache_bytes: usize,
    /// Live records in the durable store (0 when no store is attached).
    pub store_records: usize,
    /// Bytes in the store's append-only log.
    pub store_log_bytes: u64,
    /// Bytes in the store's compacted snapshot.
    pub store_snapshot_bytes: u64,
    /// Result-cache entries prewarmed from the store at boot.
    pub store_prewarmed: usize,
    /// Successful store appends since boot.
    pub store_appends: u64,
    /// Failed store appends since boot (served fine, not persisted).
    pub store_append_errors: u64,
    /// Store compactions since boot.
    pub store_compactions: u64,
    /// Fds registered with the event poller (0 under `--io threads`).
    pub io_registered_fds: u64,
    /// Readiness events delivered by the most recent poll.
    pub io_ready_depth: u64,
    /// Connection deadlines fired by the reactor's timer wheel.
    pub io_timer_fires: u64,
}

/// Appends one Prometheus counter family (`# HELP` / `# TYPE` / sample)
/// to `out`. Public so the cluster gateway renders the same exposition.
pub fn counter(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
    ));
}

/// Appends one Prometheus gauge family to `out`.
pub fn gauge(out: &mut String, name: &str, help: &str, value: u64) {
    out.push_str(&format!(
        "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
    ));
}

/// Renders the full Prometheus exposition text.
pub fn render(m: &Metrics, g: Gauges) -> String {
    let mut out = String::with_capacity(2048);
    let c = |v: &AtomicU64| v.load(Ordering::Relaxed);
    counter(
        &mut out,
        "mds_connections_total",
        "Connections accepted.",
        c(&m.connections_total),
    );
    counter(
        &mut out,
        "mds_rejected_total",
        "Connections shed at admission with 503 + Retry-After.",
        c(&m.rejected_total),
    );
    counter(
        &mut out,
        "mds_requests_total",
        "Requests dispatched.",
        c(&m.requests_total),
    );
    counter(
        &mut out,
        "mds_responses_2xx_total",
        "Responses with 2xx status.",
        c(&m.responses_2xx),
    );
    counter(
        &mut out,
        "mds_responses_4xx_total",
        "Responses with 4xx status.",
        c(&m.responses_4xx),
    );
    counter(
        &mut out,
        "mds_responses_5xx_total",
        "Responses with 5xx status.",
        c(&m.responses_5xx),
    );
    counter(
        &mut out,
        "mds_result_cache_hits_total",
        "Experiment requests answered from the result cache.",
        c(&m.result_cache_hits),
    );
    counter(
        &mut out,
        "mds_result_cache_misses_total",
        "Experiment requests that computed.",
        c(&m.result_cache_misses),
    );
    counter(
        &mut out,
        "mds_result_cache_evictions_total",
        "Result-cache entries evicted for the byte budget.",
        g.result_cache_evictions,
    );
    gauge(
        &mut out,
        "mds_queue_depth",
        "Connections waiting in the admission queue.",
        g.queue_depth as u64,
    );
    gauge(
        &mut out,
        "mds_result_cache_entries",
        "Result-cache entries resident.",
        g.result_cache_entries as u64,
    );
    gauge(
        &mut out,
        "mds_result_cache_bytes",
        "Result-cache bytes resident.",
        g.result_cache_bytes as u64,
    );
    counter(
        &mut out,
        "mds_trace_cache_hits_total",
        "Simulations that reused an already-emulated trace.",
        g.trace_cache_hits,
    );
    counter(
        &mut out,
        "mds_trace_cache_misses_total",
        "Workload emulations performed.",
        g.trace_cache_misses,
    );
    gauge(
        &mut out,
        "mds_trace_cache_bytes",
        "Trace bytes resident in the shared trace cache.",
        g.trace_cache_bytes as u64,
    );
    gauge(
        &mut out,
        "mds_store_records",
        "Live records in the durable result store.",
        g.store_records as u64,
    );
    gauge(
        &mut out,
        "mds_store_log_bytes",
        "Bytes in the durable store's append-only log.",
        g.store_log_bytes,
    );
    gauge(
        &mut out,
        "mds_store_snapshot_bytes",
        "Bytes in the durable store's compacted snapshot.",
        g.store_snapshot_bytes,
    );
    gauge(
        &mut out,
        "mds_store_prewarmed_keys",
        "Result-cache entries prewarmed from the durable store at boot.",
        g.store_prewarmed as u64,
    );
    counter(
        &mut out,
        "mds_store_appends_total",
        "Records appended to the durable store.",
        g.store_appends,
    );
    counter(
        &mut out,
        "mds_store_append_errors_total",
        "Store appends that failed (responses served, not persisted).",
        g.store_append_errors,
    );
    counter(
        &mut out,
        "mds_store_compactions_total",
        "Durable-store compactions (snapshot rewrite + log truncate).",
        g.store_compactions,
    );
    gauge(
        &mut out,
        "mds_io_registered_fds",
        "Fds registered with the event poller (0 under --io threads).",
        g.io_registered_fds,
    );
    gauge(
        &mut out,
        "mds_io_ready_queue_depth",
        "Readiness events delivered by the most recent poll.",
        g.io_ready_depth,
    );
    counter(
        &mut out,
        "mds_io_timer_fires_total",
        "Connection deadlines fired by the reactor's timer wheel.",
        g.io_timer_fires,
    );
    m.queue_wait.render_prometheus(
        "mds_queue_wait_microseconds",
        "Time connections spent queued before a worker picked them up.",
        &mut out,
    );
    m.compute.render_prometheus(
        "mds_compute_microseconds",
        "Time spent producing an experiment response (compute or cache fetch).",
        &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_exposes_every_required_family() {
        let m = Metrics::default();
        m.count_response(200);
        m.count_response(404);
        m.count_response(503);
        let text = render(
            &m,
            Gauges {
                queue_depth: 3,
                trace_cache_misses: 5,
                store_records: 7,
                store_prewarmed: 2,
                ..Default::default()
            },
        );
        for family in [
            "mds_requests_total 3",
            "mds_responses_2xx_total 1",
            "mds_responses_4xx_total 1",
            "mds_responses_5xx_total 1",
            "mds_queue_depth 3",
            "mds_trace_cache_misses_total 5",
            "mds_store_records 7",
            "mds_store_prewarmed_keys 2",
            "mds_store_appends_total 0",
            "mds_io_registered_fds 0",
            "mds_io_ready_queue_depth 0",
            "mds_io_timer_fires_total 0",
            "mds_queue_wait_microseconds_count 0",
            "mds_compute_microseconds_count 0",
        ] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
