//! `mds-serve` — the experiment-serving daemon.
//!
//! Binds, prints the listening address, and serves until a client posts
//! `/v1/shutdown` (the SIGTERM surrogate — plain `std` has no signal
//! handling), then drains in-flight work and exits 0.

use mds_serve::{LogTarget, Server, ServerConfig};

const USAGE: &str = "\
usage: mds-serve [options]

Serve paper experiments over HTTP/JSON.

options:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --workers N        connection-serving worker threads (default 4)
  --queue-depth N    admission queue capacity before 503 shedding (default 64)
  --jobs N           simulation worker threads (default: MDS_JOBS or all cores)
  --quiet            discard the JSON access log (default: stderr)
  -h, --help         show this help

routes:
  POST /v1/experiments   run (or fetch) an experiment: {\"experiment\":\"fig5\",\"scale\":\"tiny\"}
  GET  /v1/experiments   list experiment ids and titles
  GET  /healthz          liveness probe (200 while the process serves)
  GET  /readyz           readiness probe (503 while saturated or draining)
  GET  /metrics          Prometheus text metrics
  POST /v1/shutdown      graceful shutdown
";

fn fail(message: &str) -> ! {
    eprintln!("mds-serve: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_config(args: impl Iterator<Item = String>) -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                let text = value("--workers")?;
                config.workers = text
                    .parse()
                    .map_err(|_| format!("--workers: invalid count '{text}'"))?;
            }
            "--queue-depth" => {
                let text = value("--queue-depth")?;
                config.queue_depth = text
                    .parse()
                    .map_err(|_| format!("--queue-depth: invalid count '{text}'"))?;
            }
            "--jobs" => {
                let text = value("--jobs")?;
                config.jobs =
                    Some(mds_runner::parse_jobs(&text).map_err(|e| format!("--jobs: {e}"))?);
            }
            "--quiet" => config.log = LogTarget::Discard,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(config)
}

fn main() {
    let config = match parse_config(std::env::args().skip(1)) {
        Ok(config) => config,
        Err(message) => fail(&message),
    };
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(message) => fail(&message),
    };
    println!("mds-serve listening on http://{}", server.local_addr());
    server.wait_for_shutdown();
    eprintln!("mds-serve: shutdown requested, draining");
    server.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_flag() {
        let config = parse_config(
            [
                "--addr",
                "0.0.0.0:0",
                "--workers",
                "8",
                "--queue-depth",
                "5",
                "--jobs",
                "3",
                "--quiet",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(config.addr, "0.0.0.0:0");
        assert_eq!(config.workers, 8);
        assert_eq!(config.queue_depth, 5);
        assert_eq!(config.jobs, Some(3));
        assert_eq!(config.log, LogTarget::Discard);
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse_config(["--port".to_string()].into_iter()).is_err());
        assert!(parse_config(["--workers".to_string()].into_iter()).is_err());
        let jobs = parse_config(["--jobs".to_string(), "0".to_string()].into_iter()).unwrap_err();
        assert!(jobs.starts_with("--jobs:"), "{jobs}");
    }
}
