//! `mds-serve` — the experiment-serving daemon.
//!
//! Binds, prints the listening address, and serves until a client posts
//! `/v1/shutdown` (the SIGTERM surrogate — plain `std` has no signal
//! handling), then drains in-flight work and exits 0.

use mds_serve::{LogTarget, Server, ServerConfig};
use std::path::PathBuf;

const USAGE: &str = "\
usage: mds-serve [options]

Serve paper experiments over HTTP/JSON.

options:
  --addr HOST:PORT   bind address (default 127.0.0.1:7878; port 0 = ephemeral)
  --workers N        connection-serving worker threads (default 4)
  --queue-depth N    admission queue capacity before 503 shedding (default 64)
  --jobs N           simulation worker threads (default: MDS_JOBS or all cores)
  --io MODEL         connection engine: 'epoll' (one event loop owns every
                     connection fd; default on Linux) or 'threads' (legacy
                     thread-per-connection pool, kept for one release)
  --store DIR        durable result store: prewarm the cache from DIR at boot
                     and persist every cache fill, so warm state survives
                     restarts (created if missing)
  --wdl FILE         register a WDL spec's generated workloads at boot so the
                     'wdl' experiment resolves over HTTP (repeatable)
  --wdl-seed N       family seed for --wdl expansion (default 0)
  --wdl-count K      members per scenario family (default 4)
  --quiet            discard the JSON access log (default: stderr)
  -h, --help         show this help

routes:
  POST /v1/experiments   run (or fetch) an experiment: {\"experiment\":\"fig5\",\"scale\":\"tiny\"}
  GET  /v1/experiments   list experiment ids and titles
  GET  /healthz          liveness probe (200 while the process serves)
  GET  /readyz           readiness probe (503 while saturated or draining)
  GET  /metrics          Prometheus text metrics
  GET  /v1/cache         export warm results (epoch-tagged; cluster handoff)
  POST /v1/cache         import warm results (409 on epoch mismatch)
  POST /v1/shutdown      graceful shutdown
";

fn fail(message: &str) -> ! {
    eprintln!("mds-serve: {message}\n\n{USAGE}");
    std::process::exit(2);
}

/// Everything the daemon needs: the server config plus boot-time WDL
/// registrations (which happen before `Server::start` so they fold into
/// the store epoch).
#[derive(Debug)]
struct Options {
    config: ServerConfig,
    wdl_files: Vec<String>,
    wdl_seed: u64,
    wdl_count: u32,
}

fn parse_options(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut options = Options {
        config: ServerConfig::default(),
        wdl_files: Vec::new(),
        wdl_seed: 0,
        wdl_count: 4,
    };
    let config = &mut options.config;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--workers" => {
                let text = value("--workers")?;
                config.workers = text
                    .parse()
                    .map_err(|_| format!("--workers: invalid count '{text}'"))?;
            }
            "--queue-depth" => {
                let text = value("--queue-depth")?;
                config.queue_depth = text
                    .parse()
                    .map_err(|_| format!("--queue-depth: invalid count '{text}'"))?;
            }
            "--jobs" => {
                let text = value("--jobs")?;
                config.jobs =
                    Some(mds_runner::parse_jobs(&text).map_err(|e| format!("--jobs: {e}"))?);
            }
            "--io" => {
                let text = value("--io")?;
                config.io = text.parse().map_err(|e| format!("--io: {e}"))?;
            }
            "--store" => config.store_dir = Some(PathBuf::from(value("--store")?)),
            "--wdl" => options.wdl_files.push(value("--wdl")?),
            "--wdl-seed" => {
                let text = value("--wdl-seed")?;
                options.wdl_seed = text
                    .parse()
                    .map_err(|_| format!("--wdl-seed: invalid seed '{text}'"))?;
            }
            "--wdl-count" => {
                let text = value("--wdl-count")?;
                options.wdl_count = text.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                    format!("--wdl-count: expected a positive integer, got '{text}'")
                })?;
            }
            "--quiet" => config.log = LogTarget::Discard,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(options)
}

/// Parses and registers every `--wdl` spec with the dynamic workload
/// registry, so the `wdl` experiment id resolves over HTTP. Must run
/// before `Server::start`: registered fingerprints are part of the
/// effective store epoch.
fn register_wdl_files(files: &[String], seed: u64, count: u32) -> Result<(), String> {
    for file in files {
        let src = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read WDL spec {file}: {e}"))?;
        let spec = mds_wdl::parse_spec(&src).map_err(|d| format!("{file}: {d}"))?;
        let workloads =
            mds_wdl::register_spec(&spec, seed, count).map_err(|d| format!("{file}: {d}"))?;
        eprintln!(
            "mds-serve: registered {} generated workload(s) from {file}",
            workloads.len()
        );
    }
    Ok(())
}

fn main() {
    let options = match parse_options(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => fail(&message),
    };
    if let Err(message) =
        register_wdl_files(&options.wdl_files, options.wdl_seed, options.wdl_count)
    {
        fail(&message);
    }
    let server = match Server::start(options.config) {
        Ok(server) => server,
        Err(message) => fail(&message),
    };
    println!("mds-serve listening on http://{}", server.local_addr());
    server.wait_for_shutdown();
    eprintln!("mds-serve: shutdown requested, draining");
    server.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_flag() {
        let options = parse_options(
            [
                "--addr",
                "0.0.0.0:0",
                "--workers",
                "8",
                "--queue-depth",
                "5",
                "--jobs",
                "3",
                "--io",
                "threads",
                "--store",
                "/tmp/mds-store",
                "--wdl",
                "a.wdl",
                "--wdl",
                "b.wdl",
                "--wdl-seed",
                "9",
                "--wdl-count",
                "2",
                "--quiet",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(options.config.addr, "0.0.0.0:0");
        assert_eq!(options.config.workers, 8);
        assert_eq!(options.config.queue_depth, 5);
        assert_eq!(options.config.jobs, Some(3));
        assert_eq!(options.config.io, mds_serve::IoModel::Threads);
        assert_eq!(
            options.config.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/mds-store"))
        );
        assert_eq!(options.wdl_files, ["a.wdl", "b.wdl"]);
        assert_eq!(options.wdl_seed, 9);
        assert_eq!(options.wdl_count, 2);
        assert_eq!(options.config.log, LogTarget::Discard);
    }

    #[test]
    fn rejects_bad_flags_and_values() {
        assert!(parse_options(["--port".to_string()].into_iter()).is_err());
        assert!(parse_options(["--workers".to_string()].into_iter()).is_err());
        assert!(parse_options(["--store".to_string()].into_iter()).is_err());
        let jobs = parse_options(["--jobs".to_string(), "0".to_string()].into_iter()).unwrap_err();
        assert!(jobs.starts_with("--jobs:"), "{jobs}");
        let count =
            parse_options(["--wdl-count".to_string(), "0".to_string()].into_iter()).unwrap_err();
        assert!(count.starts_with("--wdl-count:"), "{count}");
        let io = parse_options(["--io".to_string(), "kqueue".to_string()].into_iter()).unwrap_err();
        assert!(io.starts_with("--io:"), "{io}");
    }
}
