//! `mds-load` — closed-loop load generator for `mds-serve`.
//!
//! Runs N client threads against a server for a fixed duration and
//! reports throughput plus exact merged latency percentiles, as a human
//! summary or JSON.

use mds_serve::{print_report, run_load, LoadConfig};
use std::time::Duration;

const USAGE: &str = "\
usage: mds-load [options]

Offer closed-loop load to a running mds-serve and report throughput and
latency percentiles (p50/p95/p99).

options:
  --addr HOST:PORT     server address (default 127.0.0.1:7878)
  --clients N          concurrent client threads (default 4)
  --seconds S          run duration in seconds, fractions allowed (default 5)
  --experiment ID      experiment to request (default fig5)
  --scale NAME         tiny|small|full (default tiny)
  --fresh              bypass the server's result-cache read (cold path)
  --rate N             open-loop mode: offer N requests/second on a fixed
                       arrival schedule with unbounded outstanding requests
                       (ignores --clients; reports offered vs achieved rate)
  --idle N             park N idle keep-alive connections for the whole run
                       (each sends one priming request first; default 0)
  --json               emit the report as JSON instead of a summary line
  -h, --help           show this help
";

fn fail(message: &str) -> ! {
    eprintln!("mds-load: {message}\n\n{USAGE}");
    std::process::exit(2);
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<(LoadConfig, bool), String> {
    let mut config = LoadConfig::default();
    let mut json = false;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--clients" => {
                let text = value("--clients")?;
                config.clients = text
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--clients: invalid count '{text}'"))?;
            }
            "--seconds" => {
                let text = value("--seconds")?;
                let secs = text
                    .parse::<f64>()
                    .ok()
                    .filter(|s| s.is_finite() && *s > 0.0)
                    .ok_or_else(|| format!("--seconds: invalid duration '{text}'"))?;
                config.duration = Duration::from_secs_f64(secs);
            }
            "--experiment" => config.experiment = value("--experiment")?,
            "--scale" => config.scale = value("--scale")?,
            "--fresh" => config.fresh = true,
            "--rate" => {
                let text = value("--rate")?;
                let rate = text
                    .parse::<f64>()
                    .ok()
                    .filter(|r| r.is_finite() && *r > 0.0)
                    .ok_or_else(|| format!("--rate: invalid rate '{text}'"))?;
                config.rate = Some(rate);
            }
            "--idle" => {
                let text = value("--idle")?;
                config.idle = text
                    .parse::<usize>()
                    .map_err(|_| format!("--idle: invalid count '{text}'"))?;
            }
            "--json" => json = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok((config, json))
}

fn main() {
    let (config, json) = match parse_args(std::env::args().skip(1)) {
        Ok(parsed) => parsed,
        Err(message) => fail(&message),
    };
    let report = run_load(&config);
    print_report(&mut std::io::stdout(), &report, json);
    // No successful request at all means the server was unreachable or
    // rejecting everything — that is a failed run.
    if report.requests == 0 {
        eprintln!(
            "mds-load: no successful requests ({} errors, {} shed)",
            report.errors, report.shed
        );
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_flag() {
        let (config, json) = parse_args(
            [
                "--addr",
                "h:1",
                "--clients",
                "8",
                "--seconds",
                "0.5",
                "--experiment",
                "table1",
                "--scale",
                "small",
                "--fresh",
                "--rate",
                "250.5",
                "--idle",
                "250",
                "--json",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(config.addr, "h:1");
        assert_eq!(config.clients, 8);
        assert_eq!(config.duration, Duration::from_millis(500));
        assert_eq!(config.experiment, "table1");
        assert_eq!(config.scale, "small");
        assert!(config.fresh);
        assert_eq!(config.rate, Some(250.5));
        assert_eq!(config.idle, 250);
        assert!(json);
    }

    #[test]
    fn rejects_nonsense() {
        assert!(parse_args(["--clients".into(), "0".into()].into_iter()).is_err());
        assert!(parse_args(["--seconds".into(), "-1".into()].into_iter()).is_err());
        assert!(parse_args(["--idle".into(), "many".into()].into_iter()).is_err());
        assert!(parse_args(["--rate".into(), "0".into()].into_iter()).is_err());
        assert!(parse_args(["--rate".into(), "-3".into()].into_iter()).is_err());
        assert!(parse_args(["--rate".into(), "inf".into()].into_iter()).is_err());
        assert!(parse_args(["--bogus".into()].into_iter()).is_err());
    }
}
