//! A closed-loop load generator for the serving subsystem.
//!
//! N client threads each run a closed loop against one server: connect,
//! send a `POST /v1/experiments`, wait for the full response, repeat
//! until the deadline. Closed-loop means offered load adapts to server
//! latency (no coordinated-omission correction needed for the question
//! this answers: sustained throughput and the latency distribution under
//! a fixed concurrency level). Per-request latencies are merged across
//! threads into one sorted vector for exact percentiles.

use crate::http;
use mds_harness::json::Json;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// What load to offer, and where.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client threads (each one closed loop).
    pub clients: usize,
    /// How long to run.
    pub duration: Duration,
    /// The experiment id each request asks for.
    pub experiment: String,
    /// The scale each request asks for.
    pub scale: String,
    /// Send `"fresh": true` (bypass the server's result-cache read) —
    /// the cold path.
    pub fresh: bool,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            clients: 4,
            duration: Duration::from_secs(5),
            experiment: "fig5".to_string(),
            scale: "tiny".to_string(),
            fresh: false,
        }
    }
}

impl LoadConfig {
    /// The request body every client sends.
    fn body(&self) -> Vec<u8> {
        let mut doc = Json::object()
            .field("experiment", self.experiment.as_str())
            .field("scale", self.scale.as_str());
        if self.fresh {
            doc = doc.field("fresh", true);
        }
        doc.to_string().into_bytes()
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads used.
    pub clients: usize,
    /// Successful (2xx) requests completed.
    pub requests: u64,
    /// Failed requests: I/O errors, rejections, and non-2xx responses.
    pub errors: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-request latencies of successful requests, microseconds,
    /// sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// Successful requests per second over the whole run.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// The `p`-th percentile latency in microseconds (nearest-rank on the
    /// sorted vector); 0 when nothing succeeded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let n = self.latencies_us.len();
        if n == 0 {
            return 0;
        }
        let rank = (p / 100.0 * n as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, n) - 1]
    }

    /// Mean latency in microseconds; 0 when nothing succeeded.
    pub fn mean_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        self.latencies_us.iter().sum::<u64>() / self.latencies_us.len() as u64
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        Json::object()
            .field("clients", self.clients)
            .field("requests", self.requests)
            .field("errors", self.errors)
            .field("elapsed_s", self.elapsed.as_secs_f64())
            .field("rps", self.rps())
            .field(
                "latency_us",
                Json::object()
                    .field("min", self.latencies_us.first().copied().unwrap_or(0))
                    .field("mean", self.mean_us())
                    .field("p50", self.percentile_us(50.0))
                    .field("p95", self.percentile_us(95.0))
                    .field("p99", self.percentile_us(99.0))
                    .field("max", self.latencies_us.last().copied().unwrap_or(0)),
            )
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        format!(
            "clients {:>3}  requests {:>7}  errors {:>4}  elapsed {:>6.2}s  {:>9.1} req/s\n\
             latency  p50 {:>8} us  p95 {:>8} us  p99 {:>8} us  max {:>8} us",
            self.clients,
            self.requests,
            self.errors,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.percentile_us(50.0),
            self.percentile_us(95.0),
            self.percentile_us(99.0),
            self.latencies_us.last().copied().unwrap_or(0),
        )
    }
}

/// One client thread's closed loop: reconnecting keep-alive requests
/// until `deadline`. Returns `(latencies_us, errors)`.
fn client_loop(config: &LoadConfig, deadline: Instant) -> (Vec<u64>, u64) {
    let body = config.body();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    'reconnect: while Instant::now() < deadline {
        let Ok(mut stream) = TcpStream::connect(&config.addr) else {
            errors += 1;
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let _ = stream.set_read_timeout(Some(Duration::from_secs(60)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(60)));
        let _ = stream.set_nodelay(true);
        let mut reader = http::ResponseReader::new();
        loop {
            if Instant::now() >= deadline {
                break 'reconnect;
            }
            let started = Instant::now();
            if http::write_request(&mut stream, "POST", "/v1/experiments", &body).is_err() {
                errors += 1;
                continue 'reconnect;
            }
            let response = match reader.read_response(&mut stream) {
                Ok(response) => response,
                Err(_) => {
                    errors += 1;
                    continue 'reconnect;
                }
            };
            if (200..300).contains(&response.status) {
                latencies.push(started.elapsed().as_micros() as u64);
            } else {
                errors += 1;
                // A 503 shed closes the connection server-side; back off a
                // touch before hammering again.
                if response.status == 503 {
                    std::thread::sleep(Duration::from_millis(10));
                }
                continue 'reconnect;
            }
            let closing = matches!(
                response.header("connection"),
                Some(v) if v.eq_ignore_ascii_case("close")
            );
            if closing {
                continue 'reconnect;
            }
        }
    }
    (latencies, errors)
}

/// Runs the closed-loop load test and returns the merged report.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let deadline = started + config.duration;
    let handles: Vec<_> = (0..config.clients.max(1))
        .map(|i| {
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("mds-load-{i}"))
                .spawn(move || client_loop(&config, deadline))
                .expect("spawn load client")
        })
        .collect();
    let mut latencies = Vec::new();
    let mut errors = 0u64;
    for handle in handles {
        if let Ok((mut lat, errs)) = handle.join() {
            latencies.append(&mut lat);
            errors += errs;
        }
    }
    latencies.sort_unstable();
    LoadReport {
        clients: config.clients.max(1),
        requests: latencies.len() as u64,
        errors,
        elapsed: started.elapsed(),
        latencies_us: latencies,
    }
}

/// Writes the report to `out` (used by the `mds-load` binary).
pub fn print_report(out: &mut impl std::io::Write, report: &LoadReport, json: bool) {
    if json {
        let _ = writeln!(out, "{}", report.to_json().pretty());
    } else {
        let _ = writeln!(out, "{}", report.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<u64>) -> LoadReport {
        LoadReport {
            clients: 2,
            requests: latencies.len() as u64,
            errors: 1,
            elapsed: Duration::from_secs(2),
            latencies_us: latencies,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_vector() {
        let r = report((1..=100).collect());
        assert_eq!(r.percentile_us(50.0), 50);
        assert_eq!(r.percentile_us(95.0), 95);
        assert_eq!(r.percentile_us(99.0), 99);
        assert_eq!(r.percentile_us(100.0), 100);
        assert_eq!(r.mean_us(), 50);
        assert_eq!(r.rps(), 50.0);
    }

    #[test]
    fn empty_reports_do_not_divide_by_zero() {
        let r = report(Vec::new());
        assert_eq!(r.percentile_us(99.0), 0);
        assert_eq!(r.mean_us(), 0);
        assert_eq!(r.rps(), 0.0);
        let doc = r.to_json().to_string();
        assert!(doc.contains("\"requests\":0"), "{doc}");
    }
}
