//! A closed-loop load generator for the serving subsystem.
//!
//! N client threads each run a closed loop against one server: connect,
//! send a `POST /v1/experiments`, wait for the full response, repeat
//! until the deadline. Closed-loop means offered load adapts to server
//! latency (no coordinated-omission correction needed for the question
//! this answers: sustained throughput and the latency distribution under
//! a fixed concurrency level). Per-request latencies are merged across
//! threads into one sorted vector for exact percentiles.
//!
//! Backpressure is *honored*, not fought: a `503` shed is counted
//! separately from a failure, the client sleeps for the server's
//! `Retry-After` hint under a capped exponential backoff with
//! deterministic jitter (consecutive sheds double the wait, a success
//! resets it), and the re-issued request is counted as a retry. Hammering
//! a shedding server in a tight loop — the old behavior — only deepens
//! the overload it is reporting.
//!
//! `--rate N` switches to an **open loop**: arrivals follow a fixed
//! schedule (request `k` is due at `start + k/rate`) regardless of how
//! the server is doing, with unbounded outstanding requests — the
//! coordinated-omission-free shape. Latency is measured from each
//! request's *scheduled* arrival, so a stalled server is charged for the
//! queueing delay it caused, and the report states offered vs achieved
//! rate. Open-loop sheds are counted but never retried: the schedule is
//! the schedule.

use crate::client::Connection;
use crate::http::ClientResponse;
use mds_harness::backoff::Backoff;
use mds_harness::json::Json;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What load to offer, and where.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent client threads (each one closed loop).
    pub clients: usize,
    /// How long to run.
    pub duration: Duration,
    /// The experiment id each request asks for.
    pub experiment: String,
    /// The scale each request asks for.
    pub scale: String,
    /// Send `"fresh": true` (bypass the server's result-cache read) —
    /// the cold path.
    pub fresh: bool,
    /// Hard cap on the backoff delay after a `503` shed, whatever the
    /// server's `Retry-After` hint and however many sheds in a row.
    pub backoff_cap: Duration,
    /// Idle keep-alive connections parked for the whole run. Each sends
    /// one priming request before the measured window opens, then sits
    /// silent — the population an event-driven server must carry for
    /// free. Zero disables.
    pub idle: usize,
    /// Open-loop target arrival rate in requests/second. `None` runs the
    /// closed loop ([`Self::clients`] threads); `Some(rate)` dispatches
    /// on the fixed schedule with unbounded outstanding requests.
    pub rate: Option<f64>,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            clients: 4,
            duration: Duration::from_secs(5),
            experiment: "fig5".to_string(),
            scale: "tiny".to_string(),
            fresh: false,
            backoff_cap: Duration::from_secs(1),
            idle: 0,
            rate: None,
        }
    }
}

impl LoadConfig {
    /// The request body every client sends.
    fn body(&self) -> Vec<u8> {
        let mut doc = Json::object()
            .field("experiment", self.experiment.as_str())
            .field("scale", self.scale.as_str());
        if self.fresh {
            doc = doc.field("fresh", true);
        }
        doc.to_string().into_bytes()
    }
}

/// What one run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Client threads used.
    pub clients: usize,
    /// Successful (2xx) requests completed.
    pub requests: u64,
    /// Failed requests: I/O errors and non-2xx responses other than
    /// `503` sheds (which are backpressure, counted in [`Self::shed`]).
    pub errors: u64,
    /// `503` shed responses received (each one slept out its
    /// `Retry-After` under the capped, jittered backoff).
    pub shed: u64,
    /// Requests re-issued after a shed's backoff expired.
    pub retried: u64,
    /// Idle keep-alive connections successfully parked for the run.
    pub idle: u64,
    /// The open-loop target rate this run was offered at (`None` for a
    /// closed-loop run).
    pub rate: Option<f64>,
    /// Open-loop arrivals actually dispatched on the schedule (0 for a
    /// closed-loop run).
    pub offered: u64,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Per-request latencies of successful requests, microseconds,
    /// sorted ascending.
    pub latencies_us: Vec<u64>,
}

impl LoadReport {
    /// Successful requests per second over the whole run — the achieved
    /// rate, in open-loop terms.
    pub fn rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }

    /// Arrivals dispatched per second over the whole run — the offered
    /// rate an open-loop run actually managed (0 for closed loop).
    pub fn offered_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.offered as f64 / secs
        } else {
            0.0
        }
    }

    /// The `p`-th percentile latency in microseconds (nearest-rank on the
    /// sorted vector); 0 when nothing succeeded.
    pub fn percentile_us(&self, p: f64) -> u64 {
        let n = self.latencies_us.len();
        if n == 0 {
            return 0;
        }
        let rank = (p / 100.0 * n as f64).ceil() as usize;
        self.latencies_us[rank.clamp(1, n) - 1]
    }

    /// Mean latency in microseconds; 0 when nothing succeeded.
    pub fn mean_us(&self) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        self.latencies_us.iter().sum::<u64>() / self.latencies_us.len() as u64
    }

    /// The report as a JSON document.
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object().field(
            "mode",
            if self.rate.is_some() {
                "open"
            } else {
                "closed"
            },
        );
        if let Some(rate) = self.rate {
            doc = doc
                .field("rate_target", rate)
                .field("offered", self.offered)
                .field("offered_rps", self.offered_rps())
                .field("achieved_rps", self.rps());
        }
        doc.field("clients", self.clients)
            .field("requests", self.requests)
            .field("errors", self.errors)
            .field("shed", self.shed)
            .field("retried", self.retried)
            .field("idle", self.idle)
            .field("elapsed_s", self.elapsed.as_secs_f64())
            .field("rps", self.rps())
            .field(
                "latency_us",
                Json::object()
                    .field("min", self.latencies_us.first().copied().unwrap_or(0))
                    .field("mean", self.mean_us())
                    .field("p50", self.percentile_us(50.0))
                    .field("p95", self.percentile_us(95.0))
                    .field("p99", self.percentile_us(99.0))
                    .field("max", self.latencies_us.last().copied().unwrap_or(0)),
            )
    }

    /// A human-readable multi-line summary.
    pub fn render(&self) -> String {
        let mut lines = format!(
            "clients {:>3}  requests {:>7}  errors {:>4}  shed {:>4}  retried {:>4}  \
             elapsed {:>6.2}s  {:>9.1} req/s\n\
             latency  p50 {:>8} us  p95 {:>8} us  p99 {:>8} us  max {:>8} us",
            self.clients,
            self.requests,
            self.errors,
            self.shed,
            self.retried,
            self.elapsed.as_secs_f64(),
            self.rps(),
            self.percentile_us(50.0),
            self.percentile_us(95.0),
            self.percentile_us(99.0),
            self.latencies_us.last().copied().unwrap_or(0),
        );
        if let Some(rate) = self.rate {
            lines.push_str(&format!(
                "\nopen-loop  target {:>9.1} req/s  offered {:>9.1} req/s  \
                 achieved {:>9.1} req/s",
                rate,
                self.offered_rps(),
                self.rps(),
            ));
        }
        lines
    }
}

/// Per-thread tallies merged into the final report.
#[derive(Debug, Default)]
struct ClientTally {
    latencies: Vec<u64>,
    errors: u64,
    shed: u64,
    retried: u64,
}

/// Days since 1970-01-01 for a proleptic-Gregorian civil date; negative
/// for dates before the epoch. Howard Hinnant's `days_from_civil`.
fn days_from_civil(year: i64, month: u64, day: u64) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = y.div_euclid(400);
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = if month > 2 { month - 3 } else { month + 9 }; // Mar=0..Feb=11
    let doy = (153 * mp + 2) / 5 + day - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146097 + doe as i64 - 719_468
}

/// Unix seconds for an IMF-fixdate (`Sun, 06 Nov 1994 08:49:37 GMT`),
/// or `None` if the value isn't one. The weekday is ignored rather than
/// cross-checked — servers get it wrong, and it carries no information.
fn imf_fixdate_unix_secs(value: &str) -> Option<u64> {
    let rest = value.split_once(',')?.1.trim_start();
    let mut parts = rest.split_ascii_whitespace();
    let day: u64 = parts.next()?.parse().ok()?;
    let month = match parts.next()? {
        "Jan" => 1,
        "Feb" => 2,
        "Mar" => 3,
        "Apr" => 4,
        "May" => 5,
        "Jun" => 6,
        "Jul" => 7,
        "Aug" => 8,
        "Sep" => 9,
        "Oct" => 10,
        "Nov" => 11,
        "Dec" => 12,
        _ => return None,
    };
    let year: i64 = parts.next()?.parse().ok()?;
    let mut clock = parts.next()?.split(':');
    let hour: u64 = clock.next()?.parse().ok()?;
    let minute: u64 = clock.next()?.parse().ok()?;
    let second: u64 = clock.next()?.parse().ok()?;
    if clock.next().is_some() || parts.next()? != "GMT" || parts.next().is_some() {
        return None;
    }
    if !(1..=31).contains(&day) || hour > 23 || minute > 59 || second > 60 {
        return None;
    }
    let days = days_from_civil(year, month, day);
    if days < 0 {
        return None; // pre-epoch: nonsense as a retry hint
    }
    Some(days as u64 * 86_400 + hour * 3_600 + minute * 60 + second)
}

/// A `Retry-After` value as a wait, or `None` for anything unusable.
/// RFC 9110 allows two shapes — delay-seconds and an IMF-fixdate — and
/// broken servers emit plenty of others, so parse defensively: trim,
/// accept non-negative integral seconds, convert a date to its delta
/// from `now_unix_secs` (zero if already past), and treat everything
/// else (negative, fractional, words, absurd overflow) as absent. The
/// caller still clamps to its cap, so even a parseable-but-absurd value
/// can never stall a client.
fn parse_retry_after(value: &str, now_unix_secs: u64) -> Option<Duration> {
    let value = value.trim();
    if value.is_empty() {
        return None;
    }
    if value.bytes().all(|b| b.is_ascii_digit()) {
        // u64::MAX has 20 digits; anything longer is garbage, and a
        // 20-digit overflow fails the parse rather than panicking.
        return value.parse::<u64>().ok().map(Duration::from_secs);
    }
    let due = imf_fixdate_unix_secs(value)?;
    Some(Duration::from_secs(due.saturating_sub(now_unix_secs)))
}

/// The backoff delay for a `503`: the server's `Retry-After` hint (or
/// the schedule's base when absent) scaled by the consecutive-shed
/// exponential, capped, jittered.
fn shed_delay(response: &ClientResponse, backoff: &mut Backoff, cap: Duration) -> Duration {
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let hint = response
        .header("retry-after")
        .and_then(|v| parse_retry_after(v, now));
    match hint {
        // `Backoff` owns doubling; fold the hint in as a floor so the
        // first retry already respects the server's ask (capped).
        Some(hint) => backoff.next_delay().max(hint.min(cap)).min(cap),
        None => backoff.next_delay().min(cap),
    }
}

/// One client thread's closed loop: reconnecting keep-alive requests
/// until `deadline`.
fn client_loop(config: &LoadConfig, seed: u64, deadline: Instant) -> ClientTally {
    let body = config.body();
    let mut tally = ClientTally::default();
    // Base 100ms: sheds without a Retry-After hint still back off.
    let mut backoff = Backoff::new(Duration::from_millis(100), config.backoff_cap, seed);
    let mut pending_retry = false;
    'reconnect: while Instant::now() < deadline {
        let Ok(mut conn) = Connection::connect(
            &config.addr,
            Duration::from_secs(5),
            Duration::from_secs(60),
        ) else {
            tally.errors += 1;
            std::thread::sleep(Duration::from_millis(5));
            continue;
        };
        let mut served_on_conn = 0u64;
        loop {
            if Instant::now() >= deadline {
                break 'reconnect;
            }
            if pending_retry {
                pending_retry = false;
                tally.retried += 1;
            }
            let started = Instant::now();
            let response = match conn.send("POST", "/v1/experiments", &body) {
                Ok(response) => response,
                Err(_) => {
                    // A reused keep-alive connection can die between
                    // requests: the server is entitled to close a
                    // persistent connection at any quiet moment, and the
                    // close races our next send. RFC 9112 §9.6 says a
                    // client should retry on a fresh connection, not
                    // report a failure — only an error on a *fresh*
                    // connection (no request served yet) counts.
                    if served_on_conn == 0 {
                        tally.errors += 1;
                    }
                    continue 'reconnect;
                }
            };
            if (200..300).contains(&response.status) {
                served_on_conn += 1;
                tally.latencies.push(started.elapsed().as_micros() as u64);
                backoff.reset();
            } else if response.status == 503 {
                // Backpressure: honor Retry-After with capped, jittered,
                // consecutive-shed-doubling backoff, then retry. A shed
                // closes the connection server-side, so reconnect.
                tally.shed += 1;
                let delay = shed_delay(&response, &mut backoff, config.backoff_cap);
                let now = Instant::now();
                if now >= deadline {
                    break 'reconnect;
                }
                std::thread::sleep(delay.min(deadline - now));
                pending_retry = true;
                continue 'reconnect;
            } else {
                tally.errors += 1;
                continue 'reconnect;
            }
            if Connection::must_close(&response) {
                continue 'reconnect;
            }
        }
    }
    tally
}

/// One open-loop request on its own fresh connection. Latency is charged
/// from the *scheduled* arrival `due`, not from when the send finally
/// happened — the coordinated-omission-free measure.
fn open_shot(addr: &str, body: &[u8], due: Instant, tally: &Mutex<ClientTally>) {
    let outcome = Connection::connect(addr, Duration::from_secs(5), Duration::from_secs(60))
        .ok()
        .and_then(|mut conn| conn.send("POST", "/v1/experiments", body).ok());
    let mut tally = tally.lock().unwrap_or_else(PoisonError::into_inner);
    match outcome {
        Some(response) if (200..300).contains(&response.status) => {
            tally.latencies.push(due.elapsed().as_micros() as u64);
        }
        Some(response) if response.status == 503 => tally.shed += 1,
        _ => tally.errors += 1,
    }
}

/// The open-loop dispatcher: walks the fixed arrival schedule, spawning
/// one detached-until-joined worker per arrival. Outstanding requests are
/// unbounded by design — a slow server accumulates them instead of
/// slowing the offered load.
fn run_open_loop(config: &LoadConfig, rate: f64, idle: u64) -> LoadReport {
    let body: Arc<Vec<u8>> = Arc::new(config.body());
    let addr: Arc<String> = Arc::new(config.addr.clone());
    let tally: Arc<Mutex<ClientTally>> = Arc::new(Mutex::new(ClientTally::default()));
    let started = Instant::now();
    let deadline = started + config.duration;
    let interval = Duration::from_secs_f64(1.0 / rate.max(f64::MIN_POSITIVE));
    let mut offered = 0u64;
    let mut handles = Vec::new();
    loop {
        // The schedule never adapts: arrival k is due at start + k/rate
        // even if earlier arrivals are still outstanding.
        let due = started + interval.mul_f64(offered as f64);
        if due >= deadline {
            break;
        }
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        offered += 1;
        let body = Arc::clone(&body);
        let addr = Arc::clone(&addr);
        let worker_tally = Arc::clone(&tally);
        let spawned = std::thread::Builder::new()
            .name(format!("mds-load-open-{offered}"))
            .spawn(move || open_shot(&addr, &body, due, &worker_tally));
        match spawned {
            Ok(handle) => handles.push(handle),
            // Thread exhaustion is a failed arrival, not a skipped one.
            Err(_) => tally.lock().unwrap_or_else(PoisonError::into_inner).errors += 1,
        }
    }
    for handle in handles {
        let _ = handle.join();
    }
    let elapsed = started.elapsed();
    let mut tally = match Arc::try_unwrap(tally) {
        Ok(mutex) => mutex.into_inner().unwrap_or_else(PoisonError::into_inner),
        Err(_) => unreachable!("all workers joined"),
    };
    tally.latencies.sort_unstable();
    LoadReport {
        clients: config.clients.max(1),
        requests: tally.latencies.len() as u64,
        errors: tally.errors,
        shed: tally.shed,
        retried: 0,
        idle,
        rate: Some(rate),
        offered,
        elapsed,
        latencies_us: tally.latencies,
    }
}

/// Runs the load test — closed loop, or open loop when
/// [`LoadConfig::rate`] is set — and returns the merged report.
pub fn run_load(config: &LoadConfig) -> LoadReport {
    // Park the idle fleet *before* the measured window opens, so every
    // sample sees the server already carrying `idle` quiet keep-alive
    // connections. Each idler completes one real request first — a
    // connection that never spoke is a different (cheaper) population
    // than a keep-alive client between requests.
    let idlers: Vec<Connection> = (0..config.idle)
        .filter_map(|_| {
            let mut conn = Connection::connect(
                &config.addr,
                Duration::from_secs(5),
                Duration::from_secs(60),
            )
            .ok()?;
            let response = conn.send("GET", "/healthz", b"").ok()?;
            ((200..300).contains(&response.status)).then_some(conn)
        })
        .collect();
    let idle = idlers.len() as u64;
    if let Some(rate) = config.rate.filter(|r| r.is_finite() && *r > 0.0) {
        let report = run_open_loop(config, rate, idle);
        drop(idlers);
        return report;
    }
    let started = Instant::now();
    let deadline = started + config.duration;
    let handles: Vec<_> = (0..config.clients.max(1))
        .map(|i| {
            let config = config.clone();
            std::thread::Builder::new()
                .name(format!("mds-load-{i}"))
                .spawn(move || client_loop(&config, i as u64, deadline))
                .expect("spawn load client")
        })
        .collect();
    let mut latencies = Vec::new();
    let (mut errors, mut shed, mut retried) = (0u64, 0u64, 0u64);
    for handle in handles {
        if let Ok(mut tally) = handle.join() {
            latencies.append(&mut tally.latencies);
            errors += tally.errors;
            shed += tally.shed;
            retried += tally.retried;
        }
    }
    latencies.sort_unstable();
    let elapsed = started.elapsed();
    drop(idlers);
    LoadReport {
        clients: config.clients.max(1),
        requests: latencies.len() as u64,
        errors,
        shed,
        retried,
        idle,
        rate: None,
        offered: 0,
        elapsed,
        latencies_us: latencies,
    }
}

/// Writes the report to `out` (used by the `mds-load` binary).
pub fn print_report(out: &mut impl std::io::Write, report: &LoadReport, json: bool) {
    if json {
        let _ = writeln!(out, "{}", report.to_json().pretty());
    } else {
        let _ = writeln!(out, "{}", report.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(latencies: Vec<u64>) -> LoadReport {
        LoadReport {
            clients: 2,
            requests: latencies.len() as u64,
            errors: 1,
            shed: 3,
            retried: 2,
            idle: 0,
            rate: None,
            offered: 0,
            elapsed: Duration::from_secs(2),
            latencies_us: latencies,
        }
    }

    #[test]
    fn percentiles_use_nearest_rank_on_the_sorted_vector() {
        let r = report((1..=100).collect());
        assert_eq!(r.percentile_us(50.0), 50);
        assert_eq!(r.percentile_us(95.0), 95);
        assert_eq!(r.percentile_us(99.0), 99);
        assert_eq!(r.percentile_us(100.0), 100);
        assert_eq!(r.mean_us(), 50);
        assert_eq!(r.rps(), 50.0);
    }

    #[test]
    fn empty_reports_do_not_divide_by_zero() {
        let r = report(Vec::new());
        assert_eq!(r.percentile_us(99.0), 0);
        assert_eq!(r.mean_us(), 0);
        assert_eq!(r.rps(), 0.0);
        let doc = r.to_json().to_string();
        assert!(doc.contains("\"requests\":0"), "{doc}");
    }

    #[test]
    fn reports_carry_shed_and_retry_counts() {
        let r = report(vec![10, 20]);
        let doc = r.to_json().to_string();
        assert!(doc.contains("\"shed\":3"), "{doc}");
        assert!(doc.contains("\"retried\":2"), "{doc}");
        let line = r.render();
        assert!(line.contains("shed    3"), "{line}");
        assert!(line.contains("retried    2"), "{line}");
    }

    #[test]
    fn open_loop_reports_offered_vs_achieved_rate() {
        let mut r = report(vec![100, 200, 300, 400]);
        r.rate = Some(10.0);
        r.offered = 10; // 10 arrivals over 2s: offered 5/s, achieved 2/s
        assert_eq!(r.offered_rps(), 5.0);
        assert_eq!(r.rps(), 2.0);
        let doc = r.to_json().to_string();
        assert!(doc.contains("\"mode\":\"open\""), "{doc}");
        assert!(doc.contains("\"rate_target\":10"), "{doc}");
        assert!(doc.contains("\"offered\":10"), "{doc}");
        assert!(doc.contains("\"offered_rps\":5"), "{doc}");
        assert!(doc.contains("\"achieved_rps\":2"), "{doc}");
        let line = r.render();
        assert!(line.contains("open-loop"), "{line}");
        assert!(line.contains("offered"), "{line}");
        assert!(line.contains("achieved"), "{line}");
        // Closed-loop reports say so and carry no rate noise.
        let closed = report(vec![100]).to_json().to_string();
        assert!(closed.contains("\"mode\":\"closed\""), "{closed}");
        assert!(!closed.contains("offered_rps"), "{closed}");
        assert!(!report(vec![100]).render().contains("open-loop"));
    }

    #[test]
    fn shed_delay_honors_capped_retry_after_with_jitter() {
        let cap = Duration::from_millis(400);
        let shed = |retry_after: Option<&str>, backoff: &mut Backoff| {
            let mut headers = Vec::new();
            if let Some(v) = retry_after {
                headers.push(("retry-after".to_string(), v.to_string()));
            }
            let response = ClientResponse {
                status: 503,
                headers,
                body: Vec::new(),
            };
            shed_delay(&response, backoff, cap)
        };

        let fresh = || Backoff::new(Duration::from_millis(100), cap, 9);

        let mut b = fresh();
        // Retry-After: 1 (second) is floored in but capped at 400ms.
        let first = shed(Some("1"), &mut b);
        assert_eq!(first, cap, "hint beyond the cap clamps to the cap");
        // Consecutive sheds without a hint follow the jittered schedule.
        let mut b = fresh();
        let d1 = shed(None, &mut b);
        let d2 = shed(None, &mut b);
        assert!(d1 >= Duration::from_millis(50) && d1 <= Duration::from_millis(100));
        assert!(d2 >= Duration::from_millis(100) && d2 <= Duration::from_millis(200));
        // Unparseable hints fall back to the schedule.
        let mut b = fresh();
        let d = shed(Some("soon"), &mut b);
        assert!(d <= Duration::from_millis(100));
        // An absurdly large hint is still clamped to the cap.
        let mut b = fresh();
        assert_eq!(shed(Some("18446744073709551615"), &mut b), cap);
    }

    #[test]
    fn retry_after_parses_delay_seconds_defensively() {
        let now = 1_000_000;
        let parse = |v: &str| parse_retry_after(v, now);
        assert_eq!(parse("0"), Some(Duration::ZERO));
        assert_eq!(parse("  120  "), Some(Duration::from_secs(120)));
        // Absurdly large values parse (the caller clamps them)…
        assert_eq!(
            parse("18446744073709551615"),
            Some(Duration::from_secs(u64::MAX))
        );
        // …but overflow, signs, fractions, and words are all "absent".
        assert_eq!(parse("184467440737095516150"), None);
        assert_eq!(parse("-5"), None);
        assert_eq!(parse("1.5"), None);
        assert_eq!(parse("+30"), None);
        assert_eq!(parse("soon"), None);
        assert_eq!(parse(""), None);
        assert_eq!(parse("   "), None);
        assert_eq!(parse("30 seconds"), None);
    }

    #[test]
    fn retry_after_parses_http_dates_as_a_delta_from_now() {
        // Sun, 06 Nov 1994 08:49:37 GMT — RFC 9110's worked example.
        let date = "Sun, 06 Nov 1994 08:49:37 GMT";
        let unix = imf_fixdate_unix_secs(date).unwrap();
        assert_eq!(unix, 784_111_777);
        // A date 90s in the future waits 90s; a past date waits zero
        // (retry immediately — the moment has passed, not an error).
        assert_eq!(
            parse_retry_after(date, unix - 90),
            Some(Duration::from_secs(90))
        );
        assert_eq!(parse_retry_after(date, unix + 5), Some(Duration::ZERO));
        // The weekday token is not cross-checked against the date.
        assert_eq!(
            imf_fixdate_unix_secs("Mon, 06 Nov 1994 08:49:37 GMT"),
            Some(unix)
        );
        // Malformed dates are "absent", not a panic or a huge wait.
        for bad in [
            "Sun, 06 Nov 1994 08:49:37",          // missing GMT
            "Sun, 06 Nov 1994 08:49:37 PST",      // wrong zone
            "Sun, 06 Foo 1994 08:49:37 GMT",      // bad month
            "Sun, 40 Nov 1994 08:49:37 GMT",      // bad day
            "Sun, 06 Nov 1994 25:49:37 GMT",      // bad hour
            "Sun, 06 Nov 1969 08:49:37 GMT",      // pre-epoch
            "Sun, 06 Nov 1994 08:49:37 GMT junk", // trailing junk
            "06 Nov 1994 08:49:37 GMT",           // no weekday comma
        ] {
            assert_eq!(parse_retry_after(bad, 0), None, "{bad}");
        }
    }

    #[test]
    fn days_from_civil_matches_known_anchors() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        assert_eq!(days_from_civil(2000, 3, 1), 11_017); // leap-year Feb
        assert_eq!(days_from_civil(2026, 8, 9), 20_674);
    }
}
