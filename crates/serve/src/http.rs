//! A minimal HTTP/1.1 wire layer over `std::io` streams.
//!
//! Only what the serving subsystem needs: request-line + header parsing
//! with hard size limits, `Content-Length` bodies (no chunked transfer
//! coding), keep-alive negotiation, and a deterministic response writer.
//! The same head parser serves both sides: the server reads requests and
//! the load generator reads responses.
//!
//! Reads are buffered per connection: [`RequestReader`] (and its client
//! twin [`ResponseReader`]) own a carry buffer, so bytes that arrive in
//! the same packet as a previous message — pipelined requests, or a body
//! followed immediately by the next head — are consumed by the *next*
//! parse instead of being thrown away. The one-shot [`read_request`] /
//! [`read_response`] helpers wrap a fresh reader for single-message
//! streams (tests, probes).

use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Hard limits applied while reading a request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum bytes of request body (`Content-Length`).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 64 * 1024,
        }
    }
}

/// The HTTP protocol version of a request, as sent on the request line.
/// Keep-alive defaults differ: HTTP/1.1 persists unless told otherwise,
/// HTTP/1.0 closes unless told otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Version {
    /// `HTTP/1.0` — connections close by default.
    Http10,
    /// `HTTP/1.1` (and any other `HTTP/1.x`) — connections persist by
    /// default.
    Http11,
}

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The request method, uppercase as sent (`GET`, `POST`, ...).
    pub method: String,
    /// The request target (path plus optional query), as sent.
    pub target: String,
    /// The protocol version from the request line.
    pub version: Version,
    /// Header `(name, value)` pairs; names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to keep the connection open. HTTP/1.1
    /// defaults to yes unless `Connection: close`; HTTP/1.0 defaults to
    /// no unless `Connection: keep-alive`.
    pub fn wants_keep_alive(&self) -> bool {
        match self.version {
            Version::Http11 => {
                !matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("close"))
            }
            Version::Http10 => {
                matches!(self.header("connection"), Some(v) if v.eq_ignore_ascii_case("keep-alive"))
            }
        }
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before sending a request.
    Closed,
    /// The read timed out (idle keep-alive connection).
    TimedOut,
    /// The total header deadline expired before a complete head arrived
    /// (slow-loris trickle). Answered with `408` then close, unlike
    /// [`ReadError::TimedOut`] which drops the connection silently.
    HeaderTimeout,
    /// The head exceeded [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// The declared body exceeded [`Limits::max_body_bytes`].
    BodyTooLarge,
    /// The bytes were not parseable HTTP.
    Malformed(&'static str),
    /// Any other I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Closed => write!(f, "connection closed"),
            ReadError::TimedOut => write!(f, "read timed out"),
            ReadError::HeaderTimeout => write!(f, "header deadline expired"),
            ReadError::HeadTooLarge => write!(f, "request head too large"),
            ReadError::BodyTooLarge => write!(f, "request body too large"),
            ReadError::Malformed(why) => write!(f, "malformed request: {why}"),
            ReadError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

fn map_io(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::TimedOut,
        io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// Byte offset just past the `\r\n\r\n` terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|p| p + 4)
}

/// Reads from `stream` into `buf` until a complete head (through the
/// blank line) is buffered, then removes and returns exactly the head
/// bytes. Anything after the head stays in `buf` for the body / the next
/// message.
fn take_head(buf: &mut Vec<u8>, stream: &mut impl Read, max: usize) -> Result<Vec<u8>, ReadError> {
    let mut chunk = [0u8; 1024];
    loop {
        if let Some(end) = find_head_end(buf) {
            if end > max {
                return Err(ReadError::HeadTooLarge);
            }
            let rest = buf.split_off(end);
            return Ok(std::mem::replace(buf, rest));
        }
        if buf.len() >= max {
            return Err(ReadError::HeadTooLarge);
        }
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return if buf.is_empty() {
                Err(ReadError::Closed)
            } else {
                Err(ReadError::Malformed("truncated head"))
            };
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

/// Reads from `stream` into `buf` until `declared` body bytes are
/// buffered, then removes and returns exactly those bytes. Pipelined
/// bytes beyond the body stay in `buf`.
fn take_body(
    buf: &mut Vec<u8>,
    stream: &mut impl Read,
    declared: usize,
) -> Result<Vec<u8>, ReadError> {
    let mut chunk = [0u8; 4096];
    while buf.len() < declared {
        let n = stream.read(&mut chunk).map_err(map_io)?;
        if n == 0 {
            return Err(ReadError::Malformed("truncated body"));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
    let rest = buf.split_off(declared);
    Ok(std::mem::replace(buf, rest))
}

/// Parses `name: value` header lines out of a head (everything after the
/// first line). Names are lowercased.
fn parse_headers(lines: &str) -> Result<Vec<(String, String)>, ReadError> {
    let mut headers = Vec::new();
    for line in lines.split("\r\n").filter(|l| !l.is_empty()) {
        let (name, value) = line
            .split_once(':')
            .ok_or(ReadError::Malformed("header without ':'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(headers)
}

/// The declared body length across every `Content-Length` header.
/// Repeating the same value is tolerated (some proxies do); *differing*
/// values are the classic request-smuggling shape and are rejected.
fn declared_length(headers: &[(String, String)]) -> Result<usize, ReadError> {
    let mut declared: Option<usize> = None;
    for (name, value) in headers {
        if name != "content-length" {
            continue;
        }
        let v = value
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed("bad content-length"))?;
        if declared.is_some_and(|prev| prev != v) {
            return Err(ReadError::Malformed("conflicting content-length headers"));
        }
        declared = Some(v);
    }
    Ok(declared.unwrap_or(0))
}

/// Parses the head bytes (request line + headers) into a body-less
/// [`Request`].
fn parse_request_head(head: &[u8]) -> Result<Request, ReadError> {
    let head = std::str::from_utf8(head).map_err(|_| ReadError::Malformed("non-UTF-8 head"))?;
    let (request_line, header_lines) = head
        .split_once("\r\n")
        .ok_or(ReadError::Malformed("missing request line"))?;
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts
        .next()
        .ok_or(ReadError::Malformed("missing target"))?
        .to_string();
    let version = match parts
        .next()
        .ok_or(ReadError::Malformed("missing version"))?
    {
        "HTTP/1.0" => Version::Http10,
        v if v.starts_with("HTTP/1.") => Version::Http11,
        _ => return Err(ReadError::Malformed("unsupported HTTP version")),
    };
    let headers = parse_headers(header_lines)?;
    Ok(Request {
        method,
        target,
        version,
        headers,
        body: Vec::new(),
    })
}

/// The outcome of one [`RequestReader::fill_from`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// This many bytes were appended to the carry buffer.
    Data(usize),
    /// The read would block (non-blocking socket) or hit its per-read
    /// timeout (blocking socket) — no bytes arrived.
    Blocked,
    /// The peer half-closed: no more bytes will ever arrive.
    Eof,
}

/// A parsed head whose declared body has not fully arrived yet.
#[derive(Debug)]
struct PendingHead {
    request: Request,
    declared: usize,
}

/// Server-side connection reader: parses a stream of requests, carrying
/// bytes that arrive beyond each message (pipelined requests) over to the
/// next call instead of discarding them.
///
/// Two usage styles share one parser:
/// - **Blocking** ([`RequestReader::read_request`]): loop fill + parse
///   until a request completes, mapping blocked reads to
///   [`ReadError::TimedOut`].
/// - **Incremental** ([`RequestReader::fill_from`] +
///   [`RequestReader::try_parse`]): the event-driven connection state
///   machine feeds readiness-gated reads in and polls for complete
///   requests; a partially received head or body is held across calls in
///   [`PendingHead`] / the carry buffer.
#[derive(Debug, Default)]
pub struct RequestReader {
    buf: Vec<u8>,
    pending: Option<PendingHead>,
}

impl RequestReader {
    /// A reader with an empty carry buffer.
    pub fn new() -> RequestReader {
        RequestReader::default()
    }

    /// Bytes received but not yet consumed by a parsed message.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether any part of a request (head bytes or a parsed-but-bodyless
    /// head) has been received and not yet returned. Distinguishes a
    /// clean end-of-stream from a truncated message.
    pub fn has_partial(&self) -> bool {
        self.pending.is_some() || !self.buf.is_empty()
    }

    /// Whether the next request's head is still incomplete — the window
    /// the total header deadline applies to. False once the head parsed
    /// (body bytes are governed by the per-read timeout instead).
    pub fn head_pending(&self) -> bool {
        self.pending.is_none()
    }

    /// Performs one `read` from `stream` into the carry buffer.
    ///
    /// `WouldBlock`/`TimedOut` become [`Fill::Blocked`], a zero-length
    /// read becomes [`Fill::Eof`], and `Interrupted` is retried.
    ///
    /// # Errors
    ///
    /// [`ReadError::Closed`] on connection reset, [`ReadError::Io`] on
    /// any other failure.
    pub fn fill_from(&mut self, stream: &mut impl Read) -> Result<Fill, ReadError> {
        let mut chunk = [0u8; 4096];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(Fill::Eof),
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(Fill::Data(n));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    return Ok(Fill::Blocked)
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::UnexpectedEof | io::ErrorKind::ConnectionReset
                    ) =>
                {
                    return Err(ReadError::Closed)
                }
                Err(e) => return Err(ReadError::Io(e)),
            }
        }
    }

    /// Attempts to parse a complete request out of the carry buffer
    /// without touching the stream. `Ok(None)` means more bytes are
    /// needed; partially parsed state (a complete head awaiting its
    /// body) is retained for the next call.
    ///
    /// # Errors
    ///
    /// Limit violations and malformed bytes, as for
    /// [`RequestReader::read_request`]. Errors are terminal for the
    /// connection: the reader's state is unspecified afterwards.
    pub fn try_parse(&mut self, limits: Limits) -> Result<Option<Request>, ReadError> {
        if self.pending.is_none() {
            let Some(end) = find_head_end(&self.buf) else {
                if self.buf.len() >= limits.max_head_bytes {
                    return Err(ReadError::HeadTooLarge);
                }
                return Ok(None);
            };
            if end > limits.max_head_bytes {
                return Err(ReadError::HeadTooLarge);
            }
            let rest = self.buf.split_off(end);
            let head = std::mem::replace(&mut self.buf, rest);
            let request = parse_request_head(&head)?;
            if request.header("transfer-encoding").is_some() {
                return Err(ReadError::Malformed("chunked bodies are not supported"));
            }
            let declared = declared_length(&request.headers)?;
            if declared > limits.max_body_bytes {
                return Err(ReadError::BodyTooLarge);
            }
            self.pending = Some(PendingHead { request, declared });
        }
        let declared = self.pending.as_ref().map_or(0, |p| p.declared);
        if self.buf.len() < declared {
            return Ok(None);
        }
        let PendingHead {
            mut request,
            declared,
        } = self.pending.take().expect("pending head present");
        let rest = self.buf.split_off(declared);
        request.body = std::mem::replace(&mut self.buf, rest);
        Ok(Some(request))
    }

    /// Reads and parses the next request on this connection.
    ///
    /// # Errors
    ///
    /// [`ReadError::Closed`] at a clean end-of-stream between requests;
    /// the other variants for limit violations, malformed bytes, and I/O
    /// failures.
    pub fn read_request(
        &mut self,
        stream: &mut impl Read,
        limits: Limits,
    ) -> Result<Request, ReadError> {
        loop {
            if let Some(request) = self.try_parse(limits)? {
                return Ok(request);
            }
            match self.fill_from(stream)? {
                Fill::Data(_) => {}
                Fill::Blocked => return Err(ReadError::TimedOut),
                Fill::Eof => {
                    return Err(if self.pending.is_some() {
                        ReadError::Malformed("truncated body")
                    } else if self.buf.is_empty() {
                        ReadError::Closed
                    } else {
                        ReadError::Malformed("truncated head")
                    })
                }
            }
        }
    }
}

/// Reads the next request from a blocking [`std::net::TcpStream`],
/// bounding the time from the first head byte to a complete head by
/// `header_timeout` while body bytes keep the plain per-read
/// `read_timeout`.
///
/// This is the threaded-path fix for the slow-loris hole: the per-read
/// timeout used to reset on every successful byte, so a client trickling
/// one header byte per timeout-interval held its worker forever. The
/// deadline arms when the first head byte arrives (an idle keep-alive
/// wait is *not* counted against it) and expiry reports
/// [`ReadError::HeaderTimeout`] so the caller can answer `408`.
///
/// The stream's read timeout is restored to `read_timeout` before
/// returning on **every** path — success, timeout, parse error, or I/O
/// failure — by funnelling all exits through a single restore point, so
/// no caller can observe a stale sub-second timeout armed by this call.
///
/// # Errors
///
/// As [`RequestReader::read_request`], plus [`ReadError::HeaderTimeout`].
pub fn read_request_deadline(
    reader: &mut RequestReader,
    stream: &mut std::net::TcpStream,
    limits: Limits,
    read_timeout: Duration,
    header_timeout: Duration,
) -> Result<Request, ReadError> {
    let result = read_request_deadline_inner(reader, stream, limits, read_timeout, header_timeout);
    // The single restore point: every exit path above runs through here.
    let _ = stream.set_read_timeout(Some(read_timeout));
    result
}

fn read_request_deadline_inner(
    reader: &mut RequestReader,
    stream: &mut std::net::TcpStream,
    limits: Limits,
    read_timeout: Duration,
    header_timeout: Duration,
) -> Result<Request, ReadError> {
    // Pipelined head bytes already buffered start the clock immediately;
    // otherwise it arms when the first byte of the next head arrives.
    let mut head_deadline: Option<Instant> =
        (reader.head_pending() && reader.has_partial()).then(|| Instant::now() + header_timeout);
    loop {
        if let Some(request) = reader.try_parse(limits)? {
            return Ok(request);
        }
        if !reader.head_pending() {
            // Head complete: the deadline no longer applies, and must not
            // misattribute a later body timeout to the header clock.
            head_deadline = None;
        }
        let per_read = if reader.head_pending() {
            match head_deadline {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ReadError::HeaderTimeout);
                    }
                    (deadline - now).min(read_timeout)
                }
                None => read_timeout,
            }
        } else {
            read_timeout
        };
        stream
            .set_read_timeout(Some(per_read.max(Duration::from_millis(1))))
            .map_err(ReadError::Io)?;
        match reader.fill_from(stream)? {
            Fill::Data(_) => {
                if head_deadline.is_none() && reader.head_pending() {
                    head_deadline = Some(Instant::now() + header_timeout);
                }
            }
            Fill::Blocked => {
                return Err(
                    if head_deadline.is_some_and(|deadline| Instant::now() >= deadline) {
                        ReadError::HeaderTimeout
                    } else {
                        ReadError::TimedOut
                    },
                )
            }
            Fill::Eof => {
                return Err(if !reader.head_pending() {
                    ReadError::Malformed("truncated body")
                } else if reader.buffered() == 0 {
                    ReadError::Closed
                } else {
                    ReadError::Malformed("truncated head")
                })
            }
        }
    }
}

/// Reads and parses one request from `stream` (fresh single-use reader;
/// pipelined bytes beyond the first message are dropped with it).
pub fn read_request(stream: &mut impl Read, limits: Limits) -> Result<Request, ReadError> {
    RequestReader::new().read_request(stream, limits)
}

/// An outgoing HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    /// An empty response with the given status.
    pub fn new(status: u16) -> Response {
        Response {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// A `application/json` response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .header("content-type", "application/json")
            .body(body)
    }

    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Response {
        Response::new(status)
            .header("content-type", "text/plain; charset=utf-8")
            .body(body)
    }

    /// Adds a header.
    pub fn header(mut self, name: &str, value: &str) -> Response {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Sets the body.
    pub fn body(mut self, body: impl Into<Vec<u8>>) -> Response {
        self.body = body.into();
        self
    }

    /// The status code.
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The body length in bytes.
    pub fn body_len(&self) -> usize {
        self.body.len()
    }

    /// Serializes the response, adding `Content-Length` and a
    /// `Connection` header reflecting `keep_alive`.
    ///
    /// Head and body go out in a single write: two writes per response
    /// interact with Nagle's algorithm and delayed ACKs to add tens of
    /// milliseconds per round trip on real sockets.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let reason = reason_phrase(self.status);
        let mut head = format!("HTTP/1.1 {} {reason}\r\n", self.status);
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n", self.body.len()));
        head.push_str(if keep_alive {
            "connection: keep-alive\r\n\r\n"
        } else {
            "connection: close\r\n\r\n"
        });
        let mut wire = Vec::with_capacity(head.len() + self.body.len());
        wire.extend_from_slice(head.as_bytes());
        wire.extend_from_slice(&self.body);
        w.write_all(&wire)?;
        w.flush()
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// A response as seen by a client: status plus body.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs; names lowercased.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The first value of a header, by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Client-side connection reader: parses a stream of responses with the
/// same carry-buffer discipline as [`RequestReader`], so back-to-back
/// responses to pipelined requests all survive.
#[derive(Debug, Default)]
pub struct ResponseReader {
    buf: Vec<u8>,
}

impl ResponseReader {
    /// A reader with an empty carry buffer.
    pub fn new() -> ResponseReader {
        ResponseReader::default()
    }

    /// Reads and parses the next response on this connection.
    ///
    /// # Errors
    ///
    /// [`ReadError`] variants as for [`RequestReader::read_request`].
    pub fn read_response(&mut self, stream: &mut impl Read) -> Result<ClientResponse, ReadError> {
        let head = take_head(&mut self.buf, stream, 64 * 1024)?;
        let head =
            std::str::from_utf8(&head).map_err(|_| ReadError::Malformed("non-UTF-8 head"))?;
        let (status_line, header_lines) = head
            .split_once("\r\n")
            .ok_or(ReadError::Malformed("missing status line"))?;
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or(ReadError::Malformed("bad status line"))?;
        let headers = parse_headers(header_lines)?;
        let declared = headers
            .iter()
            .find(|(k, _)| k == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok())
            .unwrap_or(0);
        let body = take_body(&mut self.buf, stream, declared)?;
        Ok(ClientResponse {
            status,
            headers,
            body,
        })
    }
}

/// Reads one response from `stream` (fresh single-use reader).
pub fn read_response(stream: &mut impl Read) -> Result<ClientResponse, ReadError> {
    ResponseReader::new().read_response(stream)
}

/// Serializes a request in a single write (see [`Response::write_to`] on
/// why one write matters).
pub fn write_request(
    w: &mut impl Write,
    method: &str,
    target: &str,
    body: &[u8],
) -> io::Result<()> {
    let head = format!(
        "{method} {target} HTTP/1.1\r\nhost: mds\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n",
        body.len()
    );
    let mut wire = Vec::with_capacity(head.len() + body.len());
    wire.extend_from_slice(head.as_bytes());
    wire.extend_from_slice(body);
    w.write_all(&wire)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(bytes: &[u8]) -> Result<Request, ReadError> {
        read_request(&mut io::Cursor::new(bytes.to_vec()), Limits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /v1/experiments HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = parse(raw).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/experiments");
        assert_eq!(req.version, Version::Http11);
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"abcd");
        assert!(req.wants_keep_alive());
    }

    #[test]
    fn connection_close_disables_keep_alive() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        assert!(!parse(raw).unwrap().wants_keep_alive());
    }

    #[test]
    fn http_1_0_closes_by_default() {
        let plain = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert_eq!(plain.version, Version::Http10);
        assert!(!plain.wants_keep_alive());
        // ... unless the client explicitly opts in.
        let opted = parse(b"GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(opted.wants_keep_alive());
    }

    #[test]
    fn pipelined_requests_all_parse_from_one_stream() {
        // Two requests in a single packet: the reader must hand back the
        // first AND keep the second's bytes for the next call.
        let raw = b"POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
        let mut stream = io::Cursor::new(raw.to_vec());
        let mut reader = RequestReader::new();
        let first = reader.read_request(&mut stream, Limits::default()).unwrap();
        assert_eq!(first.target, "/a");
        assert_eq!(first.body, b"xyz");
        assert!(reader.buffered() > 0, "second request must be carried over");
        let second = reader.read_request(&mut stream, Limits::default()).unwrap();
        assert_eq!(second.target, "/b");
        assert!(second.body.is_empty());
        // Clean end-of-stream after the last pipelined request.
        assert!(matches!(
            reader.read_request(&mut stream, Limits::default()),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 2\r\n\r\nabcd";
        assert!(matches!(
            parse(raw),
            Err(ReadError::Malformed("conflicting content-length headers"))
        ));
        // Repeating the SAME value is tolerated.
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 4\r\ncontent-length: 4\r\n\r\nabcd";
        assert_eq!(parse(raw).unwrap().body, b"abcd");
    }

    #[test]
    fn enforces_head_and_body_limits() {
        let tiny = Limits {
            max_head_bytes: 16,
            max_body_bytes: 8,
        };
        let long_head = b"GET /a/very/long/target/path HTTP/1.1\r\n\r\n";
        assert!(matches!(
            read_request(&mut io::Cursor::new(long_head.to_vec()), tiny),
            Err(ReadError::HeadTooLarge)
        ));
        let big_body = b"POST / HTTP/1.1\r\ncontent-length: 9999\r\n\r\n";
        let mut cursor = io::Cursor::new(big_body.to_vec());
        assert!(matches!(
            read_request(
                &mut cursor,
                Limits {
                    max_head_bytes: 1024,
                    max_body_bytes: 8
                }
            ),
            Err(ReadError::BodyTooLarge)
        ));
    }

    #[test]
    fn rejects_garbage_and_eof() {
        assert!(matches!(parse(b""), Err(ReadError::Closed)));
        assert!(matches!(
            parse(b"NOT HTTP\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn responses_round_trip_through_the_client_reader() {
        let resp = Response::json(200, r#"{"ok":true}"#).header("retry-after", "1");
        let mut wire = Vec::new();
        resp.write_to(&mut wire, true).unwrap();
        let parsed = read_response(&mut io::Cursor::new(wire)).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.header("retry-after"), Some("1"));
        assert_eq!(parsed.header("connection"), Some("keep-alive"));
        assert_eq!(parsed.body, br#"{"ok":true}"#);
    }

    #[test]
    fn back_to_back_responses_all_parse_from_one_stream() {
        let mut wire = Vec::new();
        Response::text(200, "one")
            .write_to(&mut wire, true)
            .unwrap();
        Response::text(200, "two")
            .write_to(&mut wire, false)
            .unwrap();
        let mut stream = io::Cursor::new(wire);
        let mut reader = ResponseReader::new();
        assert_eq!(reader.read_response(&mut stream).unwrap().body, b"one");
        assert_eq!(reader.read_response(&mut stream).unwrap().body, b"two");
    }

    fn drain_into(reader: &mut RequestReader, bytes: &[u8]) {
        let mut cursor = io::Cursor::new(bytes.to_vec());
        loop {
            match reader.fill_from(&mut cursor).unwrap() {
                Fill::Data(_) => {}
                Fill::Eof => break,
                Fill::Blocked => unreachable!("cursors never block"),
            }
        }
    }

    #[test]
    fn incremental_parse_survives_a_split_at_every_byte_boundary() {
        let raw: &[u8] = b"POST /v1/experiments HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcd";
        for split in 1..raw.len() {
            let mut reader = RequestReader::new();
            drain_into(&mut reader, &raw[..split]);
            assert!(
                reader.try_parse(Limits::default()).unwrap().is_none(),
                "split at {split} parsed early"
            );
            assert!(reader.has_partial(), "split at {split}");
            drain_into(&mut reader, &raw[split..]);
            let req = reader
                .try_parse(Limits::default())
                .unwrap()
                .unwrap_or_else(|| panic!("split at {split} failed to complete"));
            assert_eq!(req.target, "/v1/experiments");
            assert_eq!(req.body, b"abcd");
            assert!(!reader.has_partial());
        }
    }

    #[test]
    fn try_parse_yields_both_requests_from_one_fill() {
        let raw = b"POST /a HTTP/1.1\r\ncontent-length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
        let mut reader = RequestReader::new();
        drain_into(&mut reader, raw);
        let first = reader.try_parse(Limits::default()).unwrap().unwrap();
        assert_eq!(first.target, "/a");
        let second = reader.try_parse(Limits::default()).unwrap().unwrap();
        assert_eq!(second.target, "/b");
        assert!(reader.try_parse(Limits::default()).unwrap().is_none());
    }

    #[test]
    fn head_pending_flips_once_the_head_parses() {
        let mut reader = RequestReader::new();
        assert!(reader.head_pending());
        drain_into(&mut reader, b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\n");
        // Head complete but body missing: pending head retained.
        assert!(reader.try_parse(Limits::default()).unwrap().is_none());
        assert!(!reader.head_pending());
        assert!(reader.has_partial());
        drain_into(&mut reader, b"hi");
        assert_eq!(
            reader.try_parse(Limits::default()).unwrap().unwrap().body,
            b"hi"
        );
        assert!(reader.head_pending());
    }

    #[test]
    fn incremental_limits_match_the_blocking_path() {
        let tiny = Limits {
            max_head_bytes: 16,
            max_body_bytes: 8,
        };
        let mut reader = RequestReader::new();
        drain_into(&mut reader, b"GET /a/very/long/target/path HTT");
        assert!(matches!(
            reader.try_parse(tiny),
            Err(ReadError::HeadTooLarge)
        ));
        let mut reader = RequestReader::new();
        drain_into(
            &mut reader,
            b"POST / HTTP/1.1\r\ncontent-length: 9999\r\n\r\n",
        );
        assert!(matches!(
            reader.try_parse(Limits {
                max_head_bytes: 1024,
                max_body_bytes: 8
            }),
            Err(ReadError::BodyTooLarge)
        ));
    }

    #[test]
    fn pipelined_head_bytes_are_not_lost() {
        // Body bytes arriving in the same packet as the head are kept.
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 2\r\n\r\nhi";
        let req = parse(raw).unwrap();
        assert_eq!(req.body, b"hi");
    }
}
