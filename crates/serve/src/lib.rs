//! Zero-dependency experiment-serving subsystem for the `mds` workspace.
//!
//! The CLI (`repro`) answers one experiment per process; this crate turns
//! the same engine into a long-lived service so repeated and concurrent
//! queries amortize the expensive part (workload emulation) instead of
//! redoing it. Everything is `std`-only — the HTTP/1.1 layer is
//! hand-rolled over `std::net` — and the served bytes are **identical**
//! to `repro <id> --json` output by construction, because both sides
//! render [`mds_bench::results_doc`].
//!
//! The pieces, each its own module:
//!
//! 1. **Wire layer** ([`http`]) — request parsing with hard head/body
//!    limits, keep-alive negotiation, and a deterministic response
//!    writer; the same parser serves the server and the load generator.
//! 2. **Admission queue** ([`queue`]) — a bounded MPMC queue between the
//!    acceptor and the worker pool; a full queue sheds connections with
//!    `503` + `Retry-After` instead of buffering unboundedly.
//! 3. **Result cache** ([`result_cache`]) — canonical request key →
//!    response bytes, LRU within a byte budget, so warm repeats skip
//!    simulation *and* serialization.
//! 4. **Domain layer** ([`service`]) — strict request validation with
//!    positioned errors, and execution through one shared
//!    [`mds_runner::Runner`] over a persistent trace cache (each
//!    workload is emulated at most once per server lifetime).
//! 5. **Observability** ([`metrics`], [`access_log`]) — lock-free
//!    counters and histograms rendered as Prometheus text, plus one
//!    structured JSON log line per request.
//! 6. **The server itself** ([`server`]) — acceptor thread, fixed worker
//!    pool, routing, liveness (`/healthz`) and readiness (`/readyz`)
//!    probes, and graceful drain-then-join shutdown.
//! 7. **Client** ([`client`]) — the blocking HTTP connection shared by
//!    the load generator, the cluster gateway's proxy path, and health
//!    probes.
//! 8. **Load generator** ([`load`]) — a closed-loop multi-client driver
//!    with exact merged percentiles that honors `503 Retry-After` with
//!    capped, jittered backoff; used by the `mds-load` binary and the
//!    `serve` benchmark.
//! 9. **Durable tier glue** ([`persist`]) — the effective output epoch
//!    (build hash + registered WDL fingerprints) and the `/v1/cache`
//!    warm-state wire codec; the store itself lives in `mds-store`, and
//!    a server started with `store_dir` prewarms its result cache from
//!    it at boot and appends every cache fill.
//! 10. **Event-driven I/O core** ([`io`]) — a readiness-based connection
//!     engine (raw `epoll` behind a [`io::Poller`] trait with a
//!     deterministic in-memory fake, per-connection non-blocking
//!     read/write state machines, a timer wheel for header/idle/write
//!     deadlines) so idle keep-alive connections cost one fd each and no
//!     worker time. Selected per server via
//!     [`ServerConfig::io`](server::ServerConfig); the thread-per-connection
//!     path remains available as [`IoModel::Threads`] for one release.
//!
//! # Examples
//!
//! ```
//! use mds_serve::{LoadConfig, LogTarget, Server, ServerConfig};
//!
//! let server = Server::start(ServerConfig {
//!     addr: "127.0.0.1:0".to_string(), // ephemeral port
//!     workers: 2,
//!     jobs: Some(2),
//!     log: LogTarget::Discard,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//!
//! let report = mds_serve::run_load(&LoadConfig {
//!     addr: server.local_addr().to_string(),
//!     clients: 2,
//!     duration: std::time::Duration::from_millis(200),
//!     experiment: "fig5".to_string(),
//!     scale: "tiny".to_string(),
//!     fresh: false,
//!     ..LoadConfig::default()
//! });
//! assert!(report.requests > 0);
//! server.shutdown();
//! ```

// `deny` rather than `forbid`: the epoll FFI shim in `io::sys` is the
// one audited `#[allow(unsafe_code)]` island in the crate (forbid cannot
// be overridden even for a module that needs raw syscalls).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod access_log;
pub mod client;
pub mod http;
pub mod io;
pub mod load;
pub mod metrics;
pub mod persist;
pub mod queue;
pub mod result_cache;
pub mod server;
pub mod service;

pub use access_log::{AccessLog, AccessRecord};
pub use client::Connection;
pub use io::IoModel;
pub use load::{print_report, run_load, LoadConfig, LoadReport};
pub use metrics::{Gauges, Histogram, Metrics};
pub use queue::Bounded;
pub use result_cache::ResultCache;
pub use server::{LogTarget, Server, ServerConfig};
pub use service::{ExperimentRequest, Service};
