//! A minimal blocking HTTP client connection over the wire layer.
//!
//! The client bits every tier shares: the `mds-load` generator, the
//! cluster gateway's proxy path, and its health prober all speak to an
//! `mds-serve` backend through this one type, so connect timeouts,
//! socket options, and response parsing behave identically everywhere.
//!
//! A [`Connection`] owns one TCP stream plus the carry-buffer
//! [`ResponseReader`](crate::http::ResponseReader), so back-to-back
//! keep-alive requests on the same connection never lose pipelined
//! bytes. Connections are cheap to reopen; callers that pool them (the
//! gateway) must treat a send error on a *reused* connection as "the
//! server idled us out" and retry once on a fresh one before declaring
//! the backend unhealthy.

use crate::http::{self, ClientResponse, ReadError};
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One client connection: TCP stream + response carry buffer.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    reader: http::ResponseReader,
    requests_sent: u64,
}

impl Connection {
    /// Connects to `addr` (`host:port`), bounding the connect itself by
    /// `connect_timeout` and every subsequent read/write by `io_timeout`.
    pub fn connect(
        addr: &str,
        connect_timeout: Duration,
        io_timeout: Duration,
    ) -> io::Result<Connection> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "address resolved empty"))?;
        let stream = TcpStream::connect_timeout(&resolved, connect_timeout)?;
        stream.set_read_timeout(Some(io_timeout))?;
        stream.set_write_timeout(Some(io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            stream,
            reader: http::ResponseReader::new(),
            requests_sent: 0,
        })
    }

    /// Whether this connection has carried at least one request already
    /// (a send failure on such a connection may just mean the server
    /// idled it out — retry once on a fresh connection).
    pub fn is_reused(&self) -> bool {
        self.requests_sent > 0
    }

    /// Sends one request and reads the full response.
    pub fn send(
        &mut self,
        method: &str,
        target: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ReadError> {
        http::write_request(&mut self.stream, method, target, body).map_err(map_write_error)?;
        self.requests_sent += 1;
        self.reader.read_response(&mut self.stream)
    }

    /// Whether the server told us to close after the given response.
    pub fn must_close(response: &ClientResponse) -> bool {
        matches!(
            response.header("connection"),
            Some(v) if v.eq_ignore_ascii_case("close")
        )
    }

    /// The underlying stream (the load generator adjusts timeouts).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn map_write_error(e: io::Error) -> ReadError {
    match e.kind() {
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => ReadError::TimedOut,
        io::ErrorKind::UnexpectedEof
        | io::ErrorKind::ConnectionReset
        | io::ErrorKind::BrokenPipe => ReadError::Closed,
        _ => ReadError::Io(e),
    }
}

/// One-shot request: connect, send, read, close. Health probes and tests.
pub fn request_once(
    addr: &str,
    method: &str,
    target: &str,
    body: &[u8],
    timeout: Duration,
) -> Result<ClientResponse, ReadError> {
    let mut conn = Connection::connect(addr, timeout, timeout).map_err(ReadError::Io)?;
    let response = conn.send(method, target, body)?;
    // Be a polite HTTP citizen on one-shots: half-close our side so the
    // server's reader sees EOF instead of a reset.
    let _ = conn.stream.shutdown(std::net::Shutdown::Write);
    Ok(response)
}

impl Write for Connection {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, Response};
    use std::io::Read;
    use std::net::TcpListener;

    /// A tiny single-request echo server on an ephemeral port.
    fn one_shot_server(response: Response) -> (String, std::thread::JoinHandle<String>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let request = http::read_request(&mut stream, Limits::default()).unwrap();
            response.write_to(&mut stream, false).unwrap();
            request.target
        });
        (addr, handle)
    }

    #[test]
    fn connection_round_trips_a_request() {
        let (addr, server) = one_shot_server(Response::json(200, r#"{"ok":true}"#));
        let mut conn =
            Connection::connect(&addr, Duration::from_secs(5), Duration::from_secs(5)).unwrap();
        assert!(!conn.is_reused());
        let response = conn.send("GET", "/ping", b"").unwrap();
        assert!(conn.is_reused());
        assert_eq!(response.status, 200);
        assert_eq!(response.body, br#"{"ok":true}"#);
        assert!(Connection::must_close(&response));
        assert_eq!(server.join().unwrap(), "/ping");
    }

    #[test]
    fn request_once_closes_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = http::read_request(&mut stream, Limits::default()).unwrap();
            Response::text(200, "pong")
                .write_to(&mut stream, false)
                .unwrap();
            // After our write-shutdown the server's next read sees EOF.
            let mut rest = Vec::new();
            stream.read_to_end(&mut rest).unwrap()
        });
        let response = request_once(&addr, "GET", "/x", b"", Duration::from_secs(5)).unwrap();
        assert_eq!(response.status, 200);
        assert_eq!(server.join().unwrap(), 0);
    }

    #[test]
    fn connect_to_a_dead_port_errors_fast() {
        // Bind-then-drop guarantees the port is closed.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap().to_string()
        };
        let err = Connection::connect(
            &addr,
            Duration::from_millis(500),
            Duration::from_millis(500),
        );
        assert!(err.is_err());
    }
}
