//! Durable-tier integration: the effective store epoch and the
//! `/v1/cache` wire codec.
//!
//! # The effective epoch
//!
//! `mds-store` records are tagged with an epoch so a simulator change
//! invalidates persisted bytes instead of serving results the current
//! binary would not produce. The *build* part of that identity is
//! [`mds_bench::output_epoch()`] (a build-script hash over every crate
//! that feeds canonical result bytes). But a serving process also has a
//! *runtime* identity: WDL families registered at boot (`--wdl`) change
//! what the `wdl` experiment renders without changing any compiled
//! source. [`effective_epoch`] therefore folds the registered
//! `(name, fingerprint)` pairs — in registration order, which is part of
//! the rendered table order — into the build epoch, so two processes
//! agree on an epoch exactly when they agree on the bytes of every key.
//!
//! # The `/v1/cache` codec
//!
//! Warm-state transfer (boot prewarm inspection, ring-neighbor handoff in
//! `mds-cluster`) moves entries as JSON:
//!
//! ```text
//! {"epoch":<u64>,"entries":[{"key":"fig5@tiny","body":"{...}"},...]}
//! ```
//!
//! The epoch travels with every document and a receiver refuses a
//! mismatch (HTTP 409), so a half-upgraded cluster can never launder
//! stale bytes through the handoff path.

use mds_harness::json::Json;
use std::sync::Arc;

/// FNV-1a 64 continuation over `bytes` from an existing state.
fn fnv1a_extend(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The epoch this process's canonical result bytes live under: the build
/// epoch extended with every registered generated-workload fingerprint.
pub fn effective_epoch() -> u64 {
    let mut hash = mds_bench::output_epoch();
    for (name, fingerprint) in mds_workloads::registry::generated_fingerprints() {
        hash = fnv1a_extend(hash, name.as_bytes());
        hash = fnv1a_extend(hash, &fingerprint.to_le_bytes());
    }
    hash
}

/// Renders one `/v1/cache` document (compact JSON) for `entries`.
pub fn dump(epoch: u64, entries: &[(String, Arc<str>)]) -> String {
    let list: Vec<Json> = entries
        .iter()
        .map(|(key, body)| {
            Json::object()
                .field("key", key.as_str())
                .field("body", &**body)
        })
        .collect();
    Json::object()
        .field("epoch", epoch)
        .field("entries", Json::Array(list))
        .to_string()
}

/// Splits `entries` into `/v1/cache` documents each at most roughly
/// `max_bytes` long (one oversized entry still gets its own document),
/// so a sender can respect a receiver's request-body limit.
pub fn dump_chunks(epoch: u64, entries: &[(String, Arc<str>)], max_bytes: usize) -> Vec<String> {
    let mut chunks = Vec::new();
    let mut batch: Vec<(String, Arc<str>)> = Vec::new();
    let mut batch_bytes = 64; // envelope overhead allowance
    for (key, body) in entries {
        // JSON escaping can expand the body; budget conservatively on
        // raw lengths plus per-entry framing.
        let entry_bytes = key.len() + body.len() + 32;
        if !batch.is_empty() && batch_bytes + entry_bytes > max_bytes {
            chunks.push(dump(epoch, &batch));
            batch.clear();
            batch_bytes = 64;
        }
        batch.push((key.clone(), body.clone()));
        batch_bytes += entry_bytes;
    }
    if !batch.is_empty() {
        chunks.push(dump(epoch, &batch));
    }
    chunks
}

/// Parses a `/v1/cache` document into `(epoch, entries)`.
pub fn parse(body: &[u8]) -> Result<(u64, Vec<(String, String)>), String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let epoch = doc
        .get("epoch")
        .and_then(Json::as_u64)
        .ok_or_else(|| "missing or non-integer 'epoch'".to_string())?;
    let list = doc
        .get("entries")
        .and_then(Json::as_array)
        .ok_or_else(|| "missing 'entries' array".to_string())?;
    let mut entries = Vec::with_capacity(list.len());
    for item in list {
        let key = item
            .get("key")
            .and_then(Json::as_str)
            .ok_or_else(|| "entry missing string 'key'".to_string())?;
        let body = item
            .get("body")
            .and_then(Json::as_str)
            .ok_or_else(|| "entry missing string 'body'".to_string())?;
        entries.push((key.to_string(), body.to_string()));
    }
    Ok((epoch, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str, body: &str) -> (String, Arc<str>) {
        (key.to_string(), Arc::from(body))
    }

    #[test]
    fn dump_and_parse_round_trip() {
        let entries = vec![
            entry("fig5@tiny", r#"{"experiment":"fig5"}"#),
            entry("a@b", ""),
        ];
        let doc = dump(42, &entries);
        let (epoch, parsed) = parse(doc.as_bytes()).unwrap();
        assert_eq!(epoch, 42);
        let expected: Vec<(String, String)> = entries
            .iter()
            .map(|(k, v)| (k.clone(), v.to_string()))
            .collect();
        assert_eq!(parsed, expected);
    }

    #[test]
    fn chunks_respect_the_budget_and_lose_nothing() {
        let entries: Vec<(String, Arc<str>)> = (0..40)
            .map(|i| entry(&format!("k{i}@tiny"), &"x".repeat(100)))
            .collect();
        let chunks = dump_chunks(7, &entries, 1024);
        assert!(chunks.len() > 1, "must split under a 1KB budget");
        let mut all = Vec::new();
        for chunk in &chunks {
            assert!(chunk.len() < 2048, "chunk far over budget: {}", chunk.len());
            let (epoch, mut part) = parse(chunk.as_bytes()).unwrap();
            assert_eq!(epoch, 7);
            all.append(&mut part);
        }
        assert_eq!(all.len(), entries.len());
        assert_eq!(all[0].0, "k0@tiny");
        assert_eq!(all[39].0, "k39@tiny");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(parse(b"not json").is_err());
        assert!(parse(br#"{"entries":[]}"#).is_err(), "epoch required");
        assert!(parse(br#"{"epoch":1}"#).is_err(), "entries required");
        assert!(parse(br#"{"epoch":1,"entries":[{"key":"k"}]}"#).is_err());
    }

    #[test]
    fn effective_epoch_is_stable_within_a_process() {
        // Registering nothing between calls must not move the epoch, and
        // the epoch must build on the compiled-source epoch.
        let a = effective_epoch();
        let b = effective_epoch();
        assert_eq!(a, b);
    }
}
