//! End-to-end tests for the durable result tier over real sockets.
//!
//! The load-bearing guarantees proved here:
//!
//! - A server restarted over the same `--store` directory answers the
//!   first request for a previously served key as a **cache hit**, with
//!   bytes identical to the `repro` CLI document, and performs **zero**
//!   workload emulations doing it.
//! - `fresh:true` recomputes do not grow the log (appends are
//!   deduplicated against the stored value), so cold-path benchmarking
//!   over a store does not fsync per request.
//! - `GET /v1/cache` exports warm state that `POST /v1/cache` on another
//!   server imports — the cluster handoff wire — and an epoch mismatch
//!   is refused with `409`.
//!
//! These tests live in their own integration binary (one process per
//! file) because the effective epoch folds in the process-global WDL
//! registry; tests that register families run elsewhere.

use mds_harness::tempdir::TempDir;
use mds_serve::http::{self, ClientResponse};
use mds_serve::{persist, LogTarget, Server, ServerConfig};
use mds_workloads::Scale;
use std::net::TcpStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

fn start_with_store(dir: &Path) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        jobs: Some(2),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        store_dir: Some(dir.to_path_buf()),
        log: LogTarget::Memory,
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn request(server: &Server, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    http::write_request(&mut stream, method, target, body).expect("write request");
    http::read_response(&mut stream).expect("read response")
}

/// The exact bytes `repro fig5 --json` produces for the tiny scale.
fn cli_fig5_tiny() -> String {
    let mut h = mds_bench::Harness::with_runner(Scale::Tiny, mds_runner::Runner::new(1));
    let table = mds_bench::experiment(&mut h, "fig5").unwrap();
    mds_bench::results_doc(
        "fig5",
        mds_bench::experiment_title("fig5").unwrap(),
        Scale::Tiny,
        &table,
    )
    .pretty()
}

const FIG5_TINY: &[u8] = br#"{"experiment":"fig5","scale":"tiny"}"#;

#[test]
fn restart_over_the_same_store_is_warm_from_the_first_request() {
    let tmp = TempDir::new("mds-serve-restart").unwrap();
    let expected = cli_fig5_tiny();

    // First lifetime: compute once, persist, shut down gracefully.
    {
        let server = start_with_store(tmp.path());
        assert_eq!(server.prewarmed(), 0, "empty store prewarm");
        let response = request(&server, "POST", "/v1/experiments", FIG5_TINY);
        assert_eq!(response.status, 200);
        assert_eq!(response.body, expected.as_bytes());
        let store = server.store().expect("store attached");
        assert_eq!(store.len(), 1);
        assert_eq!(store.appends(), 1);
        server.shutdown();
    }

    // Second lifetime: the store replays into the cache at boot, so the
    // very first request is a hit — same bytes, zero emulations.
    let server = start_with_store(tmp.path());
    assert_eq!(server.prewarmed(), 1);
    assert_eq!(server.result_cache().len(), 1);
    let response = request(&server, "POST", "/v1/experiments", FIG5_TINY);
    assert_eq!(response.status, 200);
    assert_eq!(
        response.body,
        expected.as_bytes(),
        "restart-warm bytes differ from the repro CLI document"
    );
    assert_eq!(
        server.trace_cache().misses(),
        0,
        "a warm restart must not emulate anything"
    );
    assert_eq!(server.result_cache().hits(), 1);
    let log = server.log_lines().join("\n");
    assert!(log.contains("\"evt\":\"store\""), "{log}");
    assert!(log.contains("\"cache\":\"hit\""), "{log}");
    server.shutdown();
}

#[test]
fn fresh_recomputes_do_not_regrow_the_log() {
    let tmp = TempDir::new("mds-serve-fresh").unwrap();
    let server = start_with_store(tmp.path());
    let fresh = br#"{"experiment":"fig5","scale":"tiny","fresh":true}"#;
    assert_eq!(
        request(&server, "POST", "/v1/experiments", fresh).status,
        200
    );
    let log_bytes = server.store().unwrap().log_bytes();
    for _ in 0..3 {
        assert_eq!(
            request(&server, "POST", "/v1/experiments", fresh).status,
            200
        );
    }
    let store = server.store().unwrap();
    assert_eq!(store.appends(), 1, "identical recomputes must not append");
    assert_eq!(store.log_bytes(), log_bytes);
    server.shutdown();
}

#[test]
fn cache_dump_fills_a_peer_and_epoch_mismatch_is_refused() {
    let tmp_a = TempDir::new("mds-serve-dump-a").unwrap();
    let tmp_b = TempDir::new("mds-serve-dump-b").unwrap();
    let expected = cli_fig5_tiny();

    let donor = start_with_store(tmp_a.path());
    assert_eq!(
        request(&donor, "POST", "/v1/experiments", FIG5_TINY).status,
        200
    );
    let dump = request(&donor, "GET", "/v1/cache", b"");
    assert_eq!(dump.status, 200);
    let (epoch, entries) = persist::parse(&dump.body).expect("parse dump");
    assert_eq!(epoch, donor.epoch());
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].0, "fig5@tiny");
    assert_eq!(entries[0].1, expected);

    // A peer ingests the dump: warm from the transfer, no emulation, and
    // the imported entries also land in its own store.
    let peer = start_with_store(tmp_b.path());
    let fill = request(&peer, "POST", "/v1/cache", &dump.body);
    assert_eq!(fill.status, 200, "{:?}", fill);
    assert_eq!(String::from_utf8_lossy(&fill.body), r#"{"accepted":1}"#);
    let response = request(&peer, "POST", "/v1/experiments", FIG5_TINY);
    assert_eq!(response.status, 200);
    assert_eq!(response.body, expected.as_bytes());
    assert_eq!(peer.trace_cache().misses(), 0);
    assert_eq!(peer.store().unwrap().len(), 1, "import is persisted too");

    // A document from a different epoch must be refused outright.
    let warm: Vec<(String, Arc<str>)> = entries
        .iter()
        .map(|(k, v)| (k.clone(), Arc::from(v.as_str())))
        .collect();
    let stale = persist::dump(epoch.wrapping_add(1), &warm);
    let refused = request(&peer, "POST", "/v1/cache", stale.as_bytes());
    assert_eq!(refused.status, 409);
    assert!(String::from_utf8_lossy(&refused.body).contains("epoch mismatch"));

    // Malformed fills are 400s, and /v1/cache rejects other methods.
    assert_eq!(request(&peer, "POST", "/v1/cache", b"junk").status, 400);
    assert_eq!(request(&peer, "PUT", "/v1/cache", b"").status, 405);

    donor.shutdown();
    peer.shutdown();
}

#[test]
fn kill_dash_nine_mid_lifetime_loses_nothing_already_synced() {
    // In-process stand-in for the CI store gate's kill -9: drop the
    // server WITHOUT graceful shutdown paths having any chance to flush
    // anything extra — every append was already fsynced, so a brand-new
    // server over the same directory must recover the full key.
    let tmp = TempDir::new("mds-serve-kill").unwrap();
    let expected = cli_fig5_tiny();
    {
        let server = start_with_store(tmp.path());
        assert_eq!(
            request(&server, "POST", "/v1/experiments", FIG5_TINY).status,
            200
        );
        // `drop` joins threads but the durability claim rests on the
        // append-time fsync, not on anything shutdown does.
    }
    let server = start_with_store(tmp.path());
    assert_eq!(server.prewarmed(), 1);
    let response = request(&server, "POST", "/v1/experiments", FIG5_TINY);
    assert_eq!(response.body, expected.as_bytes());
    assert_eq!(server.trace_cache().misses(), 0);
    server.shutdown();
}
