//! End-to-end serving tests over real sockets on an ephemeral port.
//!
//! The load-bearing guarantees proved here:
//!
//! - Four concurrent clients asking for the same experiment all receive
//!   **byte-identical** responses, equal to the canonical results
//!   document the `repro` CLI writes — serving is a transport, not a
//!   different computation.
//! - The shared trace cache reports exactly one emulation per workload
//!   however many requests raced, and a warm repeat adds none (the
//!   counters prove warm requests skip simulation).
//! - A full admission queue sheds new connections with `503` +
//!   `Retry-After` instead of hanging or buffering.
//! - Malformed input gets 4xx with positioned errors; keep-alive serves
//!   several requests per connection; `/v1/shutdown` unblocks a waiting
//!   server and drains cleanly.

use mds_serve::http::{self, ClientResponse};
use mds_serve::{IoModel, LogTarget, Server, ServerConfig};
use mds_workloads::Scale;
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

/// fig5 at tiny scale simulates these many distinct workloads, so a
/// correctly shared trace cache performs exactly this many emulations.
const FIG5_TINY_WORKLOADS: u64 = 5;

fn start(workers: usize, queue_depth: usize) -> Server {
    start_io(workers, queue_depth, IoModel::default())
}

fn start_io(workers: usize, queue_depth: usize, io: IoModel) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers,
        queue_depth,
        jobs: Some(2),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        io,
        log: LogTarget::Memory,
        ..ServerConfig::default()
    })
    .expect("start server")
}

fn connect(server: &Server) -> TcpStream {
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    stream
}

fn roundtrip(stream: &mut TcpStream, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    http::write_request(stream, method, target, body).expect("write request");
    http::read_response(stream).expect("read response")
}

fn request(server: &Server, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    roundtrip(&mut connect(server), method, target, body)
}

/// The exact bytes `repro fig5 --json` produces for the tiny scale.
fn cli_fig5_tiny() -> String {
    let mut h = mds_bench::Harness::with_runner(Scale::Tiny, mds_runner::Runner::new(1));
    let table = mds_bench::experiment(&mut h, "fig5").unwrap();
    mds_bench::results_doc(
        "fig5",
        mds_bench::experiment_title("fig5").unwrap(),
        Scale::Tiny,
        &table,
    )
    .pretty()
}

#[test]
fn concurrent_clients_get_cli_identical_bytes_and_one_emulation_per_workload() {
    let server = start(4, 16);
    let body = br#"{"experiment":"fig5","scale":"tiny"}"#;

    let bodies: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    let response = request(&server, "POST", "/v1/experiments", body);
                    assert_eq!(response.status, 200, "{:?}", response);
                    response.body
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let expected = cli_fig5_tiny();
    for served in &bodies {
        assert_eq!(
            served.as_slice(),
            expected.as_bytes(),
            "served bytes differ from the repro CLI document"
        );
    }
    assert_eq!(
        server.trace_cache().misses(),
        FIG5_TINY_WORKLOADS,
        "each workload must be emulated exactly once across 4 concurrent requests"
    );

    // A warm repeat is served from the result cache: no new emulation,
    // same bytes, and the hit is visible in the counters and the log.
    let warm = request(&server, "POST", "/v1/experiments", body);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, expected.as_bytes());
    assert_eq!(server.trace_cache().misses(), FIG5_TINY_WORKLOADS);
    assert!(server.result_cache().hits() >= 1);
    let log = server.log_lines().join("\n");
    assert!(log.contains("\"cache\":\"hit\""), "{log}");
    assert!(log.contains("\"cache\":\"miss\""), "{log}");
    server.shutdown();
}

#[test]
fn full_admission_queue_sheds_with_503_and_retry_after() {
    // No workers ever pop, so one queued connection fills the queue and
    // the next accept must shed deterministically. Accept-time shedding
    // is the threaded engine's admission point; the epoll engine sheds
    // per request instead (covered below).
    let server = start_io(0, 1, IoModel::Threads);
    let _queued = connect(&server);
    // Give the acceptor a moment to enqueue the first connection.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < 1 {
        assert!(
            std::time::Instant::now() < deadline,
            "connection never queued"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut shed = connect(&server);
    // The server responds at accept time, before any request is read.
    let response = http::read_response(&mut shed).expect("shed response");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    assert!(String::from_utf8_lossy(&response.body).contains("queue full"));
    assert_eq!(
        server
            .metrics()
            .rejected_total
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.shutdown();
}

#[test]
fn bad_requests_get_4xx_with_positioned_errors() {
    let server = start(2, 16);

    let mut garbage = connect(&server);
    garbage.write_all(b"NOT_EVEN HTTP\r\n\r\n").unwrap();
    garbage.flush().unwrap();
    let response = http::read_response(&mut garbage).expect("error response");
    assert_eq!(response.status, 400);

    let bad_json = request(&server, "POST", "/v1/experiments", b"{\"experiment\":");
    assert_eq!(bad_json.status, 400);
    assert!(
        String::from_utf8_lossy(&bad_json.body).contains("byte"),
        "syntax errors carry byte offsets: {:?}",
        String::from_utf8_lossy(&bad_json.body)
    );

    let bad_shape = request(&server, "POST", "/v1/experiments", b"{\"experiment\":42}");
    assert_eq!(bad_shape.status, 400);
    assert!(String::from_utf8_lossy(&bad_shape.body).contains("$.experiment"));

    let unknown = request(
        &server,
        "POST",
        "/v1/experiments",
        b"{\"experiment\":\"nope\"}",
    );
    assert_eq!(unknown.status, 400);

    assert_eq!(request(&server, "GET", "/nope", b"").status, 404);
    assert_eq!(request(&server, "DELETE", "/healthz", b"").status, 405);
    server.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_and_metrics_expose_counters() {
    let server = start(2, 16);
    let mut stream = connect(&server);
    for _ in 0..3 {
        let response = roundtrip(&mut stream, "GET", "/healthz", b"");
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("keep-alive"));
        assert_eq!(response.body, b"ok\n");
    }

    let listing = roundtrip(&mut stream, "GET", "/v1/experiments", b"");
    assert_eq!(listing.status, 200);
    assert!(String::from_utf8_lossy(&listing.body).contains("fig5"));

    let metrics = roundtrip(&mut stream, "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    for family in [
        "mds_connections_total",
        "mds_requests_total",
        "mds_result_cache_hits_total",
        "mds_queue_depth",
        "mds_trace_cache_misses_total",
        "mds_queue_wait_microseconds_bucket{le=\"+Inf\"}",
        "mds_compute_microseconds_count",
    ] {
        assert!(text.contains(family), "missing {family} in:\n{text}");
    }
    // All five requests so far rode one connection.
    assert!(text.contains("mds_connections_total 1"), "{text}");
    server.shutdown();
}

#[test]
fn pipelined_requests_in_one_packet_both_get_responses() {
    let server = start(2, 16);
    let mut stream = connect(&server);
    // Two complete requests in a single write: the second's bytes land in
    // the same socket read as the first's, and must not be discarded.
    stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nhost: mds\r\n\r\n\
              GET /healthz HTTP/1.1\r\nhost: mds\r\n\r\n",
        )
        .unwrap();
    stream.flush().unwrap();
    let mut reader = http::ResponseReader::new();
    for _ in 0..2 {
        let response = reader.read_response(&mut stream).expect("read response");
        assert_eq!(response.status, 200);
        assert_eq!(response.body, b"ok\n");
    }
    server.shutdown();
}

#[test]
fn http_1_0_connections_close_by_default() {
    let server = start(2, 16);
    let mut stream = connect(&server);
    stream
        .write_all(b"GET /healthz HTTP/1.0\r\nhost: mds\r\n\r\n")
        .unwrap();
    stream.flush().unwrap();
    let response = http::read_response(&mut stream).expect("read response");
    assert_eq!(response.status, 200);
    assert_eq!(response.header("connection"), Some("close"));
    // The server must actually close: the next read sees EOF.
    let mut rest = Vec::new();
    use std::io::Read;
    assert_eq!(stream.read_to_end(&mut rest).unwrap(), 0);
    server.shutdown();
}

#[test]
fn conflicting_content_lengths_get_400() {
    let server = start(2, 16);
    let mut stream = connect(&server);
    stream
        .write_all(
            b"POST /v1/experiments HTTP/1.1\r\nhost: mds\r\n\
              content-length: 4\r\ncontent-length: 2\r\n\r\nabcd",
        )
        .unwrap();
    stream.flush().unwrap();
    let response = http::read_response(&mut stream).expect("read response");
    assert_eq!(response.status, 400);
    assert!(
        String::from_utf8_lossy(&response.body).contains("content-length"),
        "{:?}",
        String::from_utf8_lossy(&response.body)
    );
    server.shutdown();
}

#[test]
fn shutdown_endpoint_unblocks_wait_and_drains() {
    let server = start(2, 16);
    std::thread::scope(|scope| {
        let waiter = scope.spawn(|| server.wait_for_shutdown());
        let response = request(&server, "POST", "/v1/shutdown", b"");
        assert_eq!(response.status, 200);
        assert_eq!(response.header("connection"), Some("close"));
        waiter.join().unwrap();
    });
    server.shutdown();
}

#[test]
fn readiness_flips_to_503_on_drain_while_liveness_stays_up() {
    let server = start(2, 16);
    let ready = request(&server, "GET", "/readyz", b"");
    assert_eq!(ready.status, 200);
    assert_eq!(ready.body, b"ready\n");

    // Request shutdown but do not complete it yet: the drain window.
    let response = request(&server, "POST", "/v1/shutdown", b"");
    assert_eq!(response.status, 200);

    // Liveness still answers 200 (the process is up, draining), but
    // readiness now tells gateways to stop sending new traffic.
    let live = request(&server, "GET", "/healthz", b"");
    assert_eq!(live.status, 200);
    let draining = request(&server, "GET", "/readyz", b"");
    assert_eq!(draining.status, 503);
    assert_eq!(draining.header("retry-after"), Some("1"));
    assert!(
        String::from_utf8_lossy(&draining.body).contains("draining"),
        "{:?}",
        String::from_utf8_lossy(&draining.body)
    );
    server.shutdown();
}

#[test]
fn readiness_reports_saturation_when_the_queue_is_full() {
    // workers=0 so the queued connection is never drained; capacity 1 is
    // reached by a single idle connection. A second connection still gets
    // the readiness answer because shedding happens at accept time with a
    // direct write, before the queue is involved... so probe the
    // saturated state through the metrics-visible invariant instead:
    // every readiness probe arriving while the queue is full is itself
    // shed with 503, which is exactly the signal a gateway needs.
    let server = start_io(0, 1, IoModel::Threads);
    let _queued = connect(&server);
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < 1 {
        assert!(std::time::Instant::now() < deadline, "never queued");
        std::thread::sleep(Duration::from_millis(2));
    }
    let mut probe = connect(&server);
    let response = http::read_response(&mut probe).expect("shed response");
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    server.shutdown();
}

#[test]
fn open_loop_load_holds_its_arrival_schedule() {
    use mds_serve::{run_load, LoadConfig};
    let server = start(4, 64);
    // Warm the result cache so every open-loop shot is a cheap hit.
    let warm = request(
        &server,
        "POST",
        "/v1/experiments",
        br#"{"experiment":"fig5","scale":"tiny"}"#,
    );
    assert_eq!(warm.status, 200);

    let report = run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        duration: Duration::from_millis(800),
        rate: Some(100.0),
        ..LoadConfig::default()
    });

    // The schedule dictates arrivals — at 100/s over 0.8s that is at most
    // 80, independent of server latency; sleep overshoot can only lose a
    // few.
    assert!(
        (60..=80).contains(&report.offered),
        "offered off schedule: {report:?}"
    );
    assert_eq!(report.errors, 0, "{report:?}");
    assert_eq!(
        report.requests + report.shed,
        report.offered,
        "every arrival is accounted for: {report:?}"
    );
    assert_eq!(report.rate, Some(100.0));
    assert!(report.offered_rps() > 0.0 && report.rps() > 0.0);
    let doc = report.to_json().to_string();
    assert!(doc.contains("\"mode\":\"open\""), "{doc}");
    server.shutdown();
}

#[test]
fn load_generator_backs_off_on_sheds_instead_of_hammering() {
    use mds_serve::{run_load, LoadConfig};
    // queue_depth 0: every connection is shed with 503 + Retry-After at
    // accept time, deterministically.
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        queue_depth: 0,
        jobs: Some(1),
        io: IoModel::Threads,
        log: LogTarget::Memory,
        ..ServerConfig::default()
    })
    .expect("start server");

    let seconds = 1.0;
    let report = run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        clients: 2,
        duration: Duration::from_secs_f64(seconds),
        experiment: "fig5".to_string(),
        scale: "tiny".to_string(),
        backoff_cap: Duration::from_millis(200),
        ..LoadConfig::default()
    });

    assert_eq!(report.requests, 0, "nothing can succeed");
    assert_eq!(report.errors, 0, "sheds are backpressure, not failures");
    assert!(report.shed >= 2, "both clients saw sheds: {report:?}");
    assert!(report.retried >= 1, "sheds are retried: {report:?}");
    // The whole point: backed-off clients cannot hammer. Two clients in a
    // tight loop would shed thousands of times per second; with the
    // jittered 100ms..200ms schedule each client retries at most ~20
    // times over one second.
    assert!(
        report.shed <= 2 * 22,
        "clients must pace their retries: {report:?}"
    );
    // The server-side counter agrees that every arrival was shed.
    assert_eq!(
        server
            .metrics()
            .rejected_total
            .load(std::sync::atomic::Ordering::Relaxed),
        report.shed + report.errors,
        "every client arrival was shed"
    );
    server.shutdown();
}

#[test]
fn epoll_sheds_at_the_request_level_and_readyz_reports_saturation() {
    // The epoll engine admits connections cheaply and sheds at the
    // request level: with no workers, one deferred request fills the
    // jobs queue, the next deferred request is answered 503 and closed,
    // and a readiness probe — served inline, never queued — still gets
    // an answer that reports the saturation.
    let server = start_io(0, 1, IoModel::Epoll);
    let body: &[u8] = br#"{"experiment":"fig5","scale":"tiny"}"#;

    let mut parked = connect(&server);
    http::write_request(&mut parked, "POST", "/v1/experiments", body).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.queue_depth() < 1 {
        assert!(std::time::Instant::now() < deadline, "job never queued");
        std::thread::sleep(Duration::from_millis(2));
    }

    let mut shed = connect(&server);
    let response = roundtrip(&mut shed, "POST", "/v1/experiments", body);
    assert_eq!(response.status, 503);
    assert_eq!(response.header("retry-after"), Some("1"));
    // A shed response ends the connection: the next read sees EOF.
    use std::io::Read;
    let mut rest = Vec::new();
    assert_eq!(shed.read_to_end(&mut rest).unwrap(), 0);
    assert_eq!(
        server
            .metrics()
            .rejected_total
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // Inline routes keep answering while the queue is full; readiness
    // turns the saturation into the signal a gateway acts on.
    let probe = request(&server, "GET", "/readyz", b"");
    assert_eq!(probe.status, 503);
    assert_eq!(probe.header("retry-after"), Some("1"));

    // Drain runs the parked job inline: the first client still gets its
    // full answer while the server shuts down.
    std::thread::scope(|scope| {
        let drainer = scope.spawn(move || server.shutdown());
        let drained = http::read_response(&mut parked).expect("drained response");
        assert_eq!(drained.status, 200);
        assert_eq!(drained.body, cli_fig5_tiny().as_bytes());
        drainer.join().unwrap();
    });
}

#[test]
fn slow_loris_headers_hit_the_total_deadline_with_408() {
    // A client trickling one byte per 25ms refreshes every per-read
    // timeout, so only a *total* header deadline can stop it. Both
    // engines must answer 408 and close well before the 10s read
    // timeout would fire.
    let head: &[u8] =
        b"GET /healthz HTTP/1.1\r\nhost: mds\r\nx-slow: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa";
    for io in [IoModel::Epoll, IoModel::Threads] {
        let server = Server::start(ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 1,
            queue_depth: 4,
            jobs: Some(1),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            header_timeout: Duration::from_millis(300),
            io,
            log: LogTarget::Memory,
            ..ServerConfig::default()
        })
        .expect("start server");

        let mut stream = connect(&server);
        let started = std::time::Instant::now();
        for byte in head {
            // Once the server has closed on us the trickle write fails;
            // the time guard is a backstop so a broken server cannot
            // stall the test.
            if stream.write_all(std::slice::from_ref(byte)).is_err()
                || started.elapsed() > Duration::from_secs(5)
            {
                break;
            }
            let _ = stream.flush();
            std::thread::sleep(Duration::from_millis(25));
        }
        let response = http::read_response(&mut stream)
            .unwrap_or_else(|e| panic!("{} gave no 408: {e:?}", io.as_str()));
        assert_eq!(response.status, 408, "{}", io.as_str());
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "{}: 408 must come from the header deadline, not the read timeout",
            io.as_str()
        );
        use std::io::Read;
        let mut rest = Vec::new();
        assert_eq!(
            stream.read_to_end(&mut rest).unwrap_or(0),
            0,
            "{}",
            io.as_str()
        );
        server.shutdown();
    }
}

#[test]
fn body_split_across_a_pause_still_completes_on_a_keep_alive_connection() {
    // Regression: the PR-5 keep-alive slicing shrank the socket read
    // timeout for the between-requests wait and never restored it, so a
    // request body arriving in two chunks with a pause between them died
    // on the sliced timeout. The split must land on a *second* request
    // so the connection has been through the keep-alive wait.
    let expected = cli_fig5_tiny();
    let body: &[u8] = br#"{"experiment":"fig5","scale":"tiny"}"#;
    for io in [IoModel::Epoll, IoModel::Threads] {
        let server = start_io(2, 8, io);
        let mut stream = connect(&server);
        let first = roundtrip(&mut stream, "GET", "/healthz", b"");
        assert_eq!(first.status, 200, "{}", io.as_str());

        let head = format!(
            "POST /v1/experiments HTTP/1.1\r\nhost: mds\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(&body[..10]).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        stream.write_all(&body[10..]).unwrap();
        stream.flush().unwrap();
        let response = http::read_response(&mut stream).expect("split-body response");
        assert_eq!(response.status, 200, "{}", io.as_str());
        assert_eq!(response.body, expected.as_bytes(), "{}", io.as_str());
        server.shutdown();
    }
}

#[test]
fn both_engines_serve_cli_identical_bytes() {
    // The engine is a transport detail: epoll and threads must produce
    // the same bytes the repro CLI writes, down to the last byte.
    let expected = cli_fig5_tiny();
    let body: &[u8] = br#"{"experiment":"fig5","scale":"tiny"}"#;
    for io in [IoModel::Epoll, IoModel::Threads] {
        let server = start_io(2, 8, io);
        let response = request(&server, "POST", "/v1/experiments", body);
        assert_eq!(response.status, 200, "{}", io.as_str());
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "engine {} diverges from the repro CLI bytes",
            io.as_str()
        );
        server.shutdown();
    }
}

#[test]
fn grid_route_serves_concatenated_cli_documents_and_shares_the_cache() {
    let server = start(2, 8);
    // A single-experiment grid is byte-identical to /v1/experiments and
    // to the repro CLI document.
    let single = request(
        &server,
        "POST",
        "/v1/grids",
        br#"{"experiments":["fig5"],"scale":"tiny"}"#,
    );
    assert_eq!(single.status, 200, "{single:?}");
    let expected = cli_fig5_tiny();
    assert_eq!(single.body, expected.as_bytes());

    // A multi-experiment grid is the per-experiment documents
    // concatenated in request order; fig5's document is served from the
    // result cache the first request filled.
    let multi = request(
        &server,
        "POST",
        "/v1/grids",
        br#"{"experiments":["table2","fig5"],"scale":"tiny"}"#,
    );
    assert_eq!(multi.status, 200);
    let table2 = request(
        &server,
        "POST",
        "/v1/experiments",
        br#"{"experiment":"table2","scale":"tiny"}"#,
    );
    let mut want = String::from_utf8(table2.body).unwrap();
    want.push_str(&expected);
    assert_eq!(multi.body, want.as_bytes());
    assert!(server.result_cache().hits() >= 1);

    // Unknown ids and fields are rejected up front.
    let bad = request(
        &server,
        "POST",
        "/v1/grids",
        br#"{"experiments":["fig99"]}"#,
    );
    assert_eq!(bad.status, 400);
    let bad = request(&server, "POST", "/v1/grids", br#"{"grids":["fig5"]}"#);
    assert_eq!(bad.status, 400);
    let bad = request(&server, "GET", "/v1/grids", b"");
    assert_eq!(bad.status, 405);
    server.shutdown();
}

#[test]
fn cell_route_executes_wire_jobs_whose_outputs_rebuild_the_document() {
    let server = start(2, 8);
    // Ship every fig5 cell through POST /v1/cells, merge the decoded
    // outputs into a local harness, and require the merged document to
    // match the repro CLI bytes without any local simulation.
    let ids = vec!["fig5".to_string()];
    let cells = mds_bench::grid::cells(&ids, Scale::Tiny);
    let mut h = mds_bench::Harness::with_runner(Scale::Tiny, mds_runner::Runner::new(1));
    for cell in &cells {
        let body = mds_runner::wire::encode_job(&cell.job).pretty();
        let response = request(&server, "POST", "/v1/cells", body.as_bytes());
        assert_eq!(response.status, 200, "{response:?}");
        let doc =
            mds_harness::json::Json::parse(std::str::from_utf8(&response.body).unwrap()).unwrap();
        assert_eq!(doc.get("id").unwrap().as_str().unwrap(), cell.id());
        let output = mds_runner::wire::decode_output(doc.get("output").unwrap()).unwrap();
        assert!(h.insert(&cell.demand, output));
    }
    let runs_before = h.run_stats().len();
    let merged = mds_bench::grid::merged_doc(&mut h, &ids).unwrap();
    assert_eq!(merged, cli_fig5_tiny());
    assert_eq!(
        h.run_stats().len(),
        runs_before,
        "nothing recomputed locally"
    );
    // The backend emulated each fig5 workload exactly once across all
    // cells (the persistent trace cache is shared between cell requests).
    assert_eq!(server.trace_cache().misses(), FIG5_TINY_WORKLOADS);

    // Undecodable cells are a 400, not a crash.
    let bad = request(&server, "POST", "/v1/cells", br#"{"id":"x"}"#);
    assert_eq!(bad.status, 400);
    server.shutdown();
}
