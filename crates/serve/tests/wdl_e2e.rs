//! WDL-over-HTTP: generated workload families registered at boot resolve
//! through the serving tier.
//!
//! In its own integration binary because registration is process-global
//! and folds into the effective store epoch — the plain store e2e tests
//! must not see these families.

use mds_harness::tempdir::TempDir;
use mds_serve::http::{self, ClientResponse};
use mds_serve::{persist, LogTarget, Server, ServerConfig};
use mds_workloads::Scale;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

fn request(server: &Server, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    http::write_request(&mut stream, method, target, body).expect("write request");
    http::read_response(&mut stream).expect("read response")
}

/// Registers the `compress_like` example spec exactly the way
/// `mds-serve --wdl examples/compress_like.wdl` does at boot.
fn register_example() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/compress_like.wdl")
        .canonicalize()
        .expect("example spec path");
    let src = std::fs::read_to_string(&path).expect("read example spec");
    let spec = mds_wdl::parse_spec(&src).expect("parse example spec");
    mds_wdl::register_spec(&spec, 0, 2).expect("register example spec");
}

#[test]
fn registered_wdl_families_serve_cli_identical_bytes() {
    register_example();
    let tmp = TempDir::new("mds-serve-wdl").unwrap();
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        jobs: Some(2),
        read_timeout: Duration::from_secs(10),
        write_timeout: Duration::from_secs(10),
        store_dir: Some(tmp.path().to_path_buf()),
        log: LogTarget::Memory,
        ..ServerConfig::default()
    })
    .expect("start server");

    // The epoch must reflect the registered family, not just the build:
    // a binary-identical server without the registration must disagree.
    assert_ne!(server.epoch(), mds_bench::output_epoch());
    assert_eq!(server.epoch(), persist::effective_epoch());

    let body = br#"{"experiment":"wdl","scale":"tiny"}"#;
    let response = request(&server, "POST", "/v1/experiments", body);
    assert_eq!(response.status, 200, "{:?}", response);

    let mut h = mds_bench::Harness::with_runner(Scale::Tiny, mds_runner::Runner::new(1));
    let table = mds_bench::experiment(&mut h, "wdl").unwrap();
    let expected = mds_bench::results_doc(
        "wdl",
        mds_bench::experiment_title("wdl").unwrap(),
        Scale::Tiny,
        &table,
    )
    .pretty();
    assert_eq!(
        response.body,
        expected.as_bytes(),
        "served wdl bytes differ from the repro CLI document"
    );
    assert!(
        expected.contains("wdl/compress_like/"),
        "the generated family must appear in the table: {expected}"
    );

    // And the persisted entry replays warm across a restart under the
    // same registrations.
    let store_dir = tmp.path().to_path_buf();
    server.shutdown();
    let reborn = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 16,
        jobs: Some(2),
        store_dir: Some(store_dir),
        log: LogTarget::Memory,
        ..ServerConfig::default()
    })
    .expect("restart server");
    assert_eq!(reborn.prewarmed(), 1);
    let warm = request(&reborn, "POST", "/v1/experiments", body);
    assert_eq!(warm.body, expected.as_bytes());
    assert_eq!(reborn.trace_cache().misses(), 0);
    reborn.shutdown();
}
