//! End-to-end serving benchmark: cold-cache, warm-cache, and
//! restart-warm throughput and latency percentiles at 1/4/8 concurrent
//! clients.
//!
//! Run with `cargo bench --bench serve`; results are written to
//! `BENCH_serve.json` at the workspace root (same placement convention as
//! the other suites). Under plain `cargo test` the target smoke-runs with
//! very short bursts and writes nothing.
//!
//! "Cold" requests send `"fresh": true`, which bypasses the server's
//! result-cache *read* — every request pays simulation compute (the
//! shared trace cache still amortizes workload emulation, as in any
//! long-lived server). "Warm" requests hit the result cache and serve the
//! memoized bytes, which is the steady state for repeated queries.
//! "Restart-warm" measures a **brand-new server process state** booted
//! over the durable store the previous lifetime wrote: its cache is
//! prewarmed from disk, so it must serve at warm speed from the very
//! first request without recomputing anything (the run asserts zero
//! workload emulations). The gap between restart-warm and cold is what
//! the store buys; the gap to steady-warm is the bound the CI gate
//! enforces.
//!
//! The report carries a gate-parseable `results` array (one
//! `serve/<mode>/<N>c` entry per point, `median_ns` = the run's p50
//! request latency) alongside the richer legacy `runs` array.

use mds_harness::bench::{BenchConfig, BenchReport, BenchResult};
use mds_harness::json::ToJson;
use mds_harness::tempdir::TempDir;
use mds_serve::{run_load, LoadConfig, LoadReport, LogTarget, Server, ServerConfig};
use std::path::Path;
use std::time::Duration;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
const EXPERIMENT: &str = "fig5";
const SCALE: &str = "tiny";

fn seconds_per_run(measure: bool) -> f64 {
    if let Ok(text) = std::env::var("MDS_SERVE_BENCH_SECONDS") {
        if let Ok(secs) = text.parse::<f64>() {
            if secs.is_finite() && secs > 0.0 {
                return secs;
            }
        }
    }
    if measure {
        2.0
    } else {
        0.15
    }
}

fn start_server(store_dir: Option<&Path>) -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        store_dir: store_dir.map(Path::to_path_buf),
        log: LogTarget::Discard,
        ..ServerConfig::default()
    })
    .expect("start in-process server")
}

fn run_mode(server: &Server, clients: usize, seconds: f64, fresh: bool) -> LoadReport {
    run_mode_idle(server, clients, seconds, fresh, 0)
}

fn run_mode_idle(
    server: &Server,
    clients: usize,
    seconds: f64,
    fresh: bool,
    idle: usize,
) -> LoadReport {
    run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        clients,
        duration: Duration::from_secs_f64(seconds),
        experiment: EXPERIMENT.to_string(),
        scale: SCALE.to_string(),
        fresh,
        idle,
        ..LoadConfig::default()
    })
}

fn run_json(mode: &str, clients: usize, report: &LoadReport) -> mds_harness::json::Json {
    report
        .to_json()
        .field("mode", mode)
        .field("clients_requested", clients)
}

/// One load run folded into the gate's benchmark shape: `median_ns` is
/// the run's p50 request latency, `min_ns`/`max_ns` the extremes, and
/// `iters_per_batch` the requests completed (a single "batch").
fn gate_result(mode: &str, clients: usize, report: &LoadReport) -> BenchResult {
    BenchResult {
        name: format!("serve/{mode}/{clients}c"),
        iters_per_batch: report.requests,
        batches: 1,
        median_ns: report.percentile_us(50.0) as f64 * 1000.0,
        mad_ns: 0.0,
        min_ns: report.latencies_us.first().copied().unwrap_or(0) as f64 * 1000.0,
        max_ns: report.latencies_us.last().copied().unwrap_or(0) as f64 * 1000.0,
        throughput_elems: None,
    }
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let seconds = seconds_per_run(measure);
    let label = if measure {
        "benchmarking"
    } else {
        "smoke-running"
    };
    eprintln!("{label} suite 'serve' ({EXPERIMENT}@{SCALE}, {seconds}s per point)");

    let store = TempDir::new("mds-serve-bench-store").expect("bench store dir");
    let server = start_server(Some(store.path()));

    let mut runs = Vec::new();
    let mut results = Vec::new();
    for clients in CLIENT_COUNTS {
        let cold = run_mode(&server, clients, seconds, true);
        assert!(
            cold.requests > 0,
            "cold run at {clients} clients completed no requests"
        );
        eprintln!("  cold/{clients}c: {}", cold.render());
        runs.push(run_json("cold", clients, &cold));
        results.push(gate_result("cold", clients, &cold));

        // Prime the result cache, then measure the warm path.
        let _ = run_mode(&server, 1, 0.05, false);
        let warm = run_mode(&server, clients, seconds, false);
        assert!(
            warm.requests > 0,
            "warm run at {clients} clients completed no requests"
        );
        eprintln!("  warm/{clients}c: {}", warm.render());
        runs.push(run_json("warm", clients, &warm));
        results.push(gate_result("warm", clients, &warm));
    }

    // 1k parked keep-alive connections must not tax the active path:
    // the event-driven core pays per readiness event, not per held
    // connection, so warm latency with the idle fleet parked should sit
    // within noise of the plain warm series above.
    let idle_fleet = if measure { 1000 } else { 32 };
    let warm_idle = run_mode_idle(&server, 4, seconds, false, idle_fleet);
    assert!(
        warm_idle.requests > 0,
        "idle-fleet warm run completed no requests"
    );
    assert_eq!(
        warm_idle.idle, idle_fleet as u64,
        "every idler must park successfully"
    );
    eprintln!("  idle_keepalive_1k/4c: {}", warm_idle.render());
    runs.push(run_json("idle_keepalive_1k", 4, &warm_idle));
    results.push(gate_result("idle_keepalive_1k", 4, &warm_idle));

    let trace_emulations = server.trace_cache().misses();
    server.shutdown();

    // Restart-warm: a fresh server state over the store the first
    // lifetime persisted. Nothing primes it — the boot replay must make
    // the very first request a cache hit, so any emulation here means
    // the durable tier failed to carry the state across the restart.
    let reborn = start_server(Some(store.path()));
    assert!(reborn.prewarmed() > 0, "the store must prewarm the cache");
    for clients in CLIENT_COUNTS {
        let restart_warm = run_mode(&reborn, clients, seconds, false);
        assert!(
            restart_warm.requests > 0,
            "restart-warm run at {clients} clients completed no requests"
        );
        eprintln!("  restart_warm/{clients}c: {}", restart_warm.render());
        runs.push(run_json("restart_warm", clients, &restart_warm));
        results.push(gate_result("restart_warm", clients, &restart_warm));
    }
    assert_eq!(
        reborn.trace_cache().misses(),
        0,
        "restart-warm serving must not emulate any workload"
    );
    reborn.shutdown();

    if !measure {
        return;
    }
    let report = BenchReport {
        suite: "serve".to_string(),
        scale: SCALE.to_string(),
        // Synthesized timing block so the report parses like every other
        // suite's: one batch of `seconds` wall-clock per benchmark.
        config: BenchConfig {
            warmup_ms: 0,
            batch_ms: (seconds * 1000.0) as u64,
            batches: 1,
            max_ms: (seconds * 1000.0) as u64,
        },
        results,
    };
    let doc = report
        .to_json()
        .field("experiment", EXPERIMENT)
        .field("seconds_per_run", seconds)
        .field("trace_emulations", trace_emulations)
        .field("runs", mds_harness::json::Json::Array(runs));
    let path = mds_harness::bench::report_dir().join("BENCH_serve.json");
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
