//! End-to-end serving benchmark: cold-cache versus warm-cache throughput
//! and latency percentiles at 1/4/8 concurrent clients.
//!
//! Run with `cargo bench --bench serve`; results are written to
//! `BENCH_serve.json` at the workspace root (same placement convention as
//! the other suites). Under plain `cargo test` the target smoke-runs with
//! very short bursts and writes nothing.
//!
//! "Cold" requests send `"fresh": true`, which bypasses the server's
//! result-cache *read* — every request pays simulation compute (the
//! shared trace cache still amortizes workload emulation, as in any
//! long-lived server). "Warm" requests hit the result cache and serve the
//! memoized bytes, which is the steady state for repeated queries. The
//! gap between the two is exactly what the result cache buys.

use mds_serve::{run_load, LoadConfig, LoadReport, LogTarget, Server, ServerConfig};
use std::time::Duration;

const CLIENT_COUNTS: [usize; 3] = [1, 4, 8];
const EXPERIMENT: &str = "fig5";
const SCALE: &str = "tiny";

fn seconds_per_run(measure: bool) -> f64 {
    if let Ok(text) = std::env::var("MDS_SERVE_BENCH_SECONDS") {
        if let Ok(secs) = text.parse::<f64>() {
            if secs.is_finite() && secs > 0.0 {
                return secs;
            }
        }
    }
    if measure {
        2.0
    } else {
        0.15
    }
}

fn run_mode(server: &Server, clients: usize, seconds: f64, fresh: bool) -> LoadReport {
    run_load(&LoadConfig {
        addr: server.local_addr().to_string(),
        clients,
        duration: Duration::from_secs_f64(seconds),
        experiment: EXPERIMENT.to_string(),
        scale: SCALE.to_string(),
        fresh,
        ..LoadConfig::default()
    })
}

fn run_json(mode: &str, clients: usize, report: &LoadReport) -> mds_harness::json::Json {
    report
        .to_json()
        .field("mode", mode)
        .field("clients_requested", clients)
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let seconds = seconds_per_run(measure);
    let label = if measure {
        "benchmarking"
    } else {
        "smoke-running"
    };
    eprintln!("{label} suite 'serve' ({EXPERIMENT}@{SCALE}, {seconds}s per point)");

    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 8,
        log: LogTarget::Discard,
        ..ServerConfig::default()
    })
    .expect("start in-process server");

    let mut runs = Vec::new();
    for clients in CLIENT_COUNTS {
        let cold = run_mode(&server, clients, seconds, true);
        assert!(
            cold.requests > 0,
            "cold run at {clients} clients completed no requests"
        );
        eprintln!("  cold/{clients}c: {}", cold.render());
        runs.push(run_json("cold", clients, &cold));

        // Prime the result cache, then measure the warm path.
        let _ = run_mode(&server, 1, 0.05, false);
        let warm = run_mode(&server, clients, seconds, false);
        assert!(
            warm.requests > 0,
            "warm run at {clients} clients completed no requests"
        );
        eprintln!("  warm/{clients}c: {}", warm.render());
        runs.push(run_json("warm", clients, &warm));
    }

    let trace_emulations = server.trace_cache().misses();
    server.shutdown();

    if !measure {
        return;
    }
    let doc = mds_harness::json::Json::object()
        .field("suite", "serve")
        .field("experiment", EXPERIMENT)
        .field("scale", SCALE)
        .field("seconds_per_run", seconds)
        .field("trace_emulations", trace_emulations)
        .field("runs", mds_harness::json::Json::Array(runs));
    let path = mds_harness::bench::report_dir().join("BENCH_serve.json");
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
