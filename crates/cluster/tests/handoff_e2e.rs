//! Warm-state handoff across a backend replacement, over real sockets.
//!
//! The load-bearing guarantee proved here: when a backend leaves rotation
//! and a replacement comes back on the same address, the gateway pushes
//! the ring-owned warm entries from its healthy neighbors into the
//! newcomer (`GET /v1/cache` on the donor, chunked `POST /v1/cache` on
//! the target), so the replacement answers its shard warm **without
//! recomputing anything** — zero workload emulations on the new process.

use mds_cluster::gateway::{Gateway, GatewayConfig};
use mds_serve::client::request_once;
use mds_serve::http::ClientResponse;
use mds_serve::{LogTarget, Server, ServerConfig};
use mds_workloads::Scale;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn backend_config(addr: &str) -> ServerConfig {
    ServerConfig {
        addr: addr.to_string(),
        workers: 2,
        queue_depth: 16,
        jobs: Some(2),
        log: LogTarget::Memory,
        ..ServerConfig::default()
    }
}

/// Starts a replacement on the exact address the dead backend vacated.
/// The freed port can linger briefly (connection teardown), so retry the
/// bind instead of flaking.
fn start_replacement(addr: &str) -> Server {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Server::start(backend_config(addr)) {
            Ok(server) => return server,
            Err(e) => {
                assert!(Instant::now() < deadline, "cannot rebind {addr}: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn request(gateway: &Gateway, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    request_once(
        &gateway.local_addr().to_string(),
        method,
        target,
        body,
        Duration::from_secs(60),
    )
    .expect("gateway round trip")
}

/// The exact bytes `repro fig5 --json` produces for the tiny scale.
fn cli_fig5_tiny() -> String {
    let mut h = mds_bench::Harness::with_runner(Scale::Tiny, mds_runner::Runner::new(1));
    let table = mds_bench::experiment(&mut h, "fig5").unwrap();
    mds_bench::results_doc(
        "fig5",
        mds_bench::experiment_title("fig5").unwrap(),
        Scale::Tiny,
        &table,
    )
    .pretty()
}

const FIG5_TINY: &[u8] = br#"{"experiment":"fig5","scale":"tiny"}"#;

#[test]
fn a_replaced_backend_is_warmed_by_its_neighbor_not_by_recompute() {
    let first = Server::start(backend_config("127.0.0.1:0")).expect("start backend");
    let second = Server::start(backend_config("127.0.0.1:0")).expect("start backend");
    let addrs = [
        first.local_addr().to_string(),
        second.local_addr().to_string(),
    ];
    let gateway = Gateway::start(GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: addrs.to_vec(),
        workers: 4,
        probe_interval: Duration::from_millis(50),
        log: LogTarget::Memory,
        ..GatewayConfig::default()
    })
    .expect("start gateway");
    let expected = cli_fig5_tiny();

    // Warm the key through the gateway; consistent hashing parks it on
    // exactly one backend — that one becomes the victim.
    let cold = request(&gateway, "POST", "/v1/experiments", FIG5_TINY);
    assert_eq!(cold.status, 200);
    assert_eq!(cold.body, expected.as_bytes());
    let (victim, survivor) = if first.result_cache().len() == 1 {
        (first, second)
    } else {
        assert_eq!(second.result_cache().len(), 1, "someone must own the key");
        (second, first)
    };
    let victim_addr = victim.local_addr().to_string();
    victim.shutdown();

    // Failover recomputes on the survivor, which becomes the donor with
    // the warm entry. Meanwhile the prober ejects the victim.
    let failover = request(&gateway, "POST", "/v1/experiments", FIG5_TINY);
    assert_eq!(failover.status, 200);
    assert_eq!(failover.body, expected.as_bytes());
    assert_eq!(survivor.result_cache().len(), 1);
    let down = format!("mds_gateway_backend_healthy{{backend=\"{victim_addr}\"}} 0");
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let metrics = request(&gateway, "GET", "/metrics", b"");
        if String::from_utf8_lossy(&metrics.body).contains(&down) {
            break;
        }
        assert!(Instant::now() < deadline, "victim never left rotation");
        std::thread::sleep(Duration::from_millis(25));
    }

    // The replacement boots empty on the vacated address. The prober's
    // unhealthy-to-healthy transition triggers the neighbor handoff.
    let replacement = start_replacement(&victim_addr);
    assert_eq!(replacement.result_cache().len(), 0);
    let deadline = Instant::now() + Duration::from_secs(10);
    while replacement.result_cache().is_empty() {
        assert!(
            Instant::now() < deadline,
            "handoff never reached the replacement"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert_eq!(
        replacement.trace_cache().misses(),
        0,
        "the handoff must transfer bytes, not trigger recompute"
    );
    let metrics = gateway.metrics();
    assert!(metrics.handoffs_total.load(Ordering::Relaxed) >= 1);
    assert!(metrics.handoff_keys_total.load(Ordering::Relaxed) >= 1);
    assert_eq!(metrics.handoff_errors_total.load(Ordering::Relaxed), 0);

    // A keyed request now routes to the warmed replacement: identical
    // bytes, served from the transferred cache, still zero emulations.
    let warm = request(&gateway, "POST", "/v1/experiments", FIG5_TINY);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, expected.as_bytes());
    assert_eq!(replacement.trace_cache().misses(), 0);
    assert!(replacement.result_cache().hits() >= 1);

    gateway.shutdown();
    replacement.shutdown();
    survivor.shutdown();
}
