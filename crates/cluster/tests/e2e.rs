//! End-to-end cluster tests over real sockets.
//!
//! The load-bearing guarantees proved here:
//!
//! - Experiment documents fetched **through the gateway** are
//!   byte-identical to the canonical `repro <id> --json` output, cold
//!   and warm, sharded and hedged — the cluster tier is a transport.
//! - Gracefully stopping one of two backends in the middle of
//!   closed-loop load produces **zero client-visible failures**: the
//!   drain-aware readiness probe ejects the backend and the failover
//!   path absorbs the stragglers.
//! - A dead backend in the fleet never surfaces to clients; the
//!   gateway's `/v1/cluster` and `/metrics` expose its state instead.
//! - When *no* backend is available the gateway says so with `503` +
//!   `Retry-After` (backpressure, not an error), and its own readiness
//!   flips accordingly.

use mds_cluster::fleet::{Fleet, FleetConfig};
use mds_cluster::gateway::{Gateway, GatewayConfig};
use mds_serve::client::request_once;
use mds_serve::http::ClientResponse;
use mds_serve::{run_load, LoadConfig, LogTarget};
use mds_workloads::Scale;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

fn fleet(backends: usize) -> Fleet {
    Fleet::spawn(&FleetConfig {
        backends,
        workers: 4,
        jobs: Some(2),
        ..FleetConfig::default()
    })
    .expect("spawn fleet")
}

fn gateway_over(backends: Vec<String>) -> Gateway {
    Gateway::start(GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        backends,
        workers: 4,
        probe_interval: Duration::from_millis(50),
        log: LogTarget::Memory,
        ..GatewayConfig::default()
    })
    .expect("start gateway")
}

fn request(gateway: &Gateway, method: &str, target: &str, body: &[u8]) -> ClientResponse {
    request_once(
        &gateway.local_addr().to_string(),
        method,
        target,
        body,
        Duration::from_secs(60),
    )
    .expect("gateway round trip")
}

/// The exact bytes `repro <id> --json` produces for the tiny scale.
fn cli_doc(id: &str) -> String {
    let mut h = mds_bench::Harness::with_runner(Scale::Tiny, mds_runner::Runner::new(1));
    let table = mds_bench::experiment(&mut h, id).unwrap();
    mds_bench::results_doc(
        id,
        mds_bench::experiment_title(id).unwrap(),
        Scale::Tiny,
        &table,
    )
    .pretty()
}

/// The exact bytes `repro fig5 --json` produces for the tiny scale.
fn cli_fig5_tiny() -> String {
    cli_doc("fig5")
}

#[test]
fn gateway_serves_cli_identical_bytes_and_shards_the_key() {
    let fleet = fleet(2);
    let gateway = gateway_over(fleet.addrs());
    let body = br#"{"experiment":"fig5","scale":"tiny"}"#;

    let cold = request(&gateway, "POST", "/v1/experiments", body);
    assert_eq!(
        cold.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&cold.body)
    );
    assert_eq!(cold.header("content-type"), Some("application/json"));
    let expected = cli_fig5_tiny();
    assert_eq!(
        cold.body,
        expected.as_bytes(),
        "gateway-served bytes must equal repro --json output"
    );

    // Warm repeat: identical bytes again, from the backend's cache.
    let warm = request(&gateway, "POST", "/v1/experiments", body);
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, expected.as_bytes());

    // Consistent hashing: both keyed requests landed on one backend.
    let attempts: Vec<u64> = gateway
        .backends()
        .iter()
        .map(|b| b.stats.attempts.load(Ordering::Relaxed))
        .collect();
    assert_eq!(attempts.iter().sum::<u64>(), 2, "{attempts:?}");
    assert!(
        attempts.contains(&2),
        "one backend must own the key's shard: {attempts:?}"
    );

    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn unkeyed_listing_proxies_round_robin() {
    let fleet = fleet(2);
    let gateway = gateway_over(fleet.addrs());
    for _ in 0..4 {
        let response = request(&gateway, "GET", "/v1/experiments", b"");
        assert_eq!(response.status, 200);
        assert!(String::from_utf8_lossy(&response.body).contains("fig5"));
    }
    let attempts: Vec<u64> = gateway
        .backends()
        .iter()
        .map(|b| b.stats.attempts.load(Ordering::Relaxed))
        .collect();
    assert!(
        attempts.iter().all(|&a| a >= 2),
        "round robin must spread unkeyed requests: {attempts:?}"
    );
    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn stopping_one_of_two_backends_mid_load_is_invisible_to_clients() {
    let mut fleet = fleet(2);
    let gateway = gateway_over(fleet.addrs());
    let addr = gateway.local_addr().to_string();

    // Prime both shards so the load phase measures serving, not compute.
    let prime = request(
        &gateway,
        "POST",
        "/v1/experiments",
        br#"{"experiment":"fig5","scale":"tiny"}"#,
    );
    assert_eq!(prime.status, 200);

    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        fleet.stop(0);
        fleet
    });
    let report = run_load(&LoadConfig {
        addr,
        clients: 4,
        duration: Duration::from_millis(1200),
        experiment: "fig5".to_string(),
        scale: "tiny".to_string(),
        ..LoadConfig::default()
    });
    let fleet = stopper.join().expect("stopper thread");

    assert!(report.requests > 0, "load must get through: {report:?}");
    assert_eq!(
        report.errors, 0,
        "stopping a backend must be client-invisible: {report:?}"
    );
    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn a_dead_backend_never_surfaces_to_clients() {
    // Bind-then-drop guarantees a closed port.
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let fleet = fleet(1);
    let mut backends = vec![dead_addr.clone()];
    backends.extend(fleet.addrs());
    let gateway = gateway_over(backends);

    // Unkeyed requests round-robin across both slots; every one must
    // still succeed (failover or rotation ejection hides the corpse).
    for _ in 0..6 {
        let response = request(&gateway, "GET", "/v1/experiments", b"");
        assert_eq!(response.status, 200);
    }
    // The keyed path too, whichever shard the key lands on.
    let keyed = request(
        &gateway,
        "POST",
        "/v1/experiments",
        br#"{"experiment":"fig5","scale":"tiny"}"#,
    );
    assert_eq!(keyed.status, 200);
    assert_eq!(keyed.body, cli_fig5_tiny().as_bytes());

    // The gateway knows: the dead backend is out of rotation (probed
    // unhealthy, breaker open, or failures recorded).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let status = request(&gateway, "GET", "/v1/cluster", b"");
        assert_eq!(status.status, 200);
        let text = String::from_utf8_lossy(&status.body).to_string();
        let ejected = text.contains(r#""healthy":false"#) || text.contains(r#""breaker":"open""#);
        if ejected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "dead backend never left rotation: {text}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // Metrics expose the labeled per-backend families.
    let metrics = request(&gateway, "GET", "/metrics", b"");
    let text = String::from_utf8_lossy(&metrics.body).to_string();
    for needle in [
        format!("mds_gateway_backend_healthy{{backend=\"{dead_addr}\"}} 0"),
        "mds_gateway_route_requests_total{route=\"GET /v1/experiments\"}".to_string(),
        "mds_gateway_proxy_microseconds_count".to_string(),
    ] {
        assert!(text.contains(&needle), "missing {needle} in:\n{text}");
    }

    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn no_backend_available_is_backpressure_not_an_error() {
    let dead_addr = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap().to_string()
    };
    let gateway = gateway_over(vec![dead_addr]);

    // Keyed request against an unreachable fleet: 503 + Retry-After.
    let response = request(
        &gateway,
        "POST",
        "/v1/experiments",
        br#"{"experiment":"fig5","scale":"tiny"}"#,
    );
    assert_eq!(
        response.status,
        503,
        "{:?}",
        String::from_utf8_lossy(&response.body)
    );
    assert_eq!(response.header("retry-after"), Some("1"));

    // Gateway readiness flips once the prober agrees nothing is up.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let ready = request(&gateway, "GET", "/readyz", b"");
        if ready.status == 503 {
            assert!(String::from_utf8_lossy(&ready.body).contains("no backend"));
            break;
        }
        assert!(Instant::now() < deadline, "readiness never flipped");
        std::thread::sleep(Duration::from_millis(25));
    }
    // Liveness stays green throughout.
    assert_eq!(request(&gateway, "GET", "/healthz", b"").status, 200);
    gateway.shutdown();
}

#[test]
fn bad_requests_pass_through_the_backend_verbatim() {
    let fleet = fleet(1);
    let gateway = gateway_over(fleet.addrs());

    // Unparsable body: forwarded unkeyed, the backend's positioned 400
    // comes back untouched.
    let bad = request(&gateway, "POST", "/v1/experiments", b"{\"experiment\":42}");
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8_lossy(&bad.body).contains("error"));

    // Unknown experiment: parses at the gateway (no cache key match is
    // fine), rejected by the backend.
    let unknown = request(
        &gateway,
        "POST",
        "/v1/experiments",
        br#"{"experiment":"nope"}"#,
    );
    assert_eq!(unknown.status, 400);
    assert!(String::from_utf8_lossy(&unknown.body).contains("nope"));

    // Gateway-level routing errors.
    assert_eq!(request(&gateway, "GET", "/v1/nope", b"").status, 404);
    assert_eq!(
        request(&gateway, "DELETE", "/v1/experiments", b"").status,
        405
    );

    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn hedged_requests_serve_identical_bytes() {
    let fleet = fleet(2);
    let gateway = Gateway::start(GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: fleet.addrs(),
        workers: 4,
        // Aggressive hedging: the cold compute comfortably exceeds 1ms,
        // so the second replica is raced on the first request.
        hedge_after: Some(Duration::from_millis(1)),
        probe_interval: Duration::from_millis(50),
        log: LogTarget::Memory,
        ..GatewayConfig::default()
    })
    .expect("start gateway");

    let body = br#"{"experiment":"fig5","scale":"tiny"}"#;
    let expected = cli_fig5_tiny();
    for _ in 0..2 {
        let response = request(&gateway, "POST", "/v1/experiments", body);
        assert_eq!(response.status, 200);
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "hedged responses must stay byte-identical"
        );
    }
    assert!(
        gateway.metrics().hedges_total.load(Ordering::Relaxed) >= 1,
        "the cold request should have hedged"
    );
    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn gateway_grid_matches_lone_backend_and_cli_byte_for_byte() {
    let fleet = fleet(2);
    let gateway = gateway_over(fleet.addrs());
    let body = br#"{"experiments":["table2","fig5","table1"],"scale":"tiny"}"#;
    let expected = cli_doc("table2") + &cli_doc("fig5") + &cli_doc("table1");

    // Scatter-gathered through the gateway: request-order concatenation
    // of the canonical per-experiment documents.
    let scattered = request(&gateway, "POST", "/v1/grids", body);
    assert_eq!(
        scattered.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&scattered.body)
    );
    assert_eq!(scattered.header("content-type"), Some("application/json"));
    assert_eq!(
        scattered.body,
        expected.as_bytes(),
        "gateway grid bytes must equal the concatenated repro --json documents"
    );

    // A lone backend answering the whole grid itself: identical bytes.
    let lone = request_once(
        &fleet.addrs()[0],
        "POST",
        "/v1/grids",
        body,
        Duration::from_secs(60),
    )
    .expect("lone backend grid");
    assert_eq!(lone.status, 200);
    assert_eq!(
        lone.body,
        expected.as_bytes(),
        "lone-backend grid must match the gateway's scatter-gather answer"
    );

    // A single-experiment grid is the /v1/experiments body.
    let single = request(
        &gateway,
        "POST",
        "/v1/grids",
        br#"{"experiments":["fig5"],"scale":"tiny"}"#,
    );
    assert_eq!(single.status, 200);
    assert_eq!(single.body, cli_fig5_tiny().as_bytes());

    // The scatter actually fanned out and the status page knows.
    let metrics = gateway.metrics();
    assert!(metrics.grids_total.load(Ordering::Relaxed) >= 2);
    assert!(
        metrics.grid_cells_total.load(Ordering::Relaxed) >= 2,
        "multi-cell grid must dispatch cells upstream"
    );
    let status = request(&gateway, "GET", "/v1/cluster", b"");
    let text = String::from_utf8_lossy(&status.body).to_string();
    assert!(text.contains("\"grids\""), "missing grids in {text}");
    assert!(
        text.contains("\"grid_cells\""),
        "missing grid_cells in {text}"
    );

    // Malformed grids are rejected at the gateway with a positioned 400.
    let bad = request(
        &gateway,
        "POST",
        "/v1/grids",
        br#"{"experiments":["nope"]}"#,
    );
    assert_eq!(bad.status, 400);
    assert!(String::from_utf8_lossy(&bad.body).contains("nope"));
    assert_eq!(request(&gateway, "GET", "/v1/grids", b"").status, 405);

    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn grid_survives_losing_a_backend_mid_flight() {
    let mut fleet = fleet(2);
    let gateway = gateway_over(fleet.addrs());
    // `fresh` keeps every backend recomputing so the stop lands while
    // grid cells are genuinely in flight.
    let body = br#"{"experiments":["fig5","table1"],"scale":"tiny","fresh":true}"#;
    let expected = cli_doc("fig5") + &cli_doc("table1");

    let first = request(&gateway, "POST", "/v1/grids", body);
    assert_eq!(
        first.status,
        200,
        "{:?}",
        String::from_utf8_lossy(&first.body)
    );
    assert_eq!(first.body, expected.as_bytes());

    let stopper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        fleet.stop(0);
        fleet
    });
    // Grids issued across the loss of a backend: every one must still
    // answer 200 with the canonical bytes — failover re-homes the dead
    // owner's cells and the merger's local fallback covers the rest.
    for _ in 0..4 {
        let response = request(&gateway, "POST", "/v1/grids", body);
        assert_eq!(
            response.status,
            200,
            "{:?}",
            String::from_utf8_lossy(&response.body)
        );
        assert_eq!(
            response.body,
            expected.as_bytes(),
            "losing a backend must never change grid bytes"
        );
    }
    let fleet = stopper.join().expect("stopper thread");
    assert_eq!(fleet.running(), 1, "the stop must have landed mid-loop");

    gateway.shutdown();
    fleet.shutdown();
}

#[test]
fn gateway_shutdown_via_http_drains_cleanly() {
    let fleet = fleet(1);
    let gateway = gateway_over(fleet.addrs());
    let addr = gateway.local_addr().to_string();
    let response = request(&gateway, "POST", "/v1/shutdown", b"");
    assert_eq!(response.status, 200);
    gateway.wait_for_shutdown();
    gateway.shutdown();
    // The port stops answering after the drain.
    assert!(request_once(&addr, "GET", "/healthz", b"", Duration::from_millis(500)).is_err());
    fleet.shutdown();
}
