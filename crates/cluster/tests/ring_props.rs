//! Property tests for the consistent-hash ring.
//!
//! Three guarantees are pinned, each against randomized fleets and key
//! populations:
//!
//! - **Reference-model agreement** — the binary-search successor walk
//!   routes every key exactly like a naive linear-scan model rebuilt
//!   from the public hash functions.
//! - **Bounded imbalance** — with 128 vnodes, no backend in a 2–16
//!   backend fleet owns more than 2.5× its fair share of a large key
//!   population (and none starves).
//! - **Minimal disruption** — growing the fleet by one backend only
//!   remaps keys *onto the new backend* (the exact consistent-hashing
//!   property), and the remapped fraction stays near 1/N.

use mds_cluster::ring::HashRing;
use mds_harness::prelude::*;

fn names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
}

fn keys(seed: u64, count: usize) -> Vec<String> {
    (0..count).map(|i| format!("exp{seed}-{i}@tiny")).collect()
}

/// A naive reference ring: all points in a flat list, primary found by
/// linear scan for the smallest point hash at-or-after the key (wrapping
/// to the globally smallest point).
fn reference_primary(names: &[String], vnodes: usize, key: &str) -> usize {
    let mut points: Vec<(u64, usize)> = Vec::new();
    for (idx, name) in names.iter().enumerate() {
        for v in 0..vnodes {
            points.push((HashRing::point_hash(name, v), idx));
        }
    }
    let hash = HashRing::key_hash(key);
    let successor = points
        .iter()
        .filter(|&&(p, _)| p >= hash)
        .min()
        .or_else(|| points.iter().min())
        .expect("non-empty ring");
    successor.1
}

properties! {
    #![config(PropConfig { cases: 24, ..PropConfig::default() })]

    #[test]
    fn binary_search_agrees_with_the_reference_model(
        n in 1usize..9,
        vnodes in 1usize..33,
        seed: u64,
    ) {
        let names = names(n);
        let ring = HashRing::new(&names, vnodes);
        for key in keys(seed, 50) {
            prop_assert_eq!(
                ring.primary(&key).unwrap(),
                reference_primary(&names, vnodes, &key)
            );
        }
    }

    #[test]
    fn load_imbalance_is_bounded_across_fleet_sizes(
        n in 2usize..17,
        seed: u64,
    ) {
        let ring = HashRing::new(&names(n), 128);
        let population = 2000;
        let mut owned = vec![0usize; n];
        for key in keys(seed, population) {
            owned[ring.primary(&key).unwrap()] += 1;
        }
        let mean = population as f64 / n as f64;
        for (idx, &count) in owned.iter().enumerate() {
            prop_assert!(count > 0, "backend {idx} starved: {owned:?}");
            prop_assert!(
                (count as f64) <= 2.5 * mean,
                "backend {idx} owns {count} of {population} (mean {mean:.0}): {owned:?}"
            );
        }
    }

    #[test]
    fn growing_the_fleet_only_remaps_keys_onto_the_new_backend(
        n in 2usize..16,
        seed: u64,
    ) {
        let before = HashRing::new(&names(n), 128);
        let after = HashRing::new(&names(n + 1), 128);
        let population = 1500;
        let mut remapped = 0usize;
        for key in keys(seed, population) {
            let old = before.primary(&key).unwrap();
            let new = after.primary(&key).unwrap();
            if old != new {
                prop_assert_eq!(
                    new, n,
                    "key {} moved between PRE-existing backends {} -> {}",
                    key, old, new
                );
                remapped += 1;
            }
        }
        // ~1/(n+1) of keys should move to the newcomer; allow generous
        // statistical slack but reject gross over-remapping.
        let expected = population as f64 / (n + 1) as f64;
        prop_assert!(
            (remapped as f64) <= 2.5 * expected,
            "{remapped} of {population} keys remapped (expected ~{expected:.0})"
        );
        prop_assert!(remapped > 0, "the new backend must receive some keys");
    }

    #[test]
    fn failover_order_is_prefix_stable_and_distinct(
        n in 2usize..9,
        want in 1usize..9,
        seed: u64,
    ) {
        let ring = HashRing::new(&names(n), 64);
        for key in keys(seed, 30) {
            let shorter = ring.replicas(&key, want);
            let longer = ring.replicas(&key, want + 1);
            prop_assert_eq!(&longer[..shorter.len()], &shorter[..],
                "replicas({}) must be a prefix of replicas({})", want, want + 1);
            let mut sorted = longer.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), longer.len(), "replicas must be distinct");
        }
    }
}
