//! Property tests for grid scatter-gather planning and merging.
//!
//! The merge contract under randomization: however a grid's cells are
//! placed across backends and in whatever order their partial results
//! arrive, the merged response is byte-identical to serial
//! submission-order merging and to a lone harness computing the whole
//! grid itself — and cells that never arrive at all are recomputed
//! locally without changing a byte. These are the properties that make
//! the gateway's streaming gather correct by construction: nothing in
//! the scatter path (lane scheduling, hedging, failover, backend loss)
//! can influence the answer.

use mds_bench::grid::GridRequest;
use mds_cluster::grid::{plan, CellPlan, Merger};
use mds_cluster::ring::HashRing;
use mds_harness::json::Json;
use mds_harness::prelude::*;
use mds_harness::rng::Rng;
use mds_runner::{wire, Grid, Runner};
use mds_workloads::Scale;

/// Cheap-at-tiny experiments the random grids draw from (duplicates and
/// overlapping demand sets included on purpose).
const POOL: [&str; 3] = ["fig5", "table1", "table2"];

fn backend_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7878")).collect()
}

/// What a backend's `POST /v1/cells` does: decode the wire job, run it,
/// answer `{"id", "output"}`. `runner` carries that backend's trace
/// cache across the cells placed on it.
fn backend_answer(runner: &Runner, body: &str) -> Vec<u8> {
    let doc = Json::parse(body).expect("cell body is JSON");
    let job = wire::decode_job(&doc).expect("cell body is a wire job");
    let id = job.id.clone();
    let mut grid = Grid::new(job.scale);
    grid.push(job);
    let result = runner
        .run(&grid)
        .results
        .into_iter()
        .next()
        .expect("one job in, one result out");
    Json::object()
        .field("id", id)
        .field("output", wire::encode_output(&result.output))
        .pretty()
        .into_bytes()
}

fn random_request(rng: &mut Rng, len: usize) -> GridRequest {
    GridRequest {
        experiments: (0..len)
            .map(|_| POOL[rng.gen_range(0..POOL.len())].to_string())
            .collect(),
        scale: Scale::Tiny,
        fresh: false,
    }
}

/// The reference model: one lone harness computing the whole grid.
fn lone_harness_doc(request: &GridRequest) -> String {
    let mut harness = mds_bench::Harness::with_runner(request.scale, Runner::new(1));
    mds_bench::grid::merged_doc(&mut harness, &request.experiments).expect("local grid")
}

/// Executes every cell on its ring owner's runner, emulating a fleet of
/// `backends` backends with per-backend trace caches.
fn fleet_answers(cells: &[CellPlan], backends: usize) -> Vec<Vec<u8>> {
    let ring = HashRing::new(&backend_names(backends), 64);
    let runners: Vec<Runner> = (0..backends).map(|_| Runner::new(1)).collect();
    cells
        .iter()
        .map(|cell| {
            let owner = ring.primary(&cell.route_key).expect("non-empty ring");
            backend_answer(&runners[owner], &cell.body)
        })
        .collect()
}

properties! {
    #![config(PropConfig { cases: 6, ..PropConfig::default() })]

    #[test]
    fn out_of_order_arrival_merges_byte_identical_to_serial_order(
        backends in 1usize..5,
        len in 1usize..5,
        seed: u64,
    ) {
        let mut rng = Rng::seed_from_u64(seed);
        let request = random_request(&mut rng, len);
        let grid_plan = plan(&request);
        let expected = lone_harness_doc(&request);
        let answers = fleet_answers(&grid_plan.cells, backends);

        // Serial submission order matches the lone harness byte for byte.
        let mut serial = Merger::new(&request, Runner::new(1));
        for (cell, answer) in grid_plan.cells.iter().zip(&answers) {
            prop_assert!(serial.accept(cell, answer).is_ok());
        }
        prop_assert_eq!(serial.accepted(), grid_plan.cells.len());
        prop_assert_eq!(&serial.finish().unwrap(), &expected);

        // A random arrival permutation merges to the same bytes, with
        // nothing recomputed locally.
        let mut order: Vec<usize> = (0..grid_plan.cells.len()).collect();
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..i + 1));
        }
        let mut shuffled = Merger::new(&request, Runner::new(1));
        for &i in &order {
            prop_assert!(shuffled
                .accept(&grid_plan.cells[i], &answers[i])
                .is_ok());
        }
        prop_assert_eq!(shuffled.local_runs(), 0, "no local compute before finish");
        prop_assert_eq!(&shuffled.finish().unwrap(), &expected);
    }

    #[test]
    fn dropped_cells_fall_back_locally_without_changing_bytes(
        backends in 1usize..4,
        len in 1usize..4,
        seed: u64,
    ) {
        let mut rng = Rng::seed_from_u64(seed ^ 0x9e37_79b9);
        let request = random_request(&mut rng, len);
        let grid_plan = plan(&request);
        let expected = lone_harness_doc(&request);
        let answers = fleet_answers(&grid_plan.cells, backends);

        // Each cell independently "fails" (never arrives) half the time.
        let mut merger = Merger::new(&request, Runner::new(1));
        let mut delivered = 0usize;
        for (cell, answer) in grid_plan.cells.iter().zip(&answers) {
            if rng.gen_range(0..2) == 0 {
                continue;
            }
            prop_assert!(merger.accept(cell, answer).is_ok());
            delivered += 1;
        }
        prop_assert_eq!(merger.accepted(), delivered);
        prop_assert_eq!(
            &merger.finish().unwrap(),
            &expected,
            "local fallback must not change the merged bytes"
        );
    }
}
