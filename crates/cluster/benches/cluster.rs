//! Cluster-tier benchmark: gateway throughput and latency over 1, 2,
//! and 4 backends, cold-cache and warm-cache.
//!
//! Run with `cargo bench --bench cluster`; results are written to
//! `BENCH_cluster.json` at the workspace root. Under plain `cargo test`
//! the target smoke-runs with very short bursts and writes nothing.
//!
//! Each point starts a fresh in-process fleet and a gateway in front of
//! it, then offers closed-loop load *through the gateway* with the same
//! generator the `serve` suite uses — so the numbers are directly
//! comparable: the delta against `BENCH_serve.json` is the cost (and,
//! at >1 backend, the win) of the cluster tier. "Cold" sends
//! `"fresh": true` so every request pays simulation; "warm" measures
//! the steady state where backends answer from their result caches and
//! the gateway adds only its proxy hop.
//!
//! The `grid_cold` series times one whole `POST /v1/grids` (fig5)
//! against a fresh fleet per sample, one simulation thread per backend:
//! the scatter-gather cold-grid wall time whose 4-backend point the
//! bench gate requires to beat the 1-backend point by 1.7x on hosts
//! with at least four cores (see `ci/bench_gate.sh`).

use mds_cluster::fleet::{Fleet, FleetConfig};
use mds_cluster::gateway::{Gateway, GatewayConfig};
use mds_harness::bench::{BenchConfig, BenchReport, BenchResult};
use mds_harness::json::{Json, ToJson};
use mds_serve::client::request_once;
use mds_serve::{run_load, LoadConfig, LoadReport, LogTarget};
use std::time::{Duration, Instant};

const BACKEND_COUNTS: [usize; 3] = [1, 2, 4];
const CLIENTS: usize = 8;
const EXPERIMENT: &str = "fig5";
const SCALE: &str = "tiny";

fn seconds_per_run(measure: bool) -> f64 {
    if let Ok(text) = std::env::var("MDS_CLUSTER_BENCH_SECONDS") {
        if let Ok(secs) = text.parse::<f64>() {
            if secs.is_finite() && secs > 0.0 {
                return secs;
            }
        }
    }
    if measure {
        2.0
    } else {
        0.15
    }
}

fn run_mode(gateway: &Gateway, seconds: f64, fresh: bool) -> LoadReport {
    run_load(&LoadConfig {
        addr: gateway.local_addr().to_string(),
        clients: CLIENTS,
        duration: Duration::from_secs_f64(seconds),
        experiment: EXPERIMENT.to_string(),
        scale: SCALE.to_string(),
        fresh,
        ..LoadConfig::default()
    })
}

fn run_json(mode: &str, backends: usize, report: &LoadReport) -> mds_harness::json::Json {
    report
        .to_json()
        .field("mode", mode)
        .field("backends", backends)
}

/// Median absolute deviation of the sorted latency samples, in
/// microseconds — the same robustness statistic the harness bencher
/// reports, recomputed over request latencies.
fn mad_us(report: &LoadReport) -> f64 {
    if report.latencies_us.is_empty() {
        return 0.0;
    }
    let median = report.percentile_us(50.0) as f64;
    let mut deviations: Vec<f64> = report
        .latencies_us
        .iter()
        .map(|&us| (us as f64 - median).abs())
        .collect();
    deviations.sort_by(|a, b| a.total_cmp(b));
    deviations[deviations.len() / 2]
}

/// Folds one load run into the gate-comparable summary shape: one
/// "iteration" is one proxied request, so `median_ns` is the p50
/// end-to-end request latency. That is the stat `ci/bench_gate.sh`
/// compares against the committed baseline.
fn gate_result(mode: &str, backends: usize, report: &LoadReport) -> BenchResult {
    BenchResult {
        name: format!("gateway/{mode}/{backends}b"),
        iters_per_batch: report.requests.max(1),
        batches: 1,
        median_ns: report.percentile_us(50.0) as f64 * 1e3,
        mad_ns: mad_us(report) * 1e3,
        min_ns: report.latencies_us.first().copied().unwrap_or(0) as f64 * 1e3,
        max_ns: report.latencies_us.last().copied().unwrap_or(0) as f64 * 1e3,
        throughput_elems: None,
    }
}

/// One cold `POST /v1/grids` wall-time sample at `backends` backends: a
/// fresh fleet every sample (empty trace and result caches) with one
/// simulation thread per backend, i.e. fixed per-node capacity. What
/// the series isolates is scale-out of the cold emulation phase: the
/// gateway's balanced placement caps each backend at its fair share of
/// the grid's distinct workloads and the warm pass emulates those
/// shards concurrently, so wall-time shrinks with backend count on any
/// host with at least as many cores as backends.
fn grid_cold_sample(backends: usize) -> Duration {
    let fleet = Fleet::spawn(&FleetConfig {
        backends,
        workers: 4,
        jobs: Some(1),
        ..FleetConfig::default()
    })
    .expect("spawn fleet");
    let gateway = Gateway::start(GatewayConfig {
        addr: "127.0.0.1:0".to_string(),
        backends: fleet.addrs(),
        workers: 8,
        log: LogTarget::Discard,
        ..GatewayConfig::default()
    })
    .expect("start gateway");
    let body = format!(r#"{{"experiments":["{EXPERIMENT}"],"scale":"{SCALE}"}}"#);
    let started = Instant::now();
    let response = request_once(
        &gateway.local_addr().to_string(),
        "POST",
        "/v1/grids",
        body.as_bytes(),
        Duration::from_secs(300),
    )
    .expect("grid request");
    let elapsed = started.elapsed();
    assert_eq!(
        response.status, 200,
        "cold grid over {backends} backends failed"
    );
    gateway.shutdown();
    fleet.shutdown();
    elapsed
}

/// Folds the cold-grid samples into the gate-comparable shape: one
/// "iteration" is one whole cold grid, `median_ns` its median wall time.
fn grid_cold_result(backends: usize, samples_ns: &mut [u64]) -> BenchResult {
    samples_ns.sort_unstable();
    let median = samples_ns[samples_ns.len() / 2] as f64;
    let mut deviations: Vec<f64> = samples_ns
        .iter()
        .map(|&ns| (ns as f64 - median).abs())
        .collect();
    deviations.sort_by(|a, b| a.total_cmp(b));
    BenchResult {
        name: format!("gateway/grid_cold/{backends}b"),
        iters_per_batch: samples_ns.len() as u64,
        batches: 1,
        median_ns: median,
        mad_ns: deviations[deviations.len() / 2],
        min_ns: samples_ns[0] as f64,
        max_ns: samples_ns[samples_ns.len() - 1] as f64,
        throughput_elems: None,
    }
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let seconds = seconds_per_run(measure);
    let label = if measure {
        "benchmarking"
    } else {
        "smoke-running"
    };
    eprintln!(
        "{label} suite 'cluster' ({EXPERIMENT}@{SCALE}, {CLIENTS} clients, {seconds}s per point)"
    );

    let mut runs = Vec::new();
    let mut results = Vec::new();
    // Whole cold grids are one request each, so the time budget buys
    // fresh-fleet samples rather than load seconds.
    let grid_samples = ((seconds / 0.5).round() as usize).clamp(1, 8);
    for backends in BACKEND_COUNTS {
        let mut grid_ns: Vec<u64> = (0..grid_samples)
            .map(|_| grid_cold_sample(backends).as_nanos() as u64)
            .collect();
        let grid = grid_cold_result(backends, &mut grid_ns);
        eprintln!(
            "  grid_cold/{backends}b: median {:.1}ms over {grid_samples} fresh-fleet sample(s)",
            grid.median_ns / 1e6
        );
        results.push(grid);
        runs.push(
            Json::object()
                .field("mode", "grid_cold")
                .field("backends", backends)
                .field(
                    "samples_ns",
                    Json::Array(grid_ns.iter().map(|&ns| Json::from(ns)).collect()),
                ),
        );

        let fleet = Fleet::spawn(&FleetConfig {
            backends,
            workers: 4,
            ..FleetConfig::default()
        })
        .expect("spawn fleet");
        let gateway = Gateway::start(GatewayConfig {
            addr: "127.0.0.1:0".to_string(),
            backends: fleet.addrs(),
            workers: 8,
            log: LogTarget::Discard,
            ..GatewayConfig::default()
        })
        .expect("start gateway");

        let cold = run_mode(&gateway, seconds, true);
        assert!(
            cold.requests > 0,
            "cold run over {backends} backends completed no requests"
        );
        eprintln!("  cold/{backends}b: {}", cold.render());
        results.push(gate_result("cold", backends, &cold));
        runs.push(run_json("cold", backends, &cold));

        // Prime every backend's result cache through the gateway, then
        // measure the warm steady state.
        let _ = run_mode(&gateway, 0.05, false);
        let warm = run_mode(&gateway, seconds, false);
        assert!(
            warm.requests > 0,
            "warm run over {backends} backends completed no requests"
        );
        eprintln!("  warm/{backends}b: {}", warm.render());
        results.push(gate_result("warm", backends, &warm));
        runs.push(run_json("warm", backends, &warm));

        gateway.shutdown();
        fleet.shutdown();
    }

    if !measure {
        return;
    }
    // The document is a gate-parseable `BenchReport` (suite/scale/config/
    // results, where `median_ns` is p50 request latency) plus extra
    // detail fields (`experiment`, `clients`, `runs`) that the parser
    // ignores but humans and dashboards can read.
    let report = BenchReport {
        suite: "cluster".to_string(),
        scale: SCALE.to_string(),
        config: BenchConfig {
            warmup_ms: 50,
            batch_ms: (seconds * 1e3) as u64,
            batches: 1,
            max_ms: (seconds * 1e3) as u64 * BACKEND_COUNTS.len() as u64 * 2,
        },
        results,
    };
    let doc = report
        .to_json()
        .field("experiment", EXPERIMENT)
        .field("clients", CLIENTS)
        .field("seconds_per_run", seconds)
        .field(
            "cores",
            std::thread::available_parallelism().map_or(1, |n| n.get() as u64),
        )
        .field("runs", mds_harness::json::Json::Array(runs));
    let path = mds_harness::bench::report_dir().join("BENCH_cluster.json");
    match std::fs::write(&path, doc.pretty()) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => eprintln!("failed to write {}: {e}", path.display()),
    }
}
