//! A supervised local fleet of in-process `mds-serve` backends.
//!
//! `mds-cluster --spawn N` (and the cluster tests and benchmark) need N
//! backends without N terminals: this module starts them in-process on
//! ephemeral ports, hands their addresses to the gateway, and shuts them
//! down gracefully with it. Each backend is a full [`mds_serve::Server`]
//! — own acceptor, worker pool, result cache, and trace cache — so a
//! spawned fleet exercises exactly the code paths of N separate
//! processes, minus the process boundary.

use mds_serve::io::IoModel;
use mds_serve::{LogTarget, Server, ServerConfig};
use std::path::PathBuf;

/// Per-backend tunables for a spawned fleet.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Backends to spawn.
    pub backends: usize,
    /// Connection-serving workers per backend.
    pub workers: usize,
    /// Admission-queue depth per backend.
    pub queue_depth: usize,
    /// Simulation threads per backend (`None`: `MDS_JOBS` or all cores).
    pub jobs: Option<usize>,
    /// Durable-store base directory: backend `i` stores under
    /// `<dir>/backend-<i>`, so a respawned fleet boots warm.
    pub store_dir: Option<PathBuf>,
    /// Access-log destination for every backend.
    pub log: LogTarget,
    /// Connection engine for every backend (spawned backends run the
    /// same engine as the gateway fronting them).
    pub io: IoModel,
}

impl Default for FleetConfig {
    fn default() -> FleetConfig {
        FleetConfig {
            backends: 2,
            workers: 4,
            queue_depth: 64,
            jobs: None,
            store_dir: None,
            log: LogTarget::Discard,
            io: IoModel::default(),
        }
    }
}

/// A running local fleet. Backends can be stopped individually (to
/// exercise failover) and the rest shut down together.
pub struct Fleet {
    /// `None` marks a backend that was individually stopped.
    servers: Vec<Option<Server>>,
}

impl Fleet {
    /// Spawns `config.backends` servers on ephemeral ports.
    pub fn spawn(config: &FleetConfig) -> Result<Fleet, String> {
        if config.backends == 0 {
            return Err("a fleet needs at least one backend".to_string());
        }
        let mut servers = Vec::with_capacity(config.backends);
        for i in 0..config.backends {
            servers.push(Some(Server::start(ServerConfig {
                addr: "127.0.0.1:0".to_string(),
                workers: config.workers,
                queue_depth: config.queue_depth,
                jobs: config.jobs,
                store_dir: config
                    .store_dir
                    .as_ref()
                    .map(|dir| dir.join(format!("backend-{i}"))),
                log: config.log,
                io: config.io,
                ..ServerConfig::default()
            })?));
        }
        Ok(Fleet { servers })
    }

    /// Backend addresses, in spawn order (stopped backends keep their
    /// slot's last known address via the gateway's copy, so this only
    /// reports the still-running ones' addresses at spawn time).
    pub fn addrs(&self) -> Vec<String> {
        self.servers
            .iter()
            .flatten()
            .map(|s| s.local_addr().to_string())
            .collect()
    }

    /// Backends still running.
    pub fn running(&self) -> usize {
        self.servers.iter().flatten().count()
    }

    /// Gracefully stops backend `i` (drains in-flight work first), as a
    /// mid-run failure to exercise gateway failover. No-op if already
    /// stopped.
    pub fn stop(&mut self, i: usize) {
        if let Some(server) = self.servers.get_mut(i).and_then(Option::take) {
            server.shutdown();
        }
    }

    /// A borrow of backend `i`'s server (for counters in tests).
    pub fn server(&self, i: usize) -> Option<&Server> {
        self.servers.get(i).and_then(Option::as_ref)
    }

    /// Shuts down every remaining backend.
    pub fn shutdown(mut self) {
        for server in self.servers.iter_mut().filter_map(Option::take) {
            server.shutdown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spawns_stops_one_and_shuts_down() {
        let mut fleet = Fleet::spawn(&FleetConfig {
            backends: 2,
            workers: 1,
            jobs: Some(1),
            ..FleetConfig::default()
        })
        .expect("spawn fleet");
        assert_eq!(fleet.addrs().len(), 2);
        assert_eq!(fleet.running(), 2);
        fleet.stop(0);
        assert_eq!(fleet.running(), 1);
        fleet.stop(0); // idempotent
        assert_eq!(fleet.running(), 1);
        fleet.shutdown();
    }

    #[test]
    fn zero_backends_is_an_error() {
        assert!(Fleet::spawn(&FleetConfig {
            backends: 0,
            ..FleetConfig::default()
        })
        .is_err());
    }
}
