//! The failover gateway: an HTTP front door over N `mds-serve` backends.
//!
//! The gateway reuses the serving crate's wire layer, admission queue,
//! and structured log wholesale — it is the same kind of server, just
//! with a proxy where the simulation engine would be. The request path:
//!
//! 1. The acceptor admits connections through a bounded queue (full
//!    queue → `503` + `Retry-After`, exactly like a backend).
//! 2. A worker parses requests and routes them. Keyed requests
//!    (`POST /v1/experiments`) hash their canonical `(experiment,
//!    scale)` cache key onto the consistent-hash [ring](crate::ring) so
//!    each backend serves a stable shard; unkeyed proxy routes
//!    round-robin.
//! 3. The failover loop walks the key's replica order (then any other
//!    backend as a last resort), skipping backends that are probed
//!    unhealthy or whose [breaker](crate::breaker) is open. Transport
//!    failures feed the breaker and fail over; `503` from a backend
//!    (shedding or draining) fails over without tripping the breaker —
//!    the prober handles load-driven ejection via `/readyz`. Every
//!    attempt after the first consumes the global retry budget
//!    (`retries < proxied/5 + burst`), which caps retry amplification
//!    during a full-cluster outage.
//! 4. Optionally ([`GatewayConfig::hedge_after`]) a hedged second
//!    request races the next replica when the first is slow; the first
//!    non-shed answer wins. Experiment execution is deterministic and
//!    idempotent, so hedging is always safe.
//!
//! Successful backend responses pass through byte-for-byte: the gateway
//! copies status, `content-type`, and body verbatim, so gateway-served
//! experiment documents are identical to `repro <id> --json` output.
//!
//! A background prober drives per-backend health from `GET /readyz`
//! (drain-aware: backends flip not-ready the moment shutdown begins),
//! re-probing failed backends on a capped exponential backoff with
//! jitter. Breaker transitions, health changes, and per-request proxy
//! outcomes all land in the structured JSON event log.

use crate::backend::Backend;
use crate::breaker::BreakerConfig;
use crate::grid;
use crate::metrics::{self, GatewayMetrics};
use crate::ring::HashRing;
use mds_bench::grid::GridRequest;
use mds_harness::backoff::Backoff;
use mds_harness::json::Json;
use mds_runner::Runner;
use mds_serve::client::{self, Connection};
use mds_serve::http::{self, ClientResponse, Limits, ReadError, Request, Response, Version};
use mds_serve::io::reactor::{self, Dispatch, Outcome};
use mds_serve::io::IoModel;
use mds_serve::persist;
use mds_serve::queue::Bounded;
use mds_serve::{AccessLog, ExperimentRequest, LogTarget};
use std::cell::RefCell;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Gateway tunables. `Default` is a sensible local configuration.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Backend `host:port` addresses fronted by this gateway.
    pub backends: Vec<String>,
    /// Connection-serving worker threads.
    pub workers: usize,
    /// Admission-queue capacity; beyond it, connections get `503`.
    pub queue_depth: usize,
    /// Distinct backends tried per keyed request before falling back to
    /// the rest of the fleet (primary + failover replicas on the ring).
    pub replicas: usize,
    /// Virtual nodes per backend on the ring.
    pub vnodes: usize,
    /// Retry-budget burst: attempts beyond the first are allowed while
    /// `retries < proxied_requests / 5 + retry_burst`.
    pub retry_burst: u64,
    /// When set, launch a hedged second request to the next replica if
    /// the first has not answered within this duration.
    pub hedge_after: Option<Duration>,
    /// Readiness-probe interval for healthy backends; failed probes back
    /// off exponentially (capped at 8× this, jittered).
    pub probe_interval: Duration,
    /// Per-probe timeout.
    pub probe_timeout: Duration,
    /// Upstream connect timeout.
    pub connect_timeout: Duration,
    /// Upstream read/write timeout (cold experiments can compute for a
    /// while, so this is generous).
    pub io_timeout: Duration,
    /// Per-connection client read timeout (also keep-alive idle).
    pub read_timeout: Duration,
    /// Total deadline for one client request head (the slow-loris guard;
    /// the read timeout alone resets on every dripped byte).
    pub header_timeout: Duration,
    /// Per-connection client write timeout.
    pub write_timeout: Duration,
    /// Request head/body size limits.
    pub limits: Limits,
    /// Keep-alive cap: requests served per client connection.
    pub max_requests_per_connection: usize,
    /// Warm-cache handoff: when a backend flips unhealthy → healthy (a
    /// recovery or a replacement process), stream it the warm entries it
    /// is responsible for from its ring neighbors, so it answers warm
    /// from the first request.
    pub handoff: bool,
    /// Circuit-breaker tunables (shared by every backend).
    pub breaker: BreakerConfig,
    /// Structured-log destination.
    pub log: LogTarget,
    /// Seed for breaker cooldown and probe-backoff jitter.
    pub seed: u64,
    /// Connection engine for the client-facing side: event-driven
    /// `epoll` (default on Linux) or the legacy thread-per-connection
    /// pool. Upstream forwarding always runs on workers.
    pub io: IoModel,
    /// Concurrent client-connection cap under `--io epoll`.
    pub max_connections: usize,
    /// Per-backend in-flight window for grid-cell dispatch: how many
    /// cells one `POST /v1/grids` keeps outstanding against each
    /// backend. Sized to fill a backend's worker pool without tripping
    /// its admission shedding.
    pub grid_window: usize,
    /// Cluster-wide cache warming for grids: before scattering cells,
    /// pre-dispatch each distinct workload's emulation (a summary cell)
    /// to its ring owner, so the cold-grid emulation phase runs fleet-
    /// parallel instead of trickling in with the first cell per
    /// workload.
    pub grid_warm: bool,
}

impl Default for GatewayConfig {
    fn default() -> GatewayConfig {
        GatewayConfig {
            addr: "127.0.0.1:7979".to_string(),
            backends: Vec::new(),
            workers: 4,
            queue_depth: 64,
            replicas: 2,
            vnodes: 64,
            retry_burst: 16,
            hedge_after: None,
            probe_interval: Duration::from_millis(250),
            probe_timeout: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(1),
            io_timeout: Duration::from_secs(120),
            read_timeout: Duration::from_secs(5),
            header_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
            max_requests_per_connection: 1000,
            handoff: true,
            breaker: BreakerConfig::default(),
            log: LogTarget::Stderr,
            seed: 0x006d_6473,
            io: IoModel::default(),
            max_connections: 10_000,
            grid_window: 8,
            grid_warm: true,
        }
    }
}

/// An admitted client connection, stamped for queue-wait accounting.
struct Inbound {
    stream: TcpStream,
    enqueued: Instant,
}

/// State shared by the acceptor, workers, prober, and handle.
struct Shared {
    config: GatewayConfig,
    backends: Vec<Arc<Backend>>,
    ring: HashRing,
    metrics: GatewayMetrics,
    log: AccessLog,
    queue: Bounded<Inbound>,
    /// The request-level work queue under `--io epoll`; `None` under
    /// `--io threads`.
    jobs: Option<Arc<Bounded<reactor::Job>>>,
    /// Reactor gauges (`mds_io_*`); all-zero under `--io threads`.
    io_stats: Arc<reactor::IoStats>,
    /// Round-robin cursor for unkeyed proxy routes.
    round_robin: AtomicU64,
    /// Denominator of the retry budget (proxied requests so far).
    proxied: AtomicU64,
    /// Numerator of the retry budget (budgeted retries so far).
    retries: AtomicU64,
    stop: AtomicBool,
    draining: AtomicBool,
    shutdown_flag: Mutex<bool>,
    shutdown_cv: Condvar,
}

/// A running gateway. Dropping it performs a graceful shutdown (the
/// backends are not touched — they are independent processes).
pub struct Gateway {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
    #[cfg(target_os = "linux")]
    reactor: Option<reactor::Reactor>,
    /// Guards the final summary so Drop after `shutdown` is a no-op.
    finished: bool,
}

impl Gateway {
    /// Binds, spawns the acceptor, workers, and health prober, and
    /// returns immediately.
    pub fn start(config: GatewayConfig) -> Result<Gateway, String> {
        if config.backends.is_empty() {
            return Err("a gateway needs at least one backend".to_string());
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| format!("no local addr: {e}"))?;
        let log = match config.log {
            LogTarget::Stderr => AccessLog::stderr(),
            LogTarget::Discard => AccessLog::discard(),
            LogTarget::Memory => AccessLog::memory(),
        };
        let backends: Vec<Arc<Backend>> = config
            .backends
            .iter()
            .enumerate()
            .map(|(i, addr)| {
                Arc::new(Backend::new(
                    addr.clone(),
                    config.breaker,
                    config.seed.wrapping_add(i as u64),
                ))
            })
            .collect();
        let ring = HashRing::new(&config.backends, config.vnodes);
        log.event(
            Json::object()
                .field("evt", "ring")
                .field("backends", backends.len())
                .field("vnodes", config.vnodes)
                .field("points", ring.points())
                .field("replicas", config.replicas),
        );
        let io = config.io.effective();
        let jobs = match io {
            IoModel::Epoll => Some(Arc::new(Bounded::new(config.queue_depth))),
            IoModel::Threads => None,
        };
        let shared = Arc::new(Shared {
            queue: Bounded::new(config.queue_depth),
            backends,
            ring,
            metrics: GatewayMetrics::default(),
            log,
            jobs,
            io_stats: Arc::new(reactor::IoStats::default()),
            round_robin: AtomicU64::new(0),
            proxied: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            shutdown_flag: Mutex::new(false),
            shutdown_cv: Condvar::new(),
            config,
        });
        let prober = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mds-cluster-prober".to_string())
                .spawn(move || probe_loop(&shared))
                .map_err(|e| format!("cannot spawn prober: {e}"))?
        };
        #[cfg(target_os = "linux")]
        if io == IoModel::Epoll {
            let app = Arc::new(GatewayApp {
                shared: Arc::clone(&shared),
            });
            let reactor = reactor::Reactor::start(
                listener,
                app,
                reactor::Config {
                    limits: shared.config.limits,
                    max_requests: shared.config.max_requests_per_connection,
                    read_timeout: shared.config.read_timeout,
                    header_timeout: shared.config.header_timeout,
                    write_timeout: shared.config.write_timeout,
                    max_connections: shared.config.max_connections,
                },
                shared.config.workers,
                Arc::clone(shared.jobs.as_ref().expect("epoll mode has a job queue")),
                Arc::clone(&shared.io_stats),
            )
            .map_err(|e| format!("cannot start reactor: {e}"))?;
            return Ok(Gateway {
                shared,
                local_addr,
                acceptor: None,
                workers: Vec::new(),
                prober: Some(prober),
                reactor: Some(reactor),
                finished: false,
            });
        }
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("mds-cluster-acceptor".to_string())
                .spawn(move || accept_loop(&shared, listener))
                .map_err(|e| format!("cannot spawn acceptor: {e}"))?
        };
        let mut workers = Vec::with_capacity(shared.config.workers);
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("mds-cluster-worker-{i}"))
                    .spawn(move || {
                        // Each worker keeps its own keep-alive connection
                        // per backend; no cross-thread pooling locks.
                        let mut conns = HashMap::new();
                        while let Some(inbound) = shared.queue.pop() {
                            handle_connection(&shared, &mut conns, inbound);
                        }
                    })
                    .map_err(|e| format!("cannot spawn worker: {e}"))?,
            );
        }
        Ok(Gateway {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
            prober: Some(prober),
            #[cfg(target_os = "linux")]
            reactor: None,
            finished: false,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Gateway counters (tests, summaries).
    pub fn metrics(&self) -> &GatewayMetrics {
        &self.shared.metrics
    }

    /// The per-backend states, in configuration order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.shared.backends
    }

    /// Buffered log lines (only with [`LogTarget::Memory`]).
    pub fn log_lines(&self) -> Vec<String> {
        self.shared.log.lines()
    }

    /// Blocks until a client posts `/v1/shutdown` (or
    /// [`Gateway::shutdown`] runs from another thread).
    pub fn wait_for_shutdown(&self) {
        let mut requested = self
            .shared
            .shutdown_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while !*requested {
            requested = self
                .shared
                .shutdown_cv
                .wait(requested)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Graceful shutdown: stop accepting, drain queued and in-flight
    /// connections, join every thread, flush a final summary event.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        self.shared.stop.store(true, Ordering::SeqCst);
        signal_shutdown(&self.shared);
        #[cfg(target_os = "linux")]
        if let Some(mut reactor) = self.reactor.take() {
            reactor.stop_and_join();
        }
        if self.acceptor.is_some() {
            // Wake the acceptor out of its blocking accept() and the
            // prober out of its timed wait.
            let _ = TcpStream::connect(self.local_addr);
        }
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
        let m = &self.shared.metrics;
        let load = |v: &AtomicU64| v.load(Ordering::Relaxed);
        self.shared.log.event(
            Json::object()
                .field("evt", "shutdown")
                .field("requests_total", load(&m.requests_total))
                .field("proxied_total", load(&m.proxied_total))
                .field("failovers_total", load(&m.failovers_total))
                .field("hedges_total", load(&m.hedges_total))
                .field("unavailable_total", load(&m.unavailable_total)),
        );
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn signal_shutdown(shared: &Shared) {
    shared.draining.store(true, Ordering::SeqCst);
    *shared
        .shutdown_flag
        .lock()
        .unwrap_or_else(PoisonError::into_inner) = true;
    shared.shutdown_cv.notify_all();
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
        // Without a write timeout, a client that stops draining its
        // receive window pins a worker in write() for good.
        let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
        let _ = stream.set_nodelay(true);
        let inbound = Inbound {
            stream,
            enqueued: Instant::now(),
        };
        if let Err(rejected) = shared.queue.push(inbound) {
            shed(shared, rejected.stream);
        }
    }
    shared.queue.close();
}

/// Counts one shed and returns the backpressure response (written to the
/// whole connection by the threaded acceptor, to the individual request
/// by the event-driven engine).
fn shed_response(shared: &Shared) -> Response {
    shared
        .metrics
        .rejected_total
        .fetch_add(1, Ordering::Relaxed);
    shared.metrics.count_response(503);
    Response::json(503, r#"{"error":"gateway queue full, retry shortly"}"#)
        .header("retry-after", "1")
}

fn shed(shared: &Shared, mut stream: TcpStream) {
    let response = shed_response(shared);
    let _ = response.write_to(&mut stream, false);
}

/// Per-worker keep-alive connections, one per backend index.
type ConnCache = HashMap<usize, Connection>;

/// What came of waiting for the next keep-alive request.
enum IdleWait {
    /// Bytes are waiting; go read the request.
    Ready,
    /// Other connections queued up (or shutdown began): release the
    /// worker instead of pinning it to an idle peer.
    Yield,
    /// The peer closed, errored, or idled past the read timeout.
    Gone,
}

/// Blocks until the next request's first byte arrives, in short slices
/// that re-check the admission queue — the same worker-fairness rule the
/// backends apply, so an idle keep-alive client can't pin a gateway
/// worker while admitted connections starve.
fn await_next_request(stream: &mut TcpStream, shared: &Shared) -> IdleWait {
    let slice = Duration::from_millis(20).min(shared.config.read_timeout);
    let deadline = Instant::now() + shared.config.read_timeout;
    let _ = stream.set_read_timeout(Some(slice));
    let mut byte = [0u8; 1];
    let outcome = loop {
        if shared.stop.load(Ordering::SeqCst) || !shared.queue.is_empty() {
            break IdleWait::Yield;
        }
        match stream.peek(&mut byte) {
            Ok(0) => break IdleWait::Gone,
            Ok(_) => break IdleWait::Ready,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if Instant::now() >= deadline {
                    break IdleWait::Gone;
                }
            }
            Err(_) => break IdleWait::Gone,
        }
    };
    let _ = stream.set_read_timeout(Some(shared.config.read_timeout));
    outcome
}

fn handle_connection(shared: &Shared, conns: &mut ConnCache, inbound: Inbound) {
    let queue_wait_us = inbound.enqueued.elapsed().as_micros() as u64;
    let mut stream = inbound.stream;
    let mut reader = http::RequestReader::new();
    for served in 0..shared.config.max_requests_per_connection {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        if served > 0 && reader.buffered() == 0 {
            match await_next_request(&mut stream, shared) {
                IdleWait::Ready => {}
                IdleWait::Yield | IdleWait::Gone => break,
            }
        }
        // Read under a *total* header deadline — per-read timeouts alone
        // reset on every dripped byte (slow loris).
        let request = match http::read_request_deadline(
            &mut reader,
            &mut stream,
            shared.config.limits,
            shared.config.read_timeout,
            shared.config.header_timeout,
        ) {
            Ok(request) => request,
            Err(e) => {
                let status = match e {
                    ReadError::Closed | ReadError::TimedOut | ReadError::Io(_) => break,
                    ReadError::HeaderTimeout => 408,
                    ReadError::HeadTooLarge | ReadError::BodyTooLarge => 413,
                    ReadError::Malformed(_) => 400,
                };
                shared.metrics.count_response(status);
                let body = Json::object().field("error", e.to_string()).to_string();
                let _ = Response::json(status, body).write_to(&mut stream, false);
                break;
            }
        };
        let started = Instant::now();
        shared
            .metrics
            .routes
            .count(&request.method, &request.target);
        let routed = route(shared, conns, &request);
        let elapsed_us = started.elapsed().as_micros() as u64;
        shared.metrics.count_response(routed.response.status());
        // Same fairness rule as the backends: when other client
        // connections are queued for a worker, close after this response
        // so the slot cycles instead of pinning to one keep-alive peer.
        let keep_alive = request.wants_keep_alive()
            && !routed.close
            && served + 1 < shared.config.max_requests_per_connection
            && shared.queue.is_empty()
            && !shared.stop.load(Ordering::SeqCst);
        shared.log.event(
            Json::object()
                .field("evt", "gateway")
                .field("method", request.method.as_str())
                .field("target", request.target.as_str())
                .field("status", routed.response.status() as u64)
                .field("queue_wait_us", if served == 0 { queue_wait_us } else { 0 })
                .field("us", elapsed_us)
                .field("bytes", routed.response.body_len()),
        );
        if routed.response.write_to(&mut stream, keep_alive).is_err() || !keep_alive {
            break;
        }
    }
}

/// What the router produced for one request.
struct Routed {
    response: Response,
    close: bool,
}

thread_local! {
    /// Per-thread upstream keep-alive connections, one per backend — the
    /// event-driven engine's equivalent of the per-worker `ConnCache` the
    /// threaded pool passes around explicitly. Each pool worker (and the
    /// reactor thread, though it never forwards) gets its own cache, so
    /// upstream pooling stays lock-free.
    static UPSTREAM: RefCell<ConnCache> = RefCell::new(HashMap::new());
}

/// The gateway application behind the event-driven engine: probes and
/// control answered on the reactor, upstream forwarding deferred to the
/// worker pool (it blocks on backend I/O).
struct GatewayApp {
    shared: Arc<Shared>,
}

impl GatewayApp {
    /// Counts and logs one finished response, mirroring the threaded
    /// path's per-request `evt:gateway` record.
    fn account(&self, request: &Request, outcome: &Outcome, queue_wait_us: u64, compute_us: u64) {
        let shared = &self.shared;
        shared.metrics.count_response(outcome.response.status());
        shared.log.event(
            Json::object()
                .field("evt", "gateway")
                .field("method", request.method.as_str())
                .field("target", request.target.as_str())
                .field("status", outcome.response.status() as u64)
                .field("queue_wait_us", queue_wait_us)
                .field("us", compute_us)
                .field("bytes", outcome.response.body_len()),
        );
    }
}

impl reactor::App for GatewayApp {
    fn dispatch(&self, request: &Request) -> Dispatch {
        match (request.method.as_str(), request.target.as_str()) {
            // Forwarding blocks on upstream sockets: pool work. A grid
            // scatter additionally blocks on the whole fan-out.
            ("GET" | "POST", "/v1/experiments") | ("POST", "/v1/grids") => Dispatch::Defer,
            _ => {
                let started = Instant::now();
                self.shared
                    .metrics
                    .routes
                    .count(&request.method, &request.target);
                let routed =
                    UPSTREAM.with(|conns| route(&self.shared, &mut conns.borrow_mut(), request));
                let compute_us = started.elapsed().as_micros() as u64;
                let outcome = Outcome {
                    response: routed.response,
                    cache: "-",
                    close: routed.close,
                };
                self.account(request, &outcome, 0, compute_us);
                Dispatch::Inline(outcome)
            }
        }
    }

    fn execute(&self, request: &Request) -> Outcome {
        self.shared
            .metrics
            .routes
            .count(&request.method, &request.target);
        let routed = UPSTREAM.with(|conns| route(&self.shared, &mut conns.borrow_mut(), request));
        Outcome {
            response: routed.response,
            cache: "-",
            close: routed.close,
        }
    }

    fn on_connection(&self) {
        self.shared
            .metrics
            .connections_total
            .fetch_add(1, Ordering::Relaxed);
    }

    fn on_response(
        &self,
        request: &Request,
        outcome: &Outcome,
        queue_wait_us: u64,
        compute_us: u64,
    ) {
        self.account(request, outcome, queue_wait_us, compute_us);
    }

    fn shed(&self, _queue_len: usize) -> Response {
        shed_response(&self.shared)
    }

    fn on_request_error(&self, status: u16) {
        self.shared.metrics.count_response(status);
    }

    fn draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst) || self.shared.stop.load(Ordering::SeqCst)
    }
}

fn route(shared: &Shared, conns: &mut ConnCache, request: &Request) -> Routed {
    let pass = |response: Response| Routed {
        response,
        close: false,
    };
    match (request.method.as_str(), request.target.as_str()) {
        ("GET", "/healthz") => pass(Response::text(200, "ok\n")),
        ("GET", "/readyz") => pass(readiness(shared)),
        ("GET", "/metrics") => {
            let io = &shared.io_stats;
            let depth = shared
                .jobs
                .as_ref()
                .map_or_else(|| shared.queue.len(), |j| j.len());
            pass(
                Response::new(200)
                    .header("content-type", "text/plain; version=0.0.4; charset=utf-8")
                    .body(metrics::render(
                        &shared.metrics,
                        &shared.backends,
                        depth,
                        (
                            io.registered_fds.load(Ordering::Relaxed),
                            io.ready_depth.load(Ordering::Relaxed),
                            io.timer_fires.load(Ordering::Relaxed),
                        ),
                    )),
            )
        }
        ("GET", "/v1/cluster") => pass(Response::json(200, cluster_status(shared))),
        ("GET", "/v1/experiments") => pass(forward(shared, conns, request, None)),
        ("POST", "/v1/experiments") => {
            // Parse only to derive the routing key; an unparsable body
            // still goes upstream (unkeyed) so the client sees the
            // backend's own positioned 400 — the gateway is a
            // transport, not a second validator.
            let key = ExperimentRequest::from_body(&request.body)
                .ok()
                .map(|r| r.cache_key());
            pass(forward(shared, conns, request, key))
        }
        ("POST", "/v1/grids") => serve_grid(shared, &request.body),
        ("POST", "/v1/shutdown") => {
            signal_shutdown(shared);
            Routed {
                response: Response::json(200, r#"{"status":"shutting down"}"#),
                close: true,
            }
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/v1/cluster" | "/v1/experiments" | "/v1/grids"
            | "/v1/shutdown",
        ) => pass(Response::json(405, r#"{"error":"method not allowed"}"#)),
        _ => pass(Response::json(404, r#"{"error":"not found"}"#)),
    }
}

/// Gateway readiness: `503` while draining or while no backend is in
/// rotation (nothing upstream could answer), `200` otherwise.
fn readiness(shared: &Shared) -> Response {
    if shared.draining.load(Ordering::SeqCst) {
        return Response::json(503, r#"{"ready":false,"reason":"draining"}"#)
            .header("retry-after", "1");
    }
    let now = Instant::now();
    if !shared.backends.iter().any(|b| b.in_rotation(now)) {
        return Response::json(503, r#"{"ready":false,"reason":"no backend in rotation"}"#)
            .header("retry-after", "1");
    }
    Response::text(200, "ready\n")
}

/// The `/v1/cluster` status document.
fn cluster_status(shared: &Shared) -> String {
    let load = |v: &AtomicU64| v.load(Ordering::Relaxed);
    let backends: Vec<Json> = shared
        .backends
        .iter()
        .map(|b| {
            Json::object()
                .field("addr", b.addr.as_str())
                .field("healthy", b.is_healthy())
                .field("breaker", b.with_breaker(|br| br.state().name()))
                .field("breaker_opens", b.with_breaker(|br| br.opens()))
                .field("attempts", load(&b.stats.attempts))
                .field("failures", load(&b.stats.failures))
                .field("sheds", load(&b.stats.sheds))
        })
        .collect();
    Json::object()
        .field("backends", Json::Array(backends))
        .field("ring_points", shared.ring.points())
        .field("replicas", shared.config.replicas)
        .field("proxied", load(&shared.proxied))
        .field("retries", load(&shared.retries))
        .field("grids", load(&shared.metrics.grids_total))
        .field("grid_cells", load(&shared.metrics.grid_cells_total))
        .field("grid_window", shared.config.grid_window as u64)
        .to_string()
}

/// The per-key (or round-robin) order in which backends are tried:
/// ring replicas first, then every remaining backend as a last resort,
/// so a request only fails once the whole fleet is unreachable.
fn candidate_order(shared: &Shared, key: Option<&str>) -> Vec<usize> {
    let n = shared.backends.len();
    let mut order = match key {
        Some(key) => shared.ring.replicas(key, shared.config.replicas),
        None => {
            let start = (shared.round_robin.fetch_add(1, Ordering::Relaxed) as usize) % n;
            return (0..n).map(|j| (start + j) % n).collect();
        }
    };
    for idx in 0..n {
        if !order.contains(&idx) {
            order.push(idx);
        }
    }
    order
}

/// [`candidate_order`] filtered down to in-rotation backends — or, when
/// probes have everyone out (e.g. right after startup against a
/// slow-binding fleet), the optimistic full order: try everyone rather
/// than fail from the armchair.
fn rotation_order(shared: &Shared, key: Option<&str>) -> Vec<usize> {
    let order = candidate_order(shared, key);
    let now = Instant::now();
    let rotation: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| shared.backends[i].in_rotation(now))
        .collect();
    if rotation.is_empty() {
        order
    } else {
        rotation
    }
}

/// Takes one unit of the global retry budget, if any remains.
fn take_retry(shared: &Shared) -> bool {
    let allowed = shared.proxied.load(Ordering::Relaxed) / 5 + shared.config.retry_burst;
    let mut current = shared.retries.load(Ordering::Relaxed);
    loop {
        if current >= allowed {
            return false;
        }
        match shared.retries.compare_exchange_weak(
            current,
            current + 1,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                shared.metrics.retries_total.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(seen) => current = seen,
        }
    }
}

fn log_transition(shared: &Shared, backend: &Backend, t: Option<crate::breaker::Transition>) {
    if let Some(t) = t {
        shared.log.event(
            Json::object()
                .field("evt", "breaker")
                .field("backend", backend.addr.as_str())
                .field("from", t.from.name())
                .field("to", t.to.name()),
        );
    }
}

/// One upstream exchange over the worker's pooled connection (fresh
/// reconnect if the pooled one was idled out by the backend).
fn attempt(
    shared: &Shared,
    conns: &mut ConnCache,
    idx: usize,
    request: &Request,
) -> Result<ClientResponse, String> {
    let backend = &shared.backends[idx];
    backend.stats.attempts.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let result = send_pooled(shared, conns, idx, request);
    let us = started.elapsed().as_micros() as u64;
    backend.stats.latency.observe_us(us);
    shared.metrics.upstream_latency.observe_us(us);
    result
}

fn send_pooled(
    shared: &Shared,
    conns: &mut ConnCache,
    idx: usize,
    request: &Request,
) -> Result<ClientResponse, String> {
    // A reused keep-alive connection failing usually means the backend
    // idled it out between requests; fall through to a fresh connection
    // before declaring a real failure.
    if let Some(mut conn) = conns.remove(&idx) {
        if let Ok(response) = conn.send(&request.method, &request.target, &request.body) {
            if !Connection::must_close(&response) {
                conns.insert(idx, conn);
            }
            return Ok(response);
        }
    }
    let mut conn = Connection::connect(
        &shared.backends[idx].addr,
        shared.config.connect_timeout,
        shared.config.io_timeout,
    )
    .map_err(|e| format!("connect: {e}"))?;
    match conn.send(&request.method, &request.target, &request.body) {
        Ok(response) => {
            if !Connection::must_close(&response) {
                conns.insert(idx, conn);
            }
            Ok(response)
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Copies a backend response through verbatim: status, body bytes, and
/// the headers that matter to clients. This is where the byte-identity
/// guarantee lives — the body is never re-encoded.
fn passthrough(upstream: ClientResponse) -> Response {
    let mut response = Response::new(upstream.status);
    for name in ["content-type", "retry-after"] {
        if let Some(value) = upstream.header(name) {
            response = response.header(name, value);
        }
    }
    response.body(upstream.body)
}

/// The failover proxy path shared by keyed and unkeyed routes.
fn forward(
    shared: &Shared,
    conns: &mut ConnCache,
    request: &Request,
    key: Option<String>,
) -> Response {
    let started = Instant::now();
    shared.metrics.proxied_total.fetch_add(1, Ordering::Relaxed);
    shared.proxied.fetch_add(1, Ordering::Relaxed);
    let rotation = rotation_order(shared, key.as_deref());
    let response = if let (Some(hedge_after), Some(_)) = (shared.config.hedge_after, key.as_ref()) {
        forward_hedged(shared, &rotation, request, hedge_after)
    } else {
        forward_serial(shared, conns, &rotation, request)
    };
    shared
        .metrics
        .proxy_latency
        .observe_us(started.elapsed().as_micros() as u64);
    response
}

/// All candidates exhausted: pass a backend's `503` through (so clients
/// back off exactly as against a single overloaded server), or tell the
/// truth about an unreachable fleet.
fn exhausted(shared: &Shared, last_shed: Option<ClientResponse>) -> Response {
    shared
        .metrics
        .unavailable_total
        .fetch_add(1, Ordering::Relaxed);
    match last_shed {
        Some(upstream) => passthrough(upstream),
        None => Response::json(503, r#"{"error":"no backend available, retry shortly"}"#)
            .header("retry-after", "1"),
    }
}

fn forward_serial(
    shared: &Shared,
    conns: &mut ConnCache,
    candidates: &[usize],
    request: &Request,
) -> Response {
    match failover_serial(shared, conns, candidates, request, None) {
        Ok(upstream) => passthrough(upstream),
        Err(last_shed) => exhausted(shared, last_shed),
    }
}

/// A synthesized `POST /v1/cells` upstream request for one cell body.
fn cell_request(body: String) -> Request {
    Request {
        method: "POST".to_string(),
        target: "/v1/cells".to_string(),
        version: Version::Http11,
        headers: Vec::new(),
        body: body.into_bytes(),
    }
}

/// Dispatches one grid cell along its route key's replica order, with
/// the same breaker/retry failover as the experiment proxy path and the
/// hedging path handling stragglers when configured. The window bounds
/// this grid's in-flight cells per backend. `owner` is the grid's
/// balanced assignment for this key: when it is still in rotation it is
/// tried first, and the rest of the replica order backs it up.
fn dispatch_cell(
    shared: &Shared,
    conns: &mut ConnCache,
    route_key: &str,
    request: &Request,
    windows: &grid::Windows,
    owner: Option<usize>,
) -> Result<ClientResponse, Option<ClientResponse>> {
    shared
        .metrics
        .grid_cells_total
        .fetch_add(1, Ordering::Relaxed);
    let mut rotation = rotation_order(shared, Some(route_key));
    if let Some(owner) = owner {
        if let Some(pos) = rotation.iter().position(|&idx| idx == owner) {
            rotation.remove(pos);
            rotation.insert(0, owner);
        }
    }
    match shared.config.hedge_after {
        Some(hedge_after) => {
            // The hedged path spawns its own attempt threads; hold the
            // primary's window slot for the duration so a grid's hedged
            // cells still respect the per-backend bound.
            let _slot = windows.acquire(rotation[0]);
            failover_hedged(shared, &rotation, request, hedge_after)
        }
        None => failover_serial(shared, conns, &rotation, request, Some(windows)),
    }
}

/// The cluster-wide cache-warming pass: each distinct workload's
/// emulation (a summary cell), dispatched concurrently to the backend
/// the grid's balanced assignment chose for it — the same backend its
/// cells will land on. Best-effort — a dead owner's traces are simply
/// emulated by whichever replica its cells fail over to.
fn scatter_warm(
    shared: &Shared,
    warm: &[(String, String)],
    windows: &grid::Windows,
    owners: &HashMap<String, usize>,
) {
    std::thread::scope(|scope| {
        for (route_key, body) in warm {
            scope.spawn(move || {
                let assigned = owners
                    .get(route_key)
                    .copied()
                    .or_else(|| rotation_order(shared, Some(route_key)).first().copied());
                let Some(owner) = assigned else {
                    return;
                };
                shared
                    .metrics
                    .grid_warms_total
                    .fetch_add(1, Ordering::Relaxed);
                let request = cell_request(body.clone());
                let mut conns: ConnCache = HashMap::new();
                let _slot = windows.acquire(owner);
                let _ = attempt(shared, &mut conns, owner, &request);
            });
        }
    });
}

/// The grid's balanced key→backend assignment: distinct route keys in
/// first-appearance order, each with its live replica order, handed to
/// [`grid::balanced_assignments`] so no backend owns more than its fair
/// share of this grid's trace emulations.
fn grid_owners(shared: &Shared, plan: &grid::GridPlan) -> HashMap<String, usize> {
    let mut candidates: Vec<(String, Vec<usize>)> = Vec::new();
    for cell in &plan.cells {
        if !candidates.iter().any(|(key, _)| key == &cell.route_key) {
            let rotation = rotation_order(shared, Some(&cell.route_key));
            candidates.push((cell.route_key.clone(), rotation));
        }
    }
    grid::balanced_assignments(&candidates, shared.backends.len())
}

/// `POST /v1/grids`: scatter-gather grid execution.
///
/// Decomposes the request into cells (one per distinct simulation
/// demand), places each on the ring by its `workload@scale` trace key,
/// fans them out over dispatcher lanes with bounded per-backend windows,
/// merges partial results as they stream back, and renders the response
/// in request order — byte-identical to a lone backend serving the same
/// grid. A cell whose every candidate fails is computed locally by the
/// merger, so backend loss degrades latency, never the answer.
fn serve_grid(shared: &Shared, body: &[u8]) -> Routed {
    let bad = |message: String| Routed {
        response: Response::json(400, Json::object().field("error", message).to_string()),
        close: false,
    };
    let Ok(text) = std::str::from_utf8(body) else {
        return bad("body is not UTF-8".to_string());
    };
    let grid_request = match GridRequest::from_body(text) {
        Ok(request) => request,
        Err(message) => return bad(message),
    };
    shared.metrics.grids_total.fetch_add(1, Ordering::Relaxed);
    let started = Instant::now();
    let plan = grid::plan(&grid_request);
    let owners = grid_owners(shared, &plan);
    let mut merger = grid::Merger::new(&grid_request, Runner::new(1));
    let windows = grid::Windows::new(shared.backends.len(), shared.config.grid_window);
    if shared.config.grid_warm && shared.backends.len() > 1 {
        scatter_warm(shared, &plan.warm, &windows, &owners);
    }

    let cells = &plan.cells;
    let mut failed_cells = 0usize;
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let (tx, rx) = mpsc::channel::<(usize, Result<ClientResponse, Option<ClientResponse>>)>();
        let lanes = cells
            .len()
            .min(shared.backends.len() * shared.config.grid_window)
            .max(1);
        for _ in 0..lanes {
            let tx = tx.clone();
            let next = &next;
            let windows = &windows;
            let owners = &owners;
            scope.spawn(move || {
                let mut conns: ConnCache = HashMap::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= cells.len() {
                        break;
                    }
                    let cell = &cells[i];
                    let request = cell_request(cell.body.clone());
                    let owner = owners.get(&cell.route_key).copied();
                    let result = dispatch_cell(
                        shared,
                        &mut conns,
                        &cell.route_key,
                        &request,
                        windows,
                        owner,
                    );
                    if tx.send((i, result)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        // Gather on this thread: partial results merge in arrival order,
        // which the merge contract guarantees cannot change the bytes.
        for (i, result) in rx {
            let cell = &cells[i];
            let failure = match result {
                Ok(upstream) if upstream.status == 200 => merger.accept(cell, &upstream.body).err(),
                Ok(upstream) => Some(format!("upstream status {}", upstream.status)),
                Err(_) => Some("no backend available".to_string()),
            };
            if let Some(error) = failure {
                failed_cells += 1;
                shared.log.event(
                    Json::object()
                        .field("evt", "grid_cell_failed")
                        .field("cell", cell.route_key.as_str())
                        .field("error", error),
                );
            }
        }
    });
    if failed_cells > 0 {
        shared
            .metrics
            .grid_cell_failures_total
            .fetch_add(failed_cells as u64, Ordering::Relaxed);
    }
    let accepted = merger.accepted();
    let response = match merger.finish() {
        Ok(doc) => Response::json(200, doc),
        Err(message) => Response::json(500, Json::object().field("error", message).to_string()),
    };
    shared.log.event(
        Json::object()
            .field("evt", "grid")
            .field("experiments", grid_request.experiments.len() as u64)
            .field("cells", cells.len() as u64)
            .field("accepted", accepted as u64)
            .field("failed", failed_cells as u64)
            .field("us", started.elapsed().as_micros() as u64),
    );
    Routed {
        response,
        close: false,
    }
}

/// The serial failover loop shared by the experiment proxy path and
/// grid-cell dispatch: walk the candidates under breaker and
/// retry-budget control and return the first non-shed upstream answer,
/// or `Err(last shed response)` once every candidate is exhausted.
/// `windows` (grid dispatch) bounds per-backend in-flight attempts.
fn failover_serial(
    shared: &Shared,
    conns: &mut ConnCache,
    candidates: &[usize],
    request: &Request,
    windows: Option<&grid::Windows>,
) -> Result<ClientResponse, Option<ClientResponse>> {
    let mut attempts_made = 0u32;
    let mut last_shed: Option<ClientResponse> = None;
    for &idx in candidates {
        let backend = &shared.backends[idx];
        let (allowed, transition) = backend.with_breaker(|b| b.try_acquire(Instant::now()));
        log_transition(shared, backend, transition);
        if !allowed {
            continue;
        }
        if attempts_made >= 1 && !take_retry(shared) {
            backend.with_breaker(|b| b.cancel_acquire());
            break;
        }
        if attempts_made >= 1 {
            shared
                .metrics
                .failovers_total
                .fetch_add(1, Ordering::Relaxed);
        }
        attempts_made += 1;
        let _slot = windows.map(|w| w.acquire(idx));
        match attempt(shared, conns, idx, request) {
            Ok(upstream) if upstream.status == 503 => {
                // Shedding or draining: not a transport failure (the
                // prober ejects overloaded backends via /readyz), but
                // do fail over.
                backend.stats.sheds.fetch_add(1, Ordering::Relaxed);
                backend.with_breaker(|b| b.cancel_acquire());
                last_shed = Some(upstream);
            }
            Ok(upstream) => {
                let t = backend.with_breaker(|b| b.record_success(Instant::now()));
                log_transition(shared, backend, t);
                return Ok(upstream);
            }
            Err(error) => {
                backend.stats.failures.fetch_add(1, Ordering::Relaxed);
                let t = backend.with_breaker(|b| b.record_failure(Instant::now()));
                log_transition(shared, backend, t);
                shared.log.event(
                    Json::object()
                        .field("evt", "upstream_error")
                        .field("backend", backend.addr.as_str())
                        .field("error", error),
                );
            }
        }
    }
    Err(last_shed)
}

/// The hedged proxy path: attempts run in spawned threads over fresh
/// connections, all reporting into one channel; a timeout launches the
/// next candidate (a hedge), a failure launches it immediately (a
/// failover), and the first non-shed response wins.
fn forward_hedged(
    shared: &Shared,
    candidates: &[usize],
    request: &Request,
    hedge_after: Duration,
) -> Response {
    match failover_hedged(shared, candidates, request, hedge_after) {
        Ok(upstream) => passthrough(upstream),
        Err(last_shed) => exhausted(shared, last_shed),
    }
}

/// The hedged failover loop behind [`forward_hedged`], also used per
/// grid cell when hedging is configured. Returns the winning upstream
/// response, or `Err(last shed response)` once exhausted.
fn failover_hedged(
    shared: &Shared,
    candidates: &[usize],
    request: &Request,
    hedge_after: Duration,
) -> Result<ClientResponse, Option<ClientResponse>> {
    let (tx, rx) = mpsc::channel::<(usize, Result<ClientResponse, String>)>();
    let deadline = Instant::now() + shared.config.io_timeout;
    let mut next = 0usize;
    let mut in_flight = 0u32;
    let mut spawned = 0u32;
    let mut first_spawned = usize::MAX;
    let mut last_shed: Option<ClientResponse> = None;

    // Launches the next breaker-approved candidate, if the budget allows.
    let launch = |next: &mut usize,
                  in_flight: &mut u32,
                  spawned: &mut u32,
                  first_spawned: &mut usize,
                  is_hedge: bool|
     -> bool {
        while *next < candidates.len() {
            let idx = candidates[*next];
            *next += 1;
            let backend = Arc::clone(&shared.backends[idx]);
            let (allowed, transition) = backend.with_breaker(|b| b.try_acquire(Instant::now()));
            log_transition(shared, &backend, transition);
            if !allowed {
                continue;
            }
            if *spawned >= 1 && !take_retry(shared) {
                backend.with_breaker(|b| b.cancel_acquire());
                return false;
            }
            if *spawned >= 1 {
                if is_hedge {
                    shared.metrics.hedges_total.fetch_add(1, Ordering::Relaxed);
                } else {
                    shared
                        .metrics
                        .failovers_total
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            if *spawned == 0 {
                *first_spawned = idx;
            }
            *spawned += 1;
            *in_flight += 1;
            let tx = tx.clone();
            let method = request.method.clone();
            let target = request.target.clone();
            let body = request.body.clone();
            let timeout = shared.config.io_timeout;
            let metrics_latency = Instant::now();
            std::thread::spawn(move || {
                backend.stats.attempts.fetch_add(1, Ordering::Relaxed);
                let result = client::request_once(&backend.addr, &method, &target, &body, timeout)
                    .map_err(|e| e.to_string());
                backend
                    .stats
                    .latency
                    .observe_us(metrics_latency.elapsed().as_micros() as u64);
                let _ = tx.send((idx, result));
            });
            return true;
        }
        false
    };

    launch(
        &mut next,
        &mut in_flight,
        &mut spawned,
        &mut first_spawned,
        false,
    );
    loop {
        if in_flight == 0
            && !launch(
                &mut next,
                &mut in_flight,
                &mut spawned,
                &mut first_spawned,
                false,
            )
        {
            return Err(last_shed);
        }
        match rx.recv_timeout(hedge_after) {
            Ok((idx, Ok(upstream))) if upstream.status == 503 => {
                in_flight -= 1;
                let backend = &shared.backends[idx];
                backend.stats.sheds.fetch_add(1, Ordering::Relaxed);
                backend.with_breaker(|b| b.cancel_acquire());
                last_shed = Some(upstream);
            }
            Ok((idx, Ok(upstream))) => {
                let backend = &shared.backends[idx];
                let t = backend.with_breaker(|b| b.record_success(Instant::now()));
                log_transition(shared, backend, t);
                if idx != first_spawned {
                    shared
                        .metrics
                        .hedge_wins_total
                        .fetch_add(1, Ordering::Relaxed);
                }
                return Ok(upstream);
            }
            Ok((idx, Err(error))) => {
                in_flight -= 1;
                let backend = &shared.backends[idx];
                backend.stats.failures.fetch_add(1, Ordering::Relaxed);
                let t = backend.with_breaker(|b| b.record_failure(Instant::now()));
                log_transition(shared, backend, t);
                shared.log.event(
                    Json::object()
                        .field("evt", "upstream_error")
                        .field("backend", backend.addr.as_str())
                        .field("error", error),
                );
            }
            Err(mpsc::RecvTimeoutError::Timeout) => {
                // The in-flight attempt is slow: hedge onto the next
                // candidate, or give up past the overall deadline.
                let launched = launch(
                    &mut next,
                    &mut in_flight,
                    &mut spawned,
                    &mut first_spawned,
                    true,
                );
                if !launched && Instant::now() >= deadline {
                    return Err(last_shed);
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return Err(last_shed);
            }
        }
    }
}

/// The background health prober: readiness-probes every backend, on a
/// fixed interval while healthy and on capped exponential backoff with
/// jitter while failing. An unhealthy → healthy transition (a recovery
/// or a replacement process on the same address) triggers a warm-cache
/// handoff on its own thread, so probing never blocks on a transfer.
fn probe_loop(shared: &Arc<Shared>) {
    let n = shared.backends.len();
    let mut backoffs: Vec<Backoff> = (0..n)
        .map(|i| {
            Backoff::new(
                shared.config.probe_interval,
                shared.config.probe_interval * 8,
                shared.config.seed.wrapping_add(0x9e37 + i as u64),
            )
        })
        .collect();
    let mut due: Vec<Instant> = vec![Instant::now(); n];
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        for (i, backend) in shared.backends.iter().enumerate() {
            if due[i] > now {
                continue;
            }
            let verdict = client::request_once(
                &backend.addr,
                "GET",
                "/readyz",
                b"",
                shared.config.probe_timeout,
            );
            let healthy = matches!(verdict, Ok(ref r) if r.status == 200);
            let was = backend.set_healthy(healthy);
            if was != healthy {
                shared.log.event(
                    Json::object()
                        .field("evt", "health")
                        .field("backend", backend.addr.as_str())
                        .field("healthy", healthy),
                );
                if healthy && shared.config.handoff {
                    // A recovered (or replaced) backend starts cold:
                    // stream it the warm entries its ring position owns.
                    let shared = Arc::clone(shared);
                    let _ = std::thread::Builder::new()
                        .name("mds-cluster-handoff".to_string())
                        .spawn(move || handoff(&shared, i));
                }
            }
            if healthy {
                backoffs[i].reset();
                due[i] = Instant::now() + shared.config.probe_interval;
            } else {
                due[i] = Instant::now() + backoffs[i].next_delay();
            }
        }
        // Sleep until the next probe is due, waking early on shutdown.
        let next_due = due.iter().min().copied().unwrap_or_else(Instant::now);
        let sleep = next_due
            .saturating_duration_since(Instant::now())
            .min(shared.config.probe_interval);
        let guard = shared
            .shutdown_flag
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if *guard {
            return;
        }
        let _ = shared
            .shutdown_cv
            .wait_timeout(guard, sleep.max(Duration::from_millis(5)));
    }
}

/// Handoff fill chunks stay comfortably under the backends' default
/// 64 KiB request-body limit.
const HANDOFF_CHUNK_BYTES: usize = 48 * 1024;

/// Streams the warm entries `target_idx` is responsible for (primary or
/// failover replica on the ring) from every other healthy backend, via
/// `GET /v1/cache` → filter → chunked `POST /v1/cache`.
///
/// Epoch safety is end-to-end: every dump carries its donor's epoch and
/// the target refuses a mismatched fill with `409`, so a half-upgraded
/// fleet degrades to a cold (correct) backend, never a wrong-bytes one.
fn handoff(shared: &Arc<Shared>, target_idx: usize) {
    let target = &shared.backends[target_idx];
    let mut seen = std::collections::HashSet::new();
    let mut owned: Vec<(String, Arc<str>)> = Vec::new();
    let mut epoch: Option<u64> = None;
    let mut errors = 0u64;
    for (i, donor) in shared.backends.iter().enumerate() {
        if i == target_idx || !donor.is_healthy() {
            continue;
        }
        let dump = match client::request_once(
            &donor.addr,
            "GET",
            "/v1/cache",
            b"",
            shared.config.io_timeout,
        ) {
            Ok(r) if r.status == 200 => r,
            _ => {
                errors += 1;
                continue;
            }
        };
        let (donor_epoch, entries) = match persist::parse(&dump.body) {
            Ok(parsed) => parsed,
            Err(_) => {
                errors += 1;
                continue;
            }
        };
        // All donors must agree on the epoch; a straggler from another
        // build contributes nothing (the target would 409 it anyway).
        match epoch {
            None => epoch = Some(donor_epoch),
            Some(e) if e != donor_epoch => {
                errors += 1;
                continue;
            }
            Some(_) => {}
        }
        for (key, body) in entries {
            if shared
                .ring
                .replicas(&key, shared.config.replicas)
                .contains(&target_idx)
                && seen.insert(key.clone())
            {
                owned.push((key, Arc::from(body.as_str())));
            }
        }
    }
    let mut transferred = 0u64;
    if let Some(epoch) = epoch {
        for chunk in persist::dump_chunks(epoch, &owned, HANDOFF_CHUNK_BYTES) {
            match client::request_once(
                &target.addr,
                "POST",
                "/v1/cache",
                chunk.as_bytes(),
                shared.config.io_timeout,
            ) {
                Ok(r) if r.status == 200 => {}
                _ => {
                    errors += 1;
                    continue;
                }
            }
            if let Ok((_, entries)) = persist::parse(chunk.as_bytes()) {
                transferred += entries.len() as u64;
            }
        }
    }
    shared
        .metrics
        .handoffs_total
        .fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .handoff_keys_total
        .fetch_add(transferred, Ordering::Relaxed);
    shared
        .metrics
        .handoff_errors_total
        .fetch_add(errors, Ordering::Relaxed);
    shared.log.event(
        Json::object()
            .field("evt", "handoff")
            .field("backend", target.addr.as_str())
            .field("keys", transferred)
            .field("candidates", owned.len())
            .field("errors", errors),
    );
}
