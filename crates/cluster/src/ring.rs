//! Consistent-hash ring with virtual nodes for trace-cache affinity.
//!
//! Routing keyed requests by their canonical `(experiment, scale)` cache
//! key (the exact string [`mds_serve::ExperimentRequest::cache_key`]
//! produces) means every backend only ever emulates the workloads for
//! *its* shard of the key space: result- and trace-cache hit rates stay
//! high as the fleet grows instead of every backend re-deriving every
//! trace.
//!
//! Each backend contributes `vnodes` points to the ring, hashed from its
//! name with SipHash (the `std` [`DefaultHasher`]); a key routes to the
//! backend owning the first point clockwise from the key's own hash.
//! Virtual nodes bound the load imbalance, and the successor walk that
//! yields failover [`replicas`](HashRing::replicas) gives each key a
//! stable, per-key ordering of distinct backends — the property tests in
//! `tests/ring_props.rs` pin both the imbalance bound and the
//! minimal-disruption guarantee (growing the fleet only remaps keys onto
//! the new backend).

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// SipHash of `bytes` under a fixed per-use `salt` (vnode index for ring
/// points, a reserved value for keys). [`DefaultHasher::new`] is keyed
/// with constants, so the ring layout is deterministic across processes
/// — a gateway restart routes every key exactly as before.
fn sip(bytes: &[u8], salt: u64) -> u64 {
    let mut h = DefaultHasher::new();
    salt.hash(&mut h);
    bytes.hash(&mut h);
    h.finish()
}

/// A consistent-hash ring over a fixed set of named backends.
#[derive(Debug, Clone)]
pub struct HashRing {
    names: Vec<String>,
    /// `(point hash, backend index)` sorted by hash: the ring, flattened.
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Builds a ring where each of `names` contributes `vnodes` points.
    ///
    /// # Panics
    ///
    /// If `vnodes` is zero (a backend with no points can never be
    /// routed to).
    pub fn new(names: &[String], vnodes: usize) -> HashRing {
        assert!(vnodes >= 1, "a ring needs at least one vnode per backend");
        let mut points = Vec::with_capacity(names.len() * vnodes);
        for (idx, name) in names.iter().enumerate() {
            for vnode in 0..vnodes {
                points.push((sip(name.as_bytes(), vnode as u64), idx));
            }
        }
        points.sort_unstable();
        HashRing {
            names: names.to_vec(),
            points,
        }
    }

    /// Number of distinct backends on the ring.
    pub fn backends(&self) -> usize {
        self.names.len()
    }

    /// Total ring points (backends × vnodes).
    pub fn points(&self) -> usize {
        self.points.len()
    }

    /// The backend name at `idx` (as passed to [`HashRing::new`]).
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// The position a key occupies on the ring.
    pub fn key_hash(key: &str) -> u64 {
        // A salt outside the vnode range keeps key positions independent
        // of point positions even for adversarial names.
        sip(key.as_bytes(), u64::MAX)
    }

    /// The position of one virtual node on the ring. Exposed so tests
    /// can rebuild the ring with an independent reference model and
    /// compare routing decisions.
    pub fn point_hash(name: &str, vnode: usize) -> u64 {
        sip(name.as_bytes(), vnode as u64)
    }

    /// The backend index owning `key`, or `None` on an empty ring.
    pub fn primary(&self, key: &str) -> Option<usize> {
        self.replicas(key, 1).first().copied()
    }

    /// Up to `want` *distinct* backend indices for `key`, in failover
    /// order: the primary first, then each successor encountered walking
    /// the ring clockwise. The order is a pure function of the key and
    /// the membership, so every gateway worker fails over identically.
    pub fn replicas(&self, key: &str, want: usize) -> Vec<usize> {
        let want = want.min(self.names.len());
        if self.points.is_empty() || want == 0 {
            return Vec::new();
        }
        let hash = Self::key_hash(key);
        // First point at-or-after the key, wrapping at the top of the
        // hash space — the classic clockwise successor.
        let start = self.points.partition_point(|&(p, _)| p < hash) % self.points.len();
        let mut out = Vec::with_capacity(want);
        for offset in 0..self.points.len() {
            let (_, idx) = self.points[(start + offset) % self.points.len()];
            if !out.contains(&idx) {
                out.push(idx);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn every_key_routes_and_replicas_are_distinct() {
        let ring = HashRing::new(&names(4), 32);
        assert_eq!(ring.backends(), 4);
        assert_eq!(ring.points(), 4 * 32);
        for i in 0..100 {
            let key = format!("fig{i}@tiny");
            let primary = ring.primary(&key).unwrap();
            let replicas = ring.replicas(&key, 3);
            assert_eq!(replicas[0], primary, "primary leads the failover order");
            assert_eq!(replicas.len(), 3);
            let mut sorted = replicas.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct backends");
        }
    }

    #[test]
    fn wanting_more_replicas_than_backends_returns_them_all() {
        let ring = HashRing::new(&names(2), 16);
        let replicas = ring.replicas("fig5@tiny", 8);
        assert_eq!(replicas.len(), 2);
    }

    #[test]
    fn routing_is_deterministic_across_ring_rebuilds() {
        let a = HashRing::new(&names(5), 64);
        let b = HashRing::new(&names(5), 64);
        for i in 0..64 {
            let key = format!("table{i}@small");
            assert_eq!(a.replicas(&key, 2), b.replicas(&key, 2));
        }
    }

    #[test]
    fn single_backend_owns_everything() {
        let ring = HashRing::new(&names(1), 8);
        assert_eq!(ring.primary("anything"), Some(0));
        assert_eq!(ring.name(0), "127.0.0.1:9000");
    }
}
