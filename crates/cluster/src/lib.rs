//! Sharded, replicated experiment serving: a failover gateway tier over
//! `mds-serve` backends.
//!
//! One `mds-serve` process amortizes simulation across repeated queries;
//! this crate scales that to a fleet. An HTTP gateway fronts N backends
//! and gives clients a single address with three properties a lone
//! backend cannot offer:
//!
//! - **Cache affinity** ([`ring`]) — keyed experiment requests are
//!   routed by consistent hashing on the canonical `(experiment, scale)`
//!   cache key, so each backend serves a stable shard and its result and
//!   trace caches stay hot as the fleet grows.
//! - **Failure hiding** ([`breaker`], [`gateway`]) — per-backend health
//!   probing against the drain-aware `/readyz`, three-state circuit
//!   breakers on the data path, bounded-budget failover to the next
//!   replica, and optional hedged second requests for cold stragglers.
//!   Killing one of two backends mid-load produces zero client-visible
//!   failures.
//! - **Cluster observability** ([`metrics`]) — per-backend and per-route
//!   counters plus latency histograms in the same Prometheus exposition
//!   the backends use, and a structured JSON event log for breaker
//!   transitions, health changes, and upstream errors.
//!
//! Served experiment bytes pass through the gateway verbatim, so a
//! response fetched through the cluster tier is byte-identical to
//! `repro <id> --json` — the tier is a transport, never a second
//! computation.
//!
//! [`fleet`] supervises a local in-process fleet for `--spawn N`, tests,
//! and the benchmark.
//!
//! # Examples
//!
//! ```
//! use mds_cluster::fleet::{Fleet, FleetConfig};
//! use mds_cluster::gateway::{Gateway, GatewayConfig};
//!
//! let fleet = Fleet::spawn(&FleetConfig {
//!     backends: 2,
//!     workers: 2,
//!     jobs: Some(1),
//!     ..FleetConfig::default()
//! })
//! .unwrap();
//! let gateway = Gateway::start(GatewayConfig {
//!     addr: "127.0.0.1:0".to_string(),
//!     backends: fleet.addrs(),
//!     workers: 2,
//!     log: mds_serve::LogTarget::Discard,
//!     ..GatewayConfig::default()
//! })
//! .unwrap();
//! let response = mds_serve::client::request_once(
//!     &gateway.local_addr().to_string(),
//!     "GET",
//!     "/readyz",
//!     b"",
//!     std::time::Duration::from_secs(5),
//! )
//! .unwrap();
//! assert_eq!(response.status, 200);
//! gateway.shutdown();
//! fleet.shutdown();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod breaker;
pub mod fleet;
pub mod gateway;
pub mod grid;
pub mod metrics;
pub mod ring;

pub use backend::Backend;
pub use breaker::{Breaker, BreakerConfig};
pub use fleet::{Fleet, FleetConfig};
pub use gateway::{Gateway, GatewayConfig};
pub use ring::HashRing;
