//! A three-state circuit breaker for one upstream backend.
//!
//! The breaker watches transport-level outcomes on the data path (a
//! connect failure, a timed-out read — *not* HTTP status codes, which
//! the gateway interprets itself) and cuts a persistently failing
//! backend out of rotation so requests stop paying its timeout:
//!
//! - **Closed** — traffic flows; `failure_threshold` *consecutive*
//!   failures trip the breaker.
//! - **Open** — all traffic is refused for a cooldown drawn from the
//!   shared capped-exponential-with-jitter schedule
//!   ([`mds_harness::backoff::Backoff`]); repeated trips double the
//!   cooldown up to the cap, and the jitter decorrelates a fleet of
//!   gateways rediscovering the same dead backend.
//! - **HalfOpen** — after the cooldown one trial request is let through;
//!   `close_after` consecutive trial successes close the breaker (and
//!   reset the cooldown schedule), a single failure re-opens it.
//!
//! Every method takes `now: Instant` instead of reading the clock, so
//! tests drive the full state machine synthetically, and state changes
//! are returned as [`Transition`]s for the gateway's structured event
//! log.

use mds_harness::backoff::Backoff;
use std::time::{Duration, Instant};

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Traffic flows; failures are being counted.
    Closed,
    /// Traffic is refused until the cooldown elapses.
    Open,
    /// Cooldown elapsed; one probe request at a time is allowed.
    HalfOpen,
}

impl State {
    /// Lowercase name for logs and `/v1/cluster` output.
    pub fn name(self) -> &'static str {
        match self {
            State::Closed => "closed",
            State::Open => "open",
            State::HalfOpen => "half-open",
        }
    }

    /// Numeric encoding for the Prometheus gauge (0 closed, 1 half-open,
    /// 2 open).
    pub fn as_gauge(self) -> u64 {
        match self {
            State::Closed => 0,
            State::HalfOpen => 1,
            State::Open => 2,
        }
    }
}

/// A state change, reported so the gateway can log it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// The state before.
    pub from: State,
    /// The state after.
    pub to: State,
}

/// Breaker tunables.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive data-path failures that trip Closed → Open.
    pub failure_threshold: u32,
    /// First open-state cooldown; doubles per consecutive trip.
    pub cooldown: Duration,
    /// Upper bound on the (pre-jitter) cooldown.
    pub cooldown_cap: Duration,
    /// Consecutive half-open successes required to close.
    pub close_after: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
            cooldown_cap: Duration::from_secs(5),
            close_after: 1,
        }
    }
}

/// The circuit breaker itself. Not thread-safe; the gateway wraps each
/// backend's breaker in a `Mutex`.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: State,
    consecutive_failures: u32,
    /// While Open: when the cooldown elapses.
    open_until: Option<Instant>,
    /// The escalating cooldown schedule; reset when the breaker closes.
    cooldown: Backoff,
    half_open_successes: u32,
    /// Trial requests currently in flight while HalfOpen (at most one).
    half_open_inflight: u32,
    opens: u64,
}

impl Breaker {
    /// A closed breaker; `seed` fixes the cooldown jitter stream.
    pub fn new(config: BreakerConfig, seed: u64) -> Breaker {
        Breaker {
            cooldown: Backoff::new(config.cooldown, config.cooldown_cap, seed),
            config,
            state: State::Closed,
            consecutive_failures: 0,
            open_until: None,
            half_open_successes: 0,
            half_open_inflight: 0,
            opens: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> State {
        self.state
    }

    /// Times the breaker has tripped open so far.
    pub fn opens(&self) -> u64 {
        self.opens
    }

    /// Whether a request *could* go through at `now`, without consuming
    /// a half-open trial permit. Used to filter the rotation; the actual
    /// attempt must call [`Breaker::try_acquire`].
    pub fn would_allow(&self, now: Instant) -> bool {
        match self.state {
            State::Closed | State::HalfOpen => true,
            State::Open => self.open_until.is_some_and(|until| now >= until),
        }
    }

    /// Asks to send one request at `now`. Open breakers whose cooldown
    /// elapsed move to HalfOpen and admit the request as the trial;
    /// HalfOpen admits at most one trial at a time.
    pub fn try_acquire(&mut self, now: Instant) -> (bool, Option<Transition>) {
        match self.state {
            State::Closed => (true, None),
            State::Open => {
                if self.open_until.is_some_and(|until| now >= until) {
                    let t = self.transition(State::HalfOpen);
                    self.half_open_successes = 0;
                    self.half_open_inflight = 1;
                    (true, t)
                } else {
                    (false, None)
                }
            }
            State::HalfOpen => {
                if self.half_open_inflight == 0 {
                    self.half_open_inflight = 1;
                    (true, None)
                } else {
                    (false, None)
                }
            }
        }
    }

    /// Returns an unused permit from [`Breaker::try_acquire`] (the
    /// gateway acquired but then could not attempt, e.g. the retry
    /// budget ran out).
    pub fn cancel_acquire(&mut self) {
        self.half_open_inflight = self.half_open_inflight.saturating_sub(1);
    }

    /// Records a successful data-path exchange.
    pub fn record_success(&mut self, _now: Instant) -> Option<Transition> {
        self.half_open_inflight = self.half_open_inflight.saturating_sub(1);
        match self.state {
            State::Closed => {
                self.consecutive_failures = 0;
                None
            }
            State::HalfOpen => {
                self.half_open_successes += 1;
                if self.half_open_successes >= self.config.close_after {
                    self.consecutive_failures = 0;
                    self.cooldown.reset();
                    self.transition(State::Closed)
                } else {
                    None
                }
            }
            // A late success from a request issued before the trip: the
            // cooldown still runs its course.
            State::Open => None,
        }
    }

    /// Records a data-path failure.
    pub fn record_failure(&mut self, now: Instant) -> Option<Transition> {
        self.half_open_inflight = self.half_open_inflight.saturating_sub(1);
        match self.state {
            State::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.trip(now)
                } else {
                    None
                }
            }
            State::HalfOpen => self.trip(now),
            State::Open => None,
        }
    }

    fn trip(&mut self, now: Instant) -> Option<Transition> {
        self.opens += 1;
        self.open_until = Some(now + self.cooldown.next_delay());
        self.transition(State::Open)
    }

    fn transition(&mut self, to: State) -> Option<Transition> {
        let from = std::mem::replace(&mut self.state, to);
        (from != to).then_some(Transition { from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> Breaker {
        Breaker::new(BreakerConfig::default(), 42)
    }

    #[test]
    fn trips_after_threshold_consecutive_failures_only() {
        let mut b = breaker();
        let t0 = Instant::now();
        assert!(b.record_failure(t0).is_none());
        assert!(b.record_success(t0).is_none(), "success resets the count");
        assert!(b.record_failure(t0).is_none());
        assert!(b.record_failure(t0).is_none());
        let trip = b.record_failure(t0).expect("third consecutive trips");
        assert_eq!(trip.from, State::Closed);
        assert_eq!(trip.to, State::Open);
        assert_eq!(b.opens(), 1);
        assert!(!b.would_allow(t0), "open refuses immediately");
        let (ok, _) = b.try_acquire(t0);
        assert!(!ok);
    }

    #[test]
    fn cooldown_admits_a_half_open_trial_then_closes_on_success() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        // Past the cooldown cap the breaker must be willing again.
        let later = t0 + Duration::from_secs(6);
        assert!(b.would_allow(later));
        let (ok, t) = b.try_acquire(later);
        assert!(ok);
        assert_eq!(t.unwrap().to, State::HalfOpen);
        // Only one trial at a time.
        let (second, _) = b.try_acquire(later);
        assert!(!second, "half-open admits one trial");
        let closed = b.record_success(later).expect("trial success closes");
        assert_eq!(closed.to, State::Closed);
        let (flows, _) = b.try_acquire(later);
        assert!(flows);
    }

    #[test]
    fn half_open_failure_reopens_with_a_longer_cooldown() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let later = t0 + Duration::from_secs(6);
        b.try_acquire(later);
        let reopened = b.record_failure(later).expect("trial failure reopens");
        assert_eq!(reopened.from, State::HalfOpen);
        assert_eq!(reopened.to, State::Open);
        assert_eq!(b.opens(), 2);
        // The second cooldown is at least the (jittered) doubled base:
        // strictly more than half the first nominal delay after `later`.
        assert!(!b.would_allow(later + Duration::from_millis(100)));
    }

    #[test]
    fn cancel_acquire_returns_the_trial_permit() {
        let mut b = breaker();
        let t0 = Instant::now();
        for _ in 0..3 {
            b.record_failure(t0);
        }
        let later = t0 + Duration::from_secs(6);
        let (ok, _) = b.try_acquire(later);
        assert!(ok);
        b.cancel_acquire();
        let (again, _) = b.try_acquire(later);
        assert!(again, "cancelled permit is available again");
    }
}
