//! `mds-cluster` — the sharded experiment-serving gateway.
//!
//! Fronts a fleet of `mds-serve` backends (external via `--backend`, or
//! a locally spawned in-process fleet via `--spawn N`) behind one
//! address with consistent-hash routing, health probing, circuit
//! breakers, and failover. Serves until a client posts `/v1/shutdown`,
//! then drains and exits 0 (backends given via `--backend` are left
//! running; a `--spawn`ed fleet is shut down with the gateway).

use mds_cluster::fleet::{Fleet, FleetConfig};
use mds_cluster::gateway::{Gateway, GatewayConfig};
use mds_serve::LogTarget;
use std::time::Duration;

const USAGE: &str = "\
usage: mds-cluster [options]

Front a fleet of mds-serve backends with one failover gateway.

options:
  --addr HOST:PORT     gateway bind address (default 127.0.0.1:7979; port 0 = ephemeral)
  --backend HOST:PORT  an existing backend to front (repeatable)
  --spawn N            additionally spawn N in-process backends on ephemeral ports
  --store DIR          durable store base for spawned backends (backend i under DIR/backend-i)
  --jobs N             simulation threads per spawned backend (default: MDS_JOBS or all cores)
  --workers N          gateway connection-serving workers (default 4)
  --queue-depth N      gateway admission queue capacity (default 64)
  --replicas N         distinct backends tried per keyed request (default 2)
  --vnodes N           virtual nodes per backend on the hash ring (default 64)
  --retry-burst N      retry-budget burst above the 20% steady-state ratio (default 16)
  --hedge-ms MS        hedge a second request after MS of silence (default: off)
  --probe-ms MS        readiness-probe interval in milliseconds (default 250)
  --io MODEL           client-side connection engine: 'epoll' (default on
                       Linux) or 'threads' (legacy pool, kept for one release);
                       also applied to --spawn'ed backends
  --quiet              discard the JSON event log (default: stderr)
  -h, --help           show this help

routes:
  POST /v1/experiments   proxy with consistent-hash routing and failover
  GET  /v1/experiments   proxy (round-robin) listing experiment ids
  GET  /healthz          gateway liveness probe
  GET  /readyz           gateway readiness (503 while draining or no backend in rotation)
  GET  /metrics          Prometheus text metrics, per-backend and per-route
  GET  /v1/cluster       JSON cluster status: backends, health, breakers
  POST /v1/shutdown      graceful gateway shutdown
";

fn fail(message: &str) -> ! {
    eprintln!("mds-cluster: {message}\n\n{USAGE}");
    std::process::exit(2);
}

/// Everything parsed off the command line.
struct Options {
    gateway: GatewayConfig,
    spawn: usize,
    fleet_jobs: Option<usize>,
    store_dir: Option<std::path::PathBuf>,
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<Options, String> {
    let mut gateway = GatewayConfig::default();
    let mut spawn = 0usize;
    let mut fleet_jobs = None;
    let mut store_dir = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        let parse_count = |flag: &str, text: String| {
            text.parse::<usize>()
                .map_err(|_| format!("{flag}: invalid count '{text}'"))
        };
        match arg.as_str() {
            "--addr" => gateway.addr = value("--addr")?,
            "--backend" => gateway.backends.push(value("--backend")?),
            "--spawn" => spawn = parse_count("--spawn", value("--spawn")?)?,
            "--store" => store_dir = Some(std::path::PathBuf::from(value("--store")?)),
            "--jobs" => {
                let text = value("--jobs")?;
                fleet_jobs = Some(
                    text.parse::<usize>()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--jobs: invalid count '{text}'"))?,
                );
            }
            "--workers" => gateway.workers = parse_count("--workers", value("--workers")?)?,
            "--queue-depth" => {
                gateway.queue_depth = parse_count("--queue-depth", value("--queue-depth")?)?;
            }
            "--replicas" => {
                let n = parse_count("--replicas", value("--replicas")?)?;
                if n == 0 {
                    return Err("--replicas: must be at least 1".to_string());
                }
                gateway.replicas = n;
            }
            "--vnodes" => {
                let n = parse_count("--vnodes", value("--vnodes")?)?;
                if n == 0 {
                    return Err("--vnodes: must be at least 1".to_string());
                }
                gateway.vnodes = n;
            }
            "--retry-burst" => {
                gateway.retry_burst = parse_count("--retry-burst", value("--retry-burst")?)? as u64;
            }
            "--hedge-ms" => {
                let ms = parse_count("--hedge-ms", value("--hedge-ms")?)?;
                gateway.hedge_after = Some(Duration::from_millis(ms as u64));
            }
            "--probe-ms" => {
                let ms = parse_count("--probe-ms", value("--probe-ms")?)?;
                if ms == 0 {
                    return Err("--probe-ms: must be at least 1".to_string());
                }
                gateway.probe_interval = Duration::from_millis(ms as u64);
            }
            "--io" => {
                let text = value("--io")?;
                gateway.io = text.parse().map_err(|e| format!("--io: {e}"))?;
            }
            "--quiet" => gateway.log = LogTarget::Discard,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if gateway.backends.is_empty() && spawn == 0 {
        return Err("need at least one --backend or --spawn N".to_string());
    }
    if store_dir.is_some() && spawn == 0 {
        return Err("--store only applies to --spawn'ed backends".to_string());
    }
    Ok(Options {
        gateway,
        spawn,
        fleet_jobs,
        store_dir,
    })
}

fn main() {
    let mut options = match parse_args(std::env::args().skip(1)) {
        Ok(options) => options,
        Err(message) => fail(&message),
    };
    let fleet = if options.spawn > 0 {
        let fleet = match Fleet::spawn(&FleetConfig {
            backends: options.spawn,
            jobs: options.fleet_jobs,
            store_dir: options.store_dir.clone(),
            log: options.gateway.log,
            io: options.gateway.io,
            ..FleetConfig::default()
        }) {
            Ok(fleet) => fleet,
            Err(message) => fail(&message),
        };
        for addr in fleet.addrs() {
            eprintln!("mds-cluster: spawned backend on {addr}");
            options.gateway.backends.push(addr);
        }
        Some(fleet)
    } else {
        None
    };
    let gateway = match Gateway::start(options.gateway) {
        Ok(gateway) => gateway,
        Err(message) => fail(&message),
    };
    println!("mds-cluster listening on http://{}", gateway.local_addr());
    gateway.wait_for_shutdown();
    eprintln!("mds-cluster: shutdown requested, draining");
    gateway.shutdown();
    if let Some(fleet) = fleet {
        fleet.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_flag() {
        let options = parse_args(
            [
                "--addr",
                "0.0.0.0:0",
                "--backend",
                "h:1",
                "--backend",
                "h:2",
                "--spawn",
                "3",
                "--store",
                "/tmp/fleet-store",
                "--jobs",
                "2",
                "--workers",
                "8",
                "--queue-depth",
                "5",
                "--replicas",
                "3",
                "--vnodes",
                "128",
                "--retry-burst",
                "9",
                "--hedge-ms",
                "40",
                "--probe-ms",
                "100",
                "--io",
                "threads",
                "--quiet",
            ]
            .into_iter()
            .map(String::from),
        )
        .unwrap();
        assert_eq!(options.gateway.addr, "0.0.0.0:0");
        assert_eq!(options.gateway.backends, vec!["h:1", "h:2"]);
        assert_eq!(options.spawn, 3);
        assert_eq!(options.fleet_jobs, Some(2));
        assert_eq!(
            options.store_dir.as_deref(),
            Some(std::path::Path::new("/tmp/fleet-store"))
        );
        assert_eq!(options.gateway.workers, 8);
        assert_eq!(options.gateway.queue_depth, 5);
        assert_eq!(options.gateway.replicas, 3);
        assert_eq!(options.gateway.vnodes, 128);
        assert_eq!(options.gateway.retry_burst, 9);
        assert_eq!(options.gateway.hedge_after, Some(Duration::from_millis(40)));
        assert_eq!(options.gateway.probe_interval, Duration::from_millis(100));
        assert_eq!(options.gateway.io, mds_serve::io::IoModel::Threads);
        assert_eq!(options.gateway.log, LogTarget::Discard);
    }

    #[test]
    fn rejects_nonsense() {
        assert!(parse_args(std::iter::empty()).is_err(), "no backends");
        assert!(parse_args(["--replicas".into(), "0".into()].into_iter()).is_err());
        assert!(
            parse_args(
                [
                    "--backend".into(),
                    "h:1".into(),
                    "--store".into(),
                    "/tmp/x".into()
                ]
                .into_iter()
            )
            .is_err(),
            "--store without --spawn"
        );
        assert!(parse_args(["--vnodes".into(), "x".into()].into_iter()).is_err());
        assert!(parse_args(["--bogus".into()].into_iter()).is_err());
    }
}
