//! Gateway metrics: cluster-wide counters plus labeled per-backend and
//! per-route families, rendered in the same Prometheus text exposition
//! (version 0.0.4) as the backends' own `/metrics`.

use crate::backend::Backend;
use mds_harness::stats::Histogram;
use mds_serve::metrics::{counter, gauge};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster-wide gateway counters (per-backend counters live on each
/// [`Backend`]).
#[derive(Debug, Default)]
pub struct GatewayMetrics {
    /// Connections the gateway acceptor accepted.
    pub connections_total: AtomicU64,
    /// Connections shed at the gateway's own admission queue.
    pub rejected_total: AtomicU64,
    /// Requests fully parsed and routed.
    pub requests_total: AtomicU64,
    /// Responses with 2xx status.
    pub responses_2xx: AtomicU64,
    /// Responses with 4xx status.
    pub responses_4xx: AtomicU64,
    /// Responses with 5xx status.
    pub responses_5xx: AtomicU64,
    /// Proxied requests entering the failover path.
    pub proxied_total: AtomicU64,
    /// Retry-budget units consumed (failovers + hedges).
    pub retries_total: AtomicU64,
    /// Failover attempts to a different backend after a failure or shed.
    pub failovers_total: AtomicU64,
    /// Hedged second requests launched for slow primaries.
    pub hedges_total: AtomicU64,
    /// Hedges that answered before the original attempt.
    pub hedge_wins_total: AtomicU64,
    /// Proxied requests that exhausted every candidate backend.
    pub unavailable_total: AtomicU64,
    /// `POST /v1/grids` requests entering the scatter-gather path.
    pub grids_total: AtomicU64,
    /// Grid cells dispatched upstream (across all grids).
    pub grid_cells_total: AtomicU64,
    /// Grid warm-up cells pre-dispatched to ring owners.
    pub grid_warms_total: AtomicU64,
    /// Grid cells whose outputs never arrived (exhausted failover or a
    /// malformed backend response) and were recomputed locally instead.
    pub grid_cell_failures_total: AtomicU64,
    /// Warm-cache handoffs performed for recovered/replaced backends.
    pub handoffs_total: AtomicU64,
    /// Warm entries streamed to recovering backends across all handoffs.
    pub handoff_keys_total: AtomicU64,
    /// Handoff transfer errors (failed dump, refused fill, epoch skew).
    pub handoff_errors_total: AtomicU64,
    /// Gateway-side end-to-end latency of proxied requests.
    pub proxy_latency: Histogram,
    /// Per-attempt upstream exchange latency (all backends pooled; the
    /// per-backend split lives in each backend's stats).
    pub upstream_latency: Histogram,
    /// Per-route request counters.
    pub routes: RouteCounters,
}

impl GatewayMetrics {
    /// Counts a response by status class.
    pub fn count_response(&self, status: u16) {
        self.requests_total.fetch_add(1, Ordering::Relaxed);
        let class = match status {
            200..=299 => &self.responses_2xx,
            400..=499 => &self.responses_4xx,
            _ => &self.responses_5xx,
        };
        class.fetch_add(1, Ordering::Relaxed);
    }
}

/// Requests per route, labeled `route="METHOD /path"` in the exposition.
#[derive(Debug, Default)]
pub struct RouteCounters {
    /// `POST /v1/experiments` (keyed proxy path).
    pub experiments_post: AtomicU64,
    /// `POST /v1/grids` (scatter-gather path).
    pub grids_post: AtomicU64,
    /// `GET /v1/experiments` (unkeyed proxy path).
    pub experiments_get: AtomicU64,
    /// `GET /healthz`.
    pub healthz: AtomicU64,
    /// `GET /readyz`.
    pub readyz: AtomicU64,
    /// `GET /metrics`.
    pub metrics: AtomicU64,
    /// `GET /v1/cluster`.
    pub cluster: AtomicU64,
    /// `POST /v1/shutdown`.
    pub shutdown: AtomicU64,
    /// Anything else (404s, wrong methods).
    pub other: AtomicU64,
}

impl RouteCounters {
    /// Counts one request against its route bucket.
    pub fn count(&self, method: &str, target: &str) {
        let slot = match (method, target) {
            ("POST", "/v1/experiments") => &self.experiments_post,
            ("POST", "/v1/grids") => &self.grids_post,
            ("GET", "/v1/experiments") => &self.experiments_get,
            ("GET", "/healthz") => &self.healthz,
            ("GET", "/readyz") => &self.readyz,
            ("GET", "/metrics") => &self.metrics,
            ("GET", "/v1/cluster") => &self.cluster,
            ("POST", "/v1/shutdown") => &self.shutdown,
            _ => &self.other,
        };
        slot.fetch_add(1, Ordering::Relaxed);
    }

    fn samples(&self) -> [(&'static str, u64); 9] {
        let c = |v: &AtomicU64| v.load(Ordering::Relaxed);
        [
            ("POST /v1/experiments", c(&self.experiments_post)),
            ("POST /v1/grids", c(&self.grids_post)),
            ("GET /v1/experiments", c(&self.experiments_get)),
            ("GET /healthz", c(&self.healthz)),
            ("GET /readyz", c(&self.readyz)),
            ("GET /metrics", c(&self.metrics)),
            ("GET /v1/cluster", c(&self.cluster)),
            ("POST /v1/shutdown", c(&self.shutdown)),
            ("other", c(&self.other)),
        ]
    }
}

/// Appends one labeled family: `# HELP`/`# TYPE` once, then one sample
/// per `(label value, count)` pair.
fn labeled(
    out: &mut String,
    name: &str,
    help: &str,
    kind: &str,
    label: &str,
    samples: impl Iterator<Item = (String, u64)>,
) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
    for (value, count) in samples {
        out.push_str(&format!("{name}{{{label}=\"{value}\"}} {count}\n"));
    }
}

/// Renders the full gateway exposition. `io` carries the event-engine
/// gauges (all-zero under `--io threads`) as `(registered fds, ready
/// events, timer fires)`.
pub fn render(
    m: &GatewayMetrics,
    backends: &[Arc<Backend>],
    queue_depth: usize,
    io: (u64, u64, u64),
) -> String {
    let mut out = String::with_capacity(4096);
    let c = |v: &AtomicU64| v.load(Ordering::Relaxed);
    counter(
        &mut out,
        "mds_gateway_connections_total",
        "Connections the gateway accepted.",
        c(&m.connections_total),
    );
    counter(
        &mut out,
        "mds_gateway_rejected_total",
        "Connections shed at the gateway admission queue.",
        c(&m.rejected_total),
    );
    counter(
        &mut out,
        "mds_gateway_requests_total",
        "Requests routed by the gateway.",
        c(&m.requests_total),
    );
    counter(
        &mut out,
        "mds_gateway_responses_2xx_total",
        "Responses with 2xx status.",
        c(&m.responses_2xx),
    );
    counter(
        &mut out,
        "mds_gateway_responses_4xx_total",
        "Responses with 4xx status.",
        c(&m.responses_4xx),
    );
    counter(
        &mut out,
        "mds_gateway_responses_5xx_total",
        "Responses with 5xx status.",
        c(&m.responses_5xx),
    );
    counter(
        &mut out,
        "mds_gateway_proxied_total",
        "Requests that entered the proxy failover path.",
        c(&m.proxied_total),
    );
    counter(
        &mut out,
        "mds_gateway_retries_total",
        "Retry-budget units consumed (failovers plus hedges).",
        c(&m.retries_total),
    );
    counter(
        &mut out,
        "mds_gateway_failovers_total",
        "Failover attempts to another backend.",
        c(&m.failovers_total),
    );
    counter(
        &mut out,
        "mds_gateway_hedges_total",
        "Hedged second requests launched.",
        c(&m.hedges_total),
    );
    counter(
        &mut out,
        "mds_gateway_hedge_wins_total",
        "Hedges that answered before the original attempt.",
        c(&m.hedge_wins_total),
    );
    counter(
        &mut out,
        "mds_gateway_unavailable_total",
        "Proxied requests that exhausted every candidate backend.",
        c(&m.unavailable_total),
    );
    counter(
        &mut out,
        "mds_gateway_grids_total",
        "Grid requests entering the scatter-gather path.",
        c(&m.grids_total),
    );
    counter(
        &mut out,
        "mds_gateway_grid_cells_total",
        "Grid cells dispatched upstream.",
        c(&m.grid_cells_total),
    );
    counter(
        &mut out,
        "mds_gateway_grid_warms_total",
        "Grid warm-up cells pre-dispatched to ring owners.",
        c(&m.grid_warms_total),
    );
    counter(
        &mut out,
        "mds_gateway_grid_cell_failures_total",
        "Grid cells recomputed locally after exhausting failover.",
        c(&m.grid_cell_failures_total),
    );
    counter(
        &mut out,
        "mds_gateway_handoffs_total",
        "Warm-cache handoffs performed for recovered backends.",
        c(&m.handoffs_total),
    );
    counter(
        &mut out,
        "mds_gateway_handoff_keys_total",
        "Warm entries streamed to recovering backends.",
        c(&m.handoff_keys_total),
    );
    counter(
        &mut out,
        "mds_gateway_handoff_errors_total",
        "Handoff transfer errors (failed dump, refused fill, epoch skew).",
        c(&m.handoff_errors_total),
    );
    gauge(
        &mut out,
        "mds_gateway_queue_depth",
        "Connections waiting in the gateway admission queue.",
        queue_depth as u64,
    );
    gauge(
        &mut out,
        "mds_gateway_backends",
        "Backends configured on the ring.",
        backends.len() as u64,
    );
    gauge(
        &mut out,
        "mds_io_registered_fds",
        "Fds registered with the gateway's event poller (0 under --io threads).",
        io.0,
    );
    gauge(
        &mut out,
        "mds_io_ready_queue_depth",
        "Readiness events delivered by the gateway's most recent poll.",
        io.1,
    );
    counter(
        &mut out,
        "mds_io_timer_fires_total",
        "Client-connection deadlines fired by the gateway's timer wheel.",
        io.2,
    );
    labeled(
        &mut out,
        "mds_gateway_route_requests_total",
        "Requests per route.",
        "counter",
        "route",
        m.routes.samples().iter().map(|(r, n)| (r.to_string(), *n)),
    );
    let per_backend = |field: fn(&BackendStatsView) -> u64| {
        backends
            .iter()
            .map(move |b| {
                (
                    b.addr.clone(),
                    field(&BackendStatsView {
                        attempts: b.stats.attempts.load(Ordering::Relaxed),
                        failures: b.stats.failures.load(Ordering::Relaxed),
                        sheds: b.stats.sheds.load(Ordering::Relaxed),
                        healthy: b.is_healthy() as u64,
                        breaker: b.with_breaker(|br| br.state().as_gauge()),
                        opens: b.with_breaker(|br| br.opens()),
                    }),
                )
            })
            .collect::<Vec<_>>()
    };
    labeled(
        &mut out,
        "mds_gateway_backend_attempts_total",
        "Proxy attempts per backend.",
        "counter",
        "backend",
        per_backend(|v| v.attempts).into_iter(),
    );
    labeled(
        &mut out,
        "mds_gateway_backend_failures_total",
        "Transport failures per backend.",
        "counter",
        "backend",
        per_backend(|v| v.failures).into_iter(),
    );
    labeled(
        &mut out,
        "mds_gateway_backend_sheds_total",
        "503 answers per backend.",
        "counter",
        "backend",
        per_backend(|v| v.sheds).into_iter(),
    );
    labeled(
        &mut out,
        "mds_gateway_backend_breaker_opens_total",
        "Circuit-breaker trips per backend.",
        "counter",
        "backend",
        per_backend(|v| v.opens).into_iter(),
    );
    labeled(
        &mut out,
        "mds_gateway_backend_healthy",
        "Last readiness-probe verdict per backend (1 healthy).",
        "gauge",
        "backend",
        per_backend(|v| v.healthy).into_iter(),
    );
    labeled(
        &mut out,
        "mds_gateway_backend_breaker_state",
        "Breaker state per backend (0 closed, 1 half-open, 2 open).",
        "gauge",
        "backend",
        per_backend(|v| v.breaker).into_iter(),
    );
    m.proxy_latency.render_prometheus(
        "mds_gateway_proxy_microseconds",
        "Gateway end-to-end latency of proxied requests.",
        &mut out,
    );
    m.upstream_latency.render_prometheus(
        "mds_gateway_upstream_microseconds",
        "Latency of individual upstream attempts.",
        &mut out,
    );
    out
}

/// Point-in-time snapshot of one backend's counters, for rendering.
struct BackendStatsView {
    attempts: u64,
    failures: u64,
    sheds: u64,
    healthy: u64,
    breaker: u64,
    opens: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerConfig;

    #[test]
    fn render_emits_labeled_backend_and_route_families() {
        let m = GatewayMetrics::default();
        m.count_response(200);
        m.routes.count("POST", "/v1/experiments");
        m.routes.count("GET", "/nope");
        let backends = vec![
            Arc::new(Backend::new(
                "127.0.0.1:9001".to_string(),
                BreakerConfig::default(),
                1,
            )),
            Arc::new(Backend::new(
                "127.0.0.1:9002".to_string(),
                BreakerConfig::default(),
                2,
            )),
        ];
        backends[1].stats.attempts.fetch_add(7, Ordering::Relaxed);
        backends[1].set_healthy(false);
        let text = render(&m, &backends, 3, (12, 4, 9));
        for needle in [
            "mds_gateway_requests_total 1",
            "mds_gateway_responses_2xx_total 1",
            "mds_gateway_queue_depth 3",
            "mds_gateway_backends 2",
            "mds_io_registered_fds 12",
            "mds_io_ready_queue_depth 4",
            "mds_io_timer_fires_total 9",
            "mds_gateway_route_requests_total{route=\"POST /v1/experiments\"} 1",
            "mds_gateway_route_requests_total{route=\"other\"} 1",
            "mds_gateway_backend_attempts_total{backend=\"127.0.0.1:9002\"} 7",
            "mds_gateway_backend_healthy{backend=\"127.0.0.1:9001\"} 1",
            "mds_gateway_backend_healthy{backend=\"127.0.0.1:9002\"} 0",
            "mds_gateway_backend_breaker_state{backend=\"127.0.0.1:9001\"} 0",
            "mds_gateway_proxy_microseconds_count 0",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }
}
