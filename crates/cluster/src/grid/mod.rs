//! Scatter-gather grid execution: fan a grid of experiments out across
//! the fleet and merge the partial results deterministically.
//!
//! A `POST /v1/grids` request names a set of experiments at one scale.
//! The gateway decomposes it with [`plan`] into per-cell jobs (one per
//! distinct simulation demand, via `mds_bench::grid`), places each cell
//! on the consistent-hash ring by its `workload@scale` trace key — so
//! every backend emulates only its own shard of the workload set and its
//! trace cache stays hot — rebalances the per-grid key assignment with
//! [`balanced_assignments`] so no backend serializes on more than its
//! fair share of cold emulations, and dispatches the cells as `POST /v1/cells`
//! requests through the same breaker/retry/hedging machinery the
//! experiment proxy path uses. Outputs stream back in completion order
//! and a [`Merger`] folds them into a harness; the final response is
//! rendered in request order, so the bytes are independent of placement,
//! concurrency, and arrival order — byte-identical to a lone `mds-serve`
//! answering the whole grid, and to `repro <id> --json` per experiment.
//!
//! The submodule split mirrors the pipeline: this module plans and
//! merges (pure, property-testable); [`windows`] bounds per-backend
//! in-flight dispatch; the network scatter loop lives in the gateway,
//! next to the failover machinery it reuses.

pub mod windows;

pub use windows::{WindowGuard, Windows};

use mds_bench::grid::{cells, warm_jobs, GridRequest};
use mds_bench::{Demand, Harness};
use mds_harness::json::Json;
use mds_runner::wire;
use mds_runner::Runner;
use std::collections::HashMap;

/// One placed unit of grid work: a cell job ready to ship upstream.
#[derive(Debug, Clone)]
pub struct CellPlan {
    /// Position in the plan (stable identity for arrival bookkeeping).
    pub index: usize,
    /// The demand this cell satisfies, for merging its output.
    pub demand: Demand,
    /// The placement key (`workload@scale`): cells sharing a trace share
    /// a key, and the ring maps each key to its owning backend.
    pub route_key: String,
    /// The `POST /v1/cells` request body (wire-encoded job).
    pub body: String,
}

/// A decomposed, placed grid request.
#[derive(Debug, Clone)]
pub struct GridPlan {
    /// The validated request this plan answers.
    pub request: GridRequest,
    /// Every cell to dispatch, in deterministic plan order.
    pub cells: Vec<CellPlan>,
    /// One `(route key, request body)` warm-up job per distinct route
    /// key: dispatching each to its ring owner triggers exactly the
    /// trace emulations that owner's cells will need.
    pub warm: Vec<(String, String)>,
}

/// Decomposes a validated grid request into placed cells: the union of
/// every requested experiment's demands, deduplicated, in submission
/// order — the same decomposition a lone harness performs internally.
pub fn plan(request: &GridRequest) -> GridPlan {
    let cs = cells(&request.experiments, request.scale);
    let warm = warm_jobs(&cs)
        .into_iter()
        .map(|(key, job)| (key, wire::encode_job(&job).pretty()))
        .collect();
    let cells = cs
        .into_iter()
        .enumerate()
        .map(|(index, cell)| CellPlan {
            index,
            route_key: cell.route_key(),
            body: wire::encode_job(&cell.job).pretty(),
            demand: cell.demand,
        })
        .collect();
    GridPlan {
        request: request.clone(),
        cells,
        warm,
    }
}

/// Balances one grid's distinct route keys across the fleet.
///
/// Strict ring-primary placement keeps trace caches hot, but with few
/// distinct keys it regularly leaves one backend owning most of a grid
/// (five workload keys over four backends land 3-1-1-0 about 40% of the
/// time), serializing the cold emulation phase on the unlucky owner.
/// This pass caps each backend at ⌈keys/backends⌉ keys *for this grid*:
/// a key keeps the head of its candidate (replica-order) list unless
/// that backend is already at the cap, then spills to the next candidate
/// with capacity — or, when every candidate is full, the least-loaded
/// candidate. Keys with no candidates at all get no owner (the dispatch
/// path handles that as "no backend available"). Deterministic in the
/// candidate lists and key order, so identical grids place identically
/// and cache affinity still holds request over request.
pub fn balanced_assignments(
    candidates: &[(String, Vec<usize>)],
    backends: usize,
) -> HashMap<String, usize> {
    let cap = candidates.len().div_ceil(backends.max(1)).max(1);
    let mut load: HashMap<usize, usize> = HashMap::new();
    let mut owners = HashMap::new();
    for (key, rotation) in candidates {
        let chosen = rotation
            .iter()
            .copied()
            .find(|idx| load.get(idx).copied().unwrap_or(0) < cap)
            .or_else(|| {
                rotation
                    .iter()
                    .copied()
                    .min_by_key(|idx| load.get(idx).copied().unwrap_or(0))
            });
        if let Some(idx) = chosen {
            *load.entry(idx).or_insert(0) += 1;
            owners.insert(key.clone(), idx);
        }
    }
    owners
}

/// The gather half: folds cell outputs — arriving in any order — into a
/// harness and renders the response in request order.
pub struct Merger {
    harness: Harness,
    experiments: Vec<String>,
    accepted: usize,
}

impl Merger {
    /// A merger for `request`. The runner only executes if a demand is
    /// missing at [`Merger::finish`] time (the local-fallback path), so
    /// a single-threaded runner is the right default.
    pub fn new(request: &GridRequest, runner: Runner) -> Merger {
        Merger {
            harness: Harness::with_runner(request.scale, runner),
            experiments: request.experiments.clone(),
            accepted: 0,
        }
    }

    /// Accepts one cell's `POST /v1/cells` response body.
    ///
    /// Decodes `{"id", "output"}`, checks the id echoes the cell's, and
    /// installs the output against the cell's demand. Errors describe
    /// what a misbehaving backend sent.
    pub fn accept(&mut self, cell: &CellPlan, response_body: &[u8]) -> Result<(), String> {
        let text = std::str::from_utf8(response_body)
            .map_err(|_| "cell response is not UTF-8".to_string())?;
        let doc = Json::parse(text).map_err(|e| format!("cell response: {e}"))?;
        let id = doc
            .get("id")
            .and_then(Json::as_str)
            .ok_or_else(|| "cell response lacks an id".to_string())?;
        if id != self.demand_id(cell) {
            return Err(format!(
                "cell response id {id:?} does not echo {:?}",
                self.demand_id(cell)
            ));
        }
        let output = doc
            .get("output")
            .ok_or_else(|| "cell response lacks an output".to_string())?;
        let output = wire::decode_output(output).map_err(|e| format!("cell output: {e}"))?;
        if !self.harness.insert(&cell.demand, output) {
            return Err(format!(
                "cell {:?} output kind mismatches its demand",
                self.demand_id(cell)
            ));
        }
        self.accepted += 1;
        Ok(())
    }

    /// Cells accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Demands this merger's harness ran locally instead of receiving —
    /// zero when every cell arrived (grids with only static tables never
    /// dispatch cells, so zero there too).
    pub fn local_runs(&self) -> usize {
        self.harness.run_stats().len()
    }

    /// Renders the merged response: each experiment's canonical result
    /// document, concatenated in request order. Demands that never
    /// arrived are computed locally — slower, never wrong.
    pub fn finish(mut self) -> Result<String, String> {
        mds_bench::grid::merged_doc(&mut self.harness, &self.experiments)
    }

    fn demand_id(&self, cell: &CellPlan) -> String {
        // The wire job id is the demand id; reparse it from the body the
        // plan shipped rather than caching a copy per cell.
        Json::parse(&cell.body)
            .ok()
            .and_then(|j| j.get("id").and_then(Json::as_str).map(str::to_string))
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_workloads::Scale;

    fn request(ids: &[&str]) -> GridRequest {
        GridRequest {
            experiments: ids.iter().map(|s| s.to_string()).collect(),
            scale: Scale::Tiny,
            fresh: false,
        }
    }

    #[test]
    fn plan_places_same_workload_cells_on_one_route_key() {
        let plan = plan(&request(&["fig5"]));
        assert!(!plan.cells.is_empty());
        // Every cell of one workload shares a route key, and the warm
        // list has exactly one entry per distinct key.
        let mut keys: Vec<&str> = plan.cells.iter().map(|c| c.route_key.as_str()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), plan.warm.len());
        for (i, cell) in plan.cells.iter().enumerate() {
            assert_eq!(cell.index, i);
            assert!(cell.route_key.ends_with("@tiny"), "{}", cell.route_key);
        }
    }

    #[test]
    fn balanced_assignments_caps_per_backend_keys() {
        // Adversarial hashing: all five keys name backend 0 first. The
        // cap (⌈5/4⌉ = 2) spills the overflow down the replica order.
        let candidates: Vec<(String, Vec<usize>)> = (0..5)
            .map(|i| (format!("wl{i}@tiny"), vec![0, 1, 2, 3]))
            .collect();
        let owners = balanced_assignments(&candidates, 4);
        assert_eq!(owners.len(), 5);
        let mut load = [0usize; 4];
        for &idx in owners.values() {
            load[idx] += 1;
        }
        assert!(load.iter().all(|&l| l <= 2), "{load:?}");
        // The first two keys keep their primary.
        assert_eq!(owners["wl0@tiny"], 0);
        assert_eq!(owners["wl1@tiny"], 0);
    }

    #[test]
    fn balanced_assignments_keeps_primaries_under_the_cap() {
        let spread: Vec<(String, Vec<usize>)> = (0..4)
            .map(|i| (format!("wl{i}@tiny"), vec![i, (i + 1) % 4]))
            .collect();
        let owners = balanced_assignments(&spread, 4);
        for i in 0..4 {
            assert_eq!(owners[&format!("wl{i}@tiny")], i);
        }
    }

    #[test]
    fn balanced_assignments_tolerates_short_and_empty_candidate_lists() {
        // Two backends, but every reachable candidate list names only
        // backend 1 (backend 0 is out of rotation); one key has no
        // candidates at all.
        let candidates = vec![
            ("a@tiny".to_string(), vec![1]),
            ("b@tiny".to_string(), vec![1]),
            ("c@tiny".to_string(), vec![1]),
            ("d@tiny".to_string(), Vec::new()),
        ];
        let owners = balanced_assignments(&candidates, 2);
        // cap = 2, yet backend 1 is the only candidate: the least-loaded
        // fallback still places the third key there rather than dropping it.
        assert_eq!(owners.get("a@tiny"), Some(&1));
        assert_eq!(owners.get("b@tiny"), Some(&1));
        assert_eq!(owners.get("c@tiny"), Some(&1));
        assert_eq!(owners.get("d@tiny"), None);
    }

    #[test]
    fn merger_rejects_wrong_ids_and_garbage() {
        let req = request(&["table1"]);
        let p = plan(&req);
        let mut merger = Merger::new(&req, Runner::from_env(Some(1)));
        let cell = &p.cells[0];
        assert!(merger.accept(cell, b"not json").is_err());
        assert!(merger.accept(cell, b"{\"output\":{}}").is_err());
        let wrong = Json::object()
            .field("id", "someone-else")
            .field("output", Json::object())
            .to_string();
        let err = merger.accept(cell, wrong.as_bytes()).unwrap_err();
        assert!(err.contains("does not echo"), "{err}");
        assert_eq!(merger.accepted(), 0);
    }

    #[test]
    fn merger_falls_back_to_local_compute_for_missing_cells() {
        // No cells accepted at all: finish() still renders the correct
        // document by computing locally.
        let req = request(&["table2"]);
        let merger = Merger::new(&req, Runner::from_env(Some(1)));
        let doc = merger.finish().unwrap();
        assert!(doc.contains("\"experiment\": \"table2\""), "{doc}");
    }
}
