//! Bounded per-backend in-flight windows for the grid scatter path.
//!
//! Grid dispatch is deliberately greedy — every cell wants to go out at
//! once — but each backend has a fixed worker pool and a bounded
//! admission queue, and blasting a whole grid at one owner would trip
//! its load shedding and turn cache-affine placement into random
//! failover. A [`Windows`] caps how many cells the gateway keeps
//! in flight *per backend*; dispatchers block in [`Windows::acquire`]
//! until their target has a free slot, and the guard returns the slot
//! on drop (including the error paths).

use std::sync::{Condvar, Mutex, PoisonError};

/// Per-backend in-flight counters behind one lock: windows are acquired
/// around whole upstream exchanges (milliseconds at minimum), so a
/// single Mutex + Condvar is simpler than per-backend primitives and
/// nowhere near contended.
#[derive(Debug)]
pub struct Windows {
    cap: usize,
    in_flight: Mutex<Vec<usize>>,
    freed: Condvar,
}

impl Windows {
    /// Windows for `backends` backends, each admitting `cap` concurrent
    /// cells. A zero cap would deadlock every dispatcher, so it is
    /// treated as 1.
    pub fn new(backends: usize, cap: usize) -> Windows {
        Windows {
            cap: cap.max(1),
            in_flight: Mutex::new(vec![0; backends]),
            freed: Condvar::new(),
        }
    }

    /// The per-backend cap.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Blocks until backend `idx` has a free slot, takes it, and returns
    /// the guard that gives it back.
    pub fn acquire(&self, idx: usize) -> WindowGuard<'_> {
        let mut counts = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while counts[idx] >= self.cap {
            counts = self
                .freed
                .wait(counts)
                .unwrap_or_else(PoisonError::into_inner);
        }
        counts[idx] += 1;
        WindowGuard { windows: self, idx }
    }

    /// Cells currently in flight to backend `idx` (tests, metrics).
    pub fn in_flight(&self, idx: usize) -> usize {
        self.in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner)[idx]
    }

    fn release(&self, idx: usize) {
        let mut counts = self
            .in_flight
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        counts[idx] -= 1;
        drop(counts);
        self.freed.notify_all();
    }
}

/// An acquired in-flight slot; dropping it frees the slot and wakes
/// blocked dispatchers.
#[derive(Debug)]
pub struct WindowGuard<'a> {
    windows: &'a Windows,
    idx: usize,
}

impl Drop for WindowGuard<'_> {
    fn drop(&mut self) {
        self.windows.release(self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn windows_bound_concurrency_per_backend() {
        let windows = Arc::new(Windows::new(2, 2));
        let peak = Arc::new(AtomicUsize::new(0));
        let current = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let windows = Arc::clone(&windows);
                let peak = Arc::clone(&peak);
                let current = Arc::clone(&current);
                scope.spawn(move || {
                    for _ in 0..20 {
                        let _slot = windows.acquire(0);
                        let now = current.fetch_add(1, Ordering::SeqCst) + 1;
                        peak.fetch_max(now, Ordering::SeqCst);
                        std::thread::yield_now();
                        current.fetch_sub(1, Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 2, "cap exceeded");
        assert_eq!(windows.in_flight(0), 0, "all slots returned");
        assert_eq!(windows.in_flight(1), 0, "other backend untouched");
    }

    #[test]
    fn guards_release_on_unwind_paths_too() {
        let windows = Windows::new(1, 1);
        {
            let _slot = windows.acquire(0);
            assert_eq!(windows.in_flight(0), 1);
        }
        assert_eq!(windows.in_flight(0), 0);
        assert_eq!(Windows::new(1, 0).cap(), 1, "zero cap clamps to 1");
    }
}
