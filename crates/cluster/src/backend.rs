//! Per-backend state the gateway tracks: health, breaker, counters.

use crate::breaker::{Breaker, BreakerConfig};
use mds_harness::stats::Histogram;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Lock-free per-backend counters, rendered as labeled Prometheus
/// samples by the gateway's `/metrics`.
#[derive(Debug, Default)]
pub struct BackendStats {
    /// Proxy attempts sent to this backend (including hedges).
    pub attempts: AtomicU64,
    /// Attempts that failed at the transport level.
    pub failures: AtomicU64,
    /// Attempts the backend answered with `503` (shed or draining).
    pub sheds: AtomicU64,
    /// Upstream latency of attempts to this backend.
    pub latency: Histogram,
}

/// One upstream `mds-serve` backend as the gateway sees it.
#[derive(Debug)]
pub struct Backend {
    /// The backend's `host:port`.
    pub addr: String,
    /// Last readiness-probe verdict. Starts `true` (optimistic): the
    /// data path discovers a dead backend via its breaker even before
    /// the first probe lands.
    healthy: AtomicBool,
    breaker: Mutex<Breaker>,
    /// Counters for `/metrics` and `/v1/cluster`.
    pub stats: BackendStats,
}

impl Backend {
    /// A backend starting healthy with a closed breaker.
    pub fn new(addr: String, breaker: BreakerConfig, seed: u64) -> Backend {
        Backend {
            addr,
            healthy: AtomicBool::new(true),
            breaker: Mutex::new(Breaker::new(breaker, seed)),
            stats: BackendStats::default(),
        }
    }

    /// The last probe verdict.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Records a probe verdict; returns the previous one so the prober
    /// logs only actual changes.
    pub fn set_healthy(&self, healthy: bool) -> bool {
        self.healthy.swap(healthy, Ordering::SeqCst)
    }

    /// Runs `f` against this backend's breaker (poisoning is ignored:
    /// breaker state stays consistent under panic because every method
    /// completes its transition before returning).
    pub fn with_breaker<T>(&self, f: impl FnOnce(&mut Breaker) -> T) -> T {
        let mut guard = self.breaker.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// Whether new traffic should consider this backend at all: probed
    /// healthy and the breaker would let a request through.
    pub fn in_rotation(&self, now: Instant) -> bool {
        self.is_healthy() && self.with_breaker(|b| b.would_allow(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotation_requires_health_and_a_willing_breaker() {
        let b = Backend::new("127.0.0.1:1".to_string(), BreakerConfig::default(), 1);
        let now = Instant::now();
        assert!(b.in_rotation(now));
        assert!(b.set_healthy(false), "previous verdict was healthy");
        assert!(!b.in_rotation(now));
        b.set_healthy(true);
        b.with_breaker(|br| {
            for _ in 0..3 {
                br.record_failure(now);
            }
        });
        assert!(!b.in_rotation(now), "tripped breaker ejects the backend");
    }
}
