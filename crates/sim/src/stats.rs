//! Event counters, histograms, and numeric aggregation helpers.

use mds_harness::json::{Json, ToJson};
use std::fmt;

/// A named monotonically increasing event counter.
///
/// Counters are the lingua franca of the simulators: every interesting event
/// (committed instruction, mis-speculation, cache miss, …) bumps one.
///
/// # Examples
///
/// ```
/// use mds_sim::stats::Counter;
/// let mut c = Counter::new("misses");
/// c.incr();
/// c.add(2);
/// assert_eq!(c.value(), 3);
/// assert_eq!(c.name(), "misses");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: String,
    value: u64,
}

impl Counter {
    /// Creates a counter with the given display name, starting at zero.
    pub fn new(name: impl Into<String>) -> Self {
        Counter {
            name: name.into(),
            value: 0,
        }
    }

    /// Increments the counter by one.
    #[inline]
    pub fn incr(&mut self) {
        self.value += 1;
    }

    /// Adds `n` events to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Returns the counter's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Resets the count to zero, keeping the name.
    pub fn reset(&mut self) {
        self.value = 0;
    }

    /// Returns this counter's value as a fraction of `denom`, or 0.0 when
    /// `denom` is zero.
    pub fn per(&self, denom: u64) -> f64 {
        ratio(self.value, denom)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.value)
    }
}

/// Returns `num / denom` as `f64`, defining `0 / 0 = 0`.
///
/// # Examples
///
/// ```
/// assert_eq!(mds_sim::stats::ratio(1, 4), 0.25);
/// assert_eq!(mds_sim::stats::ratio(0, 0), 0.0);
/// ```
pub fn ratio(num: u64, denom: u64) -> f64 {
    if denom == 0 {
        0.0
    } else {
        num as f64 / denom as f64
    }
}

/// A percentage value with conventional formatting (two decimals).
///
/// # Examples
///
/// ```
/// use mds_sim::stats::Percent;
/// let p = Percent::of(1, 8);
/// assert_eq!(p.value(), 12.5);
/// assert_eq!(p.to_string(), "12.50");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Percent(f64);

impl Percent {
    /// Builds the percentage `100 * num / denom` (0 when `denom == 0`).
    pub fn of(num: u64, denom: u64) -> Self {
        Percent(ratio(num, denom) * 100.0)
    }

    /// Wraps an already-computed percentage value.
    pub fn from_value(v: f64) -> Self {
        Percent(v)
    }

    /// The percentage as a plain `f64` (e.g. `12.5` for 12.5 %).
    pub fn value(&self) -> f64 {
        self.0
    }
}

impl fmt::Display for Percent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// A power-of-two bucketed histogram of `u64` samples.
///
/// Bucket `i` holds samples in `[2^(i-1), 2^i)`, with bucket 0 holding the
/// value 0 and 1. Used for distributions like dependence distances and task
/// sizes where orders of magnitude matter more than exact values.
///
/// # Examples
///
/// ```
/// use mds_sim::stats::Histogram;
/// let mut h = Histogram::new("dependence distance");
/// for d in [1u64, 3, 5, 100] { h.record(d); }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.max(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    name: String,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Histogram {
            name: name.into(),
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = bucket_index(v);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of the samples (0 when empty).
    pub fn mean(&self) -> f64 {
        ratio(self.sum, self.count)
    }

    /// The histogram's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Iterates over `(bucket_upper_bound_exclusive, count)` pairs for
    /// non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_upper_bound(i), c))
    }
}

fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros()) as usize
    }
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Tracks the running maximum of a sequence of observations.
///
/// # Examples
///
/// ```
/// use mds_sim::stats::MovingMax;
/// let mut m = MovingMax::default();
/// m.observe(3);
/// m.observe(1);
/// assert_eq!(m.get(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MovingMax(u64);

impl MovingMax {
    /// Feeds one observation.
    pub fn observe(&mut self, v: u64) {
        self.0 = self.0.max(v);
    }

    /// Returns the maximum observed so far (0 when none).
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl ToJson for Counter {
    fn to_json(&self) -> Json {
        Json::object()
            .field("name", &self.name)
            .field("value", self.value)
    }
}

impl ToJson for Percent {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

impl ToJson for Histogram {
    fn to_json(&self) -> Json {
        let buckets: Vec<(u64, u64)> = self.iter().collect();
        Json::object()
            .field("name", &self.name)
            .field("count", self.count)
            .field("sum", self.sum)
            .field("max", self.max)
            .field("mean", self.mean())
            .field("buckets", buckets)
    }
}

impl ToJson for MovingMax {
    fn to_json(&self) -> Json {
        self.0.to_json()
    }
}

/// Geometric mean of a slice of positive values; returns 0.0 for an empty
/// slice and ignores non-positive entries (they would make the result
/// meaningless for speedup aggregation).
///
/// # Examples
///
/// ```
/// let g = mds_sim::stats::geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean(values: &[f64]) -> f64 {
    let logs: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .map(f64::ln)
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Percentage speedup of `new` over `old` measured in cycles:
/// `100 * (old / new - 1)`. Positive means `new` is faster.
///
/// # Examples
///
/// ```
/// let s = mds_sim::stats::speedup_percent(200, 100);
/// assert_eq!(s, 100.0);
/// ```
pub fn speedup_percent(old_cycles: u64, new_cycles: u64) -> f64 {
    if new_cycles == 0 {
        return 0.0;
    }
    (old_cycles as f64 / new_cycles as f64 - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.incr();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.per(20), 0.5);
        c.reset();
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn counter_display_includes_name_and_value() {
        let mut c = Counter::new("misses");
        c.add(7);
        assert_eq!(c.to_string(), "misses: 7");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(5, 10), 0.5);
    }

    #[test]
    fn percent_formats_two_decimals() {
        assert_eq!(Percent::of(1, 3).to_string(), "33.33");
        assert_eq!(Percent::of(0, 0).value(), 0.0);
    }

    #[test]
    fn histogram_buckets_by_power_of_two() {
        let mut h = Histogram::new("h");
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(4);
        h.record(1024);
        let buckets: Vec<(u64, u64)> = h.iter().collect();
        // 0 and 1 in bucket (<=1); 2 in (1,2]; 3 and 4 in (2,4]; 1024 in (512,1024]
        assert_eq!(buckets, vec![(1, 2), (2, 1), (4, 2), (1024, 1)]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1024);
    }

    #[test]
    fn histogram_mean_and_sum() {
        let mut h = Histogram::new("h");
        for v in [2u64, 4, 6] {
            h.record(v);
        }
        assert_eq!(h.sum(), 12);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn moving_max_tracks_max() {
        let mut m = MovingMax::default();
        assert_eq!(m.get(), 0);
        m.observe(5);
        m.observe(2);
        m.observe(9);
        assert_eq!(m.get(), 9);
    }

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        // non-positive entries ignored
        assert!((geometric_mean(&[2.0, 8.0, 0.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_percent_signs() {
        assert_eq!(speedup_percent(100, 100), 0.0);
        assert!(speedup_percent(150, 100) > 0.0);
        assert!(speedup_percent(100, 150) < 0.0);
        assert_eq!(speedup_percent(100, 0), 0.0);
    }
}
