//! Simulation bedrock for the `mds` suite.
//!
//! This crate holds the pieces every simulator and experiment harness in the
//! workspace shares: event counters and derived statistics ([`stats`]),
//! histograms ([`stats::Histogram`]), plain-text and Markdown table
//! rendering ([`table`]), and small numeric helpers such as
//! [`stats::geometric_mean`] used when aggregating speedups.
//!
//! Everything here is deterministic and allocation-light; simulators hold
//! these types by value.
//!
//! # Examples
//!
//! ```
//! use mds_sim::stats::Counter;
//! use mds_sim::table::Table;
//!
//! let mut loads = Counter::new("committed loads");
//! loads.add(3);
//! loads.incr();
//! assert_eq!(loads.value(), 4);
//!
//! let mut t = Table::new(["bench", "loads"]);
//! t.row(["compress", "4"]);
//! assert!(t.render().contains("compress"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod stats;
pub mod table;

pub use stats::{geometric_mean, Counter, Histogram, MovingMax, Percent};
pub use table::Table;
