//! Aligned plain-text and Markdown table rendering for experiment output.
//!
//! The reproduction harness prints one table per paper table/figure; this
//! module keeps that output readable and consistent.

use std::fmt;

/// A simple column-aligned table builder.
///
/// The first column is left-aligned (row labels); the remaining columns are
/// right-aligned (numbers).
///
/// # Examples
///
/// ```
/// use mds_sim::table::Table;
/// let mut t = Table::new(["bench", "WS=8", "WS=16"]);
/// t.row(["compress", "181000", "320000"]);
/// t.row(["xlisp", "59", "1500"]);
/// let text = t.render();
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header cells.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "table row has {} cells but header has {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
        self
    }

    /// The header cells.
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows added so far, in insertion order.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows added so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the table as aligned plain text (ends with a newline).
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        render_line(&mut out, &self.header, &w);
        let rule_len = w.iter().sum::<usize>() + 2 * w.len().saturating_sub(1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            render_line(&mut out, row, &w);
        }
        out
    }

    /// Renders the table as GitHub-flavored Markdown (ends with a newline).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| ");
        out.push_str(&self.header.join(" | "));
        out.push_str(" |\n|");
        for (i, _) in self.header.iter().enumerate() {
            out.push_str(if i == 0 { "---|" } else { "---:|" });
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str("| ");
            out.push_str(&row.join(" | "));
            out.push_str(" |\n");
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

fn render_line(out: &mut String, cells: &[String], widths: &[usize]) {
    for (i, cell) in cells.iter().enumerate() {
        if i > 0 {
            out.push_str("  ");
        }
        if i == 0 {
            out.push_str(&format!("{:<width$}", cell, width = widths[i]));
        } else {
            out.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
    }
    // Trim trailing padding on the last cell.
    while out.ends_with(' ') {
        out.pop();
    }
    out.push('\n');
}

/// Formats a count with thousands separators, e.g. `1234567 -> "1,234,567"`.
///
/// # Examples
///
/// ```
/// assert_eq!(mds_sim::table::fmt_count(1234567), "1,234,567");
/// assert_eq!(mds_sim::table::fmt_count(42), "42");
/// ```
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    let offset = digits.len() % 3;
    for (i, ch) in digits.chars().enumerate() {
        if i != 0 && (i + 3 - offset).is_multiple_of(3) {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// Formats a count in the paper's abbreviated style: `4.31 M`, `848 K`,
/// or the plain number below 1000.
///
/// # Examples
///
/// ```
/// assert_eq!(mds_sim::table::fmt_abbrev(4_310_000), "4.31 M");
/// assert_eq!(mds_sim::table::fmt_abbrev(84_800), "84.8 K");
/// assert_eq!(mds_sim::table::fmt_abbrev(848), "848");
/// ```
pub fn fmt_abbrev(n: u64) -> String {
    const K: f64 = 1_000.0;
    const M: f64 = 1_000_000.0;
    const G: f64 = 1_000_000_000.0;
    let v = n as f64;
    if v >= G {
        format!("{:.2} G", v / G)
    } else if v >= M {
        format!("{:.2} M", v / M)
    } else if v >= K {
        format!("{:.1} K", v / K)
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "v"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // header then rule then rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // numbers right-aligned to the same column
        let c1 = lines[2].rfind('1').unwrap();
        let c2 = lines[3].rfind('2').unwrap();
        assert_eq!(c1, c2);
    }

    #[test]
    #[should_panic(expected = "table row has")]
    fn row_length_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn markdown_has_separator_row() {
        let mut t = Table::new(["x", "y"]);
        t.row(["1", "2"]);
        let md = t.render_markdown();
        assert!(md.starts_with("| x | y |"));
        assert!(md.contains("|---|---:|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn empty_and_len() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["r"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(1234567890), "1,234,567,890");
    }

    #[test]
    fn fmt_abbrev_selects_scale() {
        assert_eq!(fmt_abbrev(0), "0");
        assert_eq!(fmt_abbrev(999), "999");
        assert_eq!(fmt_abbrev(1_000), "1.0 K");
        assert_eq!(fmt_abbrev(2_500_000), "2.50 M");
        assert_eq!(fmt_abbrev(3_000_000_000), "3.00 G");
    }
}
