//! The sliding-window dependence analyzer (tables 3, 4, and 5).

use mds_core::{Ddc, DepEdge};
use mds_emu::DynInst;
use mds_harness::hash::FxHashMap;
use mds_isa::{Addr, Pc};
use mds_sim::stats::{Histogram, Percent};

/// Configuration for a [`WindowAnalyzer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window sizes to evaluate simultaneously (paper: 8…512).
    pub window_sizes: Vec<u32>,
    /// DDC sizes to evaluate per window size (paper: 32, 128, 512).
    pub ddc_sizes: Vec<usize>,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window_sizes: vec![8, 16, 32, 64, 128, 256, 512],
            ddc_sizes: vec![32, 128, 512],
        }
    }
}

/// Per-window-size measurements.
#[derive(Debug, Clone)]
pub struct WindowStats {
    /// The window size `n` these numbers belong to.
    pub window_size: u32,
    /// Dynamic mis-speculations: loads whose producing store is fewer than
    /// `n` instructions earlier in the committed order (table 3).
    pub misspeculations: u64,
    /// Dynamic mis-speculation count per static edge.
    pub edge_counts: FxHashMap<DepEdge, u64>,
    /// `(ddc_size, hits, misses)` per configured DDC (table 5).
    pub ddcs: Vec<(usize, u64, u64)>,
}

impl WindowStats {
    /// Number of distinct static edges that mis-speculated at least once.
    pub fn static_edges(&self) -> usize {
        self.edge_counts.len()
    }

    /// The minimum number of static edges covering `fraction` (e.g.
    /// `0.999`) of all dynamic mis-speculations — the table 4 metric.
    pub fn edges_covering(&self, fraction: f64) -> usize {
        if self.misspeculations == 0 {
            return 0;
        }
        let mut counts: Vec<u64> = self.edge_counts.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let target = (self.misspeculations as f64 * fraction).ceil() as u64;
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return i + 1;
            }
        }
        counts.len()
    }

    /// DDC miss rate for the given DDC size (table 5 cell).
    pub fn ddc_miss_rate(&self, ddc_size: usize) -> Option<Percent> {
        self.ddcs
            .iter()
            .find(|(s, _, _)| *s == ddc_size)
            .map(|&(_, hits, misses)| Percent::of(misses, hits + misses))
    }
}

/// The finished analysis over a whole committed stream.
#[derive(Debug, Clone)]
pub struct WindowReport {
    per_window: Vec<WindowStats>,
    /// Committed instructions observed.
    pub instructions: u64,
    /// Committed loads observed.
    pub loads: u64,
    /// Committed stores observed.
    pub stores: u64,
    /// Distribution of store→load distances (in committed instructions)
    /// over *all* dependent loads, regardless of window size — the raw
    /// data behind the paper's observation that dependences "are spread
    /// across several instructions".
    pub dependence_distances: Histogram,
}

impl WindowReport {
    /// Reassembles a report from its parts — the inverse of reading
    /// [`WindowReport::windows`] and the public totals. Exists for wire
    /// codecs that ship reports between processes; the analyzer itself
    /// always builds reports via [`WindowAnalyzer::finish`].
    pub fn from_parts(
        per_window: Vec<WindowStats>,
        instructions: u64,
        loads: u64,
        stores: u64,
        dependence_distances: Histogram,
    ) -> WindowReport {
        WindowReport {
            per_window,
            instructions,
            loads,
            stores,
            dependence_distances,
        }
    }

    /// Stats for one window size, if it was configured.
    pub fn for_window(&self, window_size: u32) -> Option<&WindowStats> {
        self.per_window
            .iter()
            .find(|w| w.window_size == window_size)
    }

    /// All per-window stats in configuration order.
    pub fn windows(&self) -> &[WindowStats] {
        &self.per_window
    }
}

#[derive(Debug, Clone, Copy)]
struct LastStore {
    seq: u64,
    pc: Pc,
}

struct PerWindow {
    window_size: u32,
    misspecs: u64,
    edges: FxHashMap<DepEdge, u64>,
    ddcs: Vec<(usize, Ddc)>,
}

/// Implements the paper's unrealistic OOO model: every load whose
/// producing store lies within the window is counted as mis-speculated —
/// the worst case for blind speculation (§5).
///
/// Feed every committed instruction to [`WindowAnalyzer::observe`], then
/// call [`WindowAnalyzer::finish`]. All configured window sizes and DDC
/// sizes are measured in a single pass.
pub struct WindowAnalyzer {
    per_window: Vec<PerWindow>,
    // Most recent store covering each 8-byte-aligned word.
    word_stores: FxHashMap<Addr, LastStore>,
    // Most recent single-byte store per byte address.
    byte_stores: FxHashMap<Addr, LastStore>,
    instructions: u64,
    loads: u64,
    stores: u64,
    distances: Histogram,
}

impl WindowAnalyzer {
    /// Creates an analyzer for the given window/DDC size matrix.
    ///
    /// # Panics
    ///
    /// Panics if no window sizes are configured.
    pub fn new(config: WindowConfig) -> Self {
        assert!(
            !config.window_sizes.is_empty(),
            "need at least one window size"
        );
        let per_window = config
            .window_sizes
            .iter()
            .map(|&ws| PerWindow {
                window_size: ws,
                misspecs: 0,
                edges: FxHashMap::default(),
                ddcs: config
                    .ddc_sizes
                    .iter()
                    .map(|&cs| (cs, Ddc::new(cs)))
                    .collect(),
            })
            .collect();
        WindowAnalyzer {
            per_window,
            word_stores: FxHashMap::default(),
            byte_stores: FxHashMap::default(),
            instructions: 0,
            loads: 0,
            stores: 0,
            distances: Histogram::new("store->load distance"),
        }
    }

    /// Feeds one committed instruction.
    pub fn observe(&mut self, d: &DynInst) {
        self.instructions += 1;
        let Some(mem) = d.mem else { return };
        if mem.is_store {
            self.stores += 1;
            let rec = LastStore {
                seq: d.seq,
                pc: d.pc,
            };
            if mem.size == 1 {
                self.byte_stores.insert(mem.addr, rec);
            } else {
                self.word_stores.insert(mem.addr & !7, rec);
                if mem.addr & 7 != 0 {
                    self.word_stores.insert((mem.addr + 7) & !7, rec);
                }
            }
            return;
        }
        self.loads += 1;
        // Find the youngest earlier store overlapping this load.
        let mut producer: Option<LastStore> = None;
        let mut consider = |s: Option<&LastStore>| {
            if let Some(s) = s {
                if producer.is_none_or(|p| s.seq > p.seq) {
                    producer = Some(*s);
                }
            }
        };
        if mem.size == 1 {
            consider(self.byte_stores.get(&mem.addr));
            consider(self.word_stores.get(&(mem.addr & !7)));
        } else {
            consider(self.word_stores.get(&(mem.addr & !7)));
            if mem.addr & 7 != 0 {
                consider(self.word_stores.get(&((mem.addr + 7) & !7)));
            }
            // Byte stores only exist in programs that use `sb`; skip the
            // 8-probe scan entirely for the common all-word case.
            if !self.byte_stores.is_empty() {
                for b in 0..8 {
                    consider(self.byte_stores.get(&(mem.addr + b)));
                }
            }
        }
        let Some(st) = producer else { return };
        let distance = d.seq - st.seq;
        self.distances.record(distance);
        let edge = DepEdge {
            load_pc: d.pc,
            store_pc: st.pc,
        };
        for w in &mut self.per_window {
            if distance < w.window_size as u64 {
                w.misspecs += 1;
                *w.edges.entry(edge).or_insert(0) += 1;
                for (_, ddc) in &mut w.ddcs {
                    ddc.observe(edge);
                }
            }
        }
    }

    /// Finishes the analysis.
    pub fn finish(self) -> WindowReport {
        WindowReport {
            per_window: self
                .per_window
                .into_iter()
                .map(|w| WindowStats {
                    window_size: w.window_size,
                    misspeculations: w.misspecs,
                    edge_counts: w.edges,
                    ddcs: w
                        .ddcs
                        .into_iter()
                        .map(|(cs, d)| (cs, d.hits(), d.misses()))
                        .collect(),
                })
                .collect(),
            instructions: self.instructions,
            loads: self.loads,
            stores: self.stores,
            dependence_distances: self.distances,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::MemAccess;
    use mds_isa::Instruction;

    fn dyn_mem(seq: u64, pc: Pc, addr: Addr, size: u8, is_store: bool) -> DynInst {
        DynInst {
            seq,
            pc,
            inst: Instruction::NOP,
            mem: Some(MemAccess {
                addr,
                size,
                is_store,
            }),
            branch: None,
            new_task: false,
        }
    }

    fn dyn_plain(seq: u64) -> DynInst {
        DynInst {
            seq,
            pc: 0,
            inst: Instruction::NOP,
            mem: None,
            branch: None,
            new_task: false,
        }
    }

    fn analyzer(ws: &[u32]) -> WindowAnalyzer {
        WindowAnalyzer::new(WindowConfig {
            window_sizes: ws.to_vec(),
            ddc_sizes: vec![2],
        })
    }

    #[test]
    fn dependence_within_window_counts() {
        let mut a = analyzer(&[8]);
        a.observe(&dyn_mem(0, 1, 0x100, 8, true));
        a.observe(&dyn_mem(1, 2, 0x100, 8, false));
        let r = a.finish();
        assert_eq!(r.for_window(8).unwrap().misspeculations, 1);
        assert_eq!(r.loads, 1);
        assert_eq!(r.stores, 1);
    }

    #[test]
    fn dependence_outside_window_does_not_count() {
        let mut a = analyzer(&[4, 64]);
        a.observe(&dyn_mem(0, 1, 0x100, 8, true));
        for s in 1..10 {
            a.observe(&dyn_plain(s));
        }
        a.observe(&dyn_mem(10, 2, 0x100, 8, false)); // distance 10
        let r = a.finish();
        assert_eq!(r.for_window(4).unwrap().misspeculations, 0);
        assert_eq!(r.for_window(64).unwrap().misspeculations, 1);
    }

    #[test]
    fn youngest_store_wins() {
        let mut a = analyzer(&[64]);
        a.observe(&dyn_mem(0, 1, 0x100, 8, true));
        a.observe(&dyn_mem(1, 3, 0x100, 8, true)); // younger store, pc 3
        a.observe(&dyn_mem(2, 9, 0x100, 8, false));
        let r = a.finish();
        let w = r.for_window(64).unwrap();
        assert_eq!(w.misspeculations, 1);
        let edge = DepEdge {
            load_pc: 9,
            store_pc: 3,
        };
        assert_eq!(w.edge_counts.get(&edge), Some(&1));
    }

    #[test]
    fn byte_and_word_overlap_detected() {
        let mut a = analyzer(&[64]);
        // Byte store into the middle of a word; word load sees it.
        a.observe(&dyn_mem(0, 1, 0x103, 1, true));
        a.observe(&dyn_mem(1, 2, 0x100, 8, false));
        // Word store; byte load within it sees it.
        a.observe(&dyn_mem(2, 3, 0x200, 8, true));
        a.observe(&dyn_mem(3, 4, 0x205, 1, false));
        let r = a.finish();
        assert_eq!(r.for_window(64).unwrap().misspeculations, 2);
    }

    #[test]
    fn disjoint_addresses_no_dependence() {
        let mut a = analyzer(&[64]);
        a.observe(&dyn_mem(0, 1, 0x100, 8, true));
        a.observe(&dyn_mem(1, 2, 0x108, 8, false));
        a.observe(&dyn_mem(2, 3, 0x0f8, 8, false));
        let r = a.finish();
        assert_eq!(r.for_window(64).unwrap().misspeculations, 0);
    }

    #[test]
    fn misspeculations_monotone_in_window_size() {
        let mut a = analyzer(&[8, 32, 128]);
        // Dependences at distances 4, 20, 100.
        let mut seq = 0u64;
        let mut emit_dep = |a: &mut WindowAnalyzer, gap: u64, addr: Addr| {
            a.observe(&dyn_mem(seq, 1, addr, 8, true));
            for s in 1..gap {
                a.observe(&dyn_plain(seq + s));
            }
            a.observe(&dyn_mem(seq + gap, 2, addr, 8, false));
            seq += gap + 1;
        };
        emit_dep(&mut a, 4, 0x100);
        emit_dep(&mut a, 20, 0x200);
        emit_dep(&mut a, 100, 0x300);
        let r = a.finish();
        let m8 = r.for_window(8).unwrap().misspeculations;
        let m32 = r.for_window(32).unwrap().misspeculations;
        let m128 = r.for_window(128).unwrap().misspeculations;
        assert_eq!((m8, m32, m128), (1, 2, 3));
    }

    #[test]
    fn edges_covering_selects_hot_subset() {
        let mut s = WindowStats {
            window_size: 8,
            misspeculations: 1000,
            edge_counts: FxHashMap::default(),
            ddcs: vec![],
        };
        s.edge_counts.insert(DepEdge::new(1, 2), 990);
        s.edge_counts.insert(DepEdge::new(3, 4), 9);
        s.edge_counts.insert(DepEdge::new(5, 6), 1);
        assert_eq!(s.edges_covering(0.99), 1);
        assert_eq!(s.edges_covering(0.999), 2);
        assert_eq!(s.edges_covering(1.0), 3);
        assert_eq!(s.static_edges(), 3);
    }

    #[test]
    fn edges_covering_empty_is_zero() {
        let s = WindowStats {
            window_size: 8,
            misspeculations: 0,
            edge_counts: FxHashMap::default(),
            ddcs: vec![],
        };
        assert_eq!(s.edges_covering(0.999), 0);
    }

    #[test]
    fn ddc_miss_rate_reported_per_size() {
        let mut a = analyzer(&[64]);
        // Same edge repeatedly: first observation misses, rest hit.
        for i in 0..10 {
            a.observe(&dyn_mem(i * 2, 1, 0x100, 8, true));
            a.observe(&dyn_mem(i * 2 + 1, 2, 0x100, 8, false));
        }
        let r = a.finish();
        let rate = r.for_window(64).unwrap().ddc_miss_rate(2).unwrap();
        assert_eq!(rate.value(), 10.0);
        assert!(r.for_window(64).unwrap().ddc_miss_rate(999).is_none());
    }

    #[test]
    fn distance_histogram_records_every_dependent_load() {
        let mut a = analyzer(&[8]);
        a.observe(&dyn_mem(0, 1, 0x100, 8, true));
        a.observe(&dyn_mem(1, 2, 0x100, 8, false)); // distance 1
        for s in 2..12 {
            a.observe(&dyn_plain(s));
        }
        a.observe(&dyn_mem(12, 3, 0x100, 8, false)); // distance 12
        let r = a.finish();
        assert_eq!(r.dependence_distances.count(), 2);
        assert_eq!(r.dependence_distances.max(), 12);
        // The 12-away dependence is invisible at WS 8 but still recorded
        // in the distance distribution.
        assert_eq!(r.for_window(8).unwrap().misspeculations, 1);
    }

    #[test]
    #[should_panic(expected = "at least one window size")]
    fn empty_config_panics() {
        let _ = WindowAnalyzer::new(WindowConfig {
            window_sizes: vec![],
            ddc_sizes: vec![],
        });
    }
}
