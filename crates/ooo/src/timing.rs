//! A standalone superscalar OOO timing model with pluggable dependence
//! speculation policies.
//!
//! The paper argues (§6) that dependence prediction and synchronization
//! apply beyond Multiscalar: "in a superscalar environment we may use a
//! small associative pool of counters; load and store instructions can
//! then be numbered based on their PC as they are issued" (§3, footnote).
//! This module is that environment: a single continuous instruction window
//! of configurable size with trace-driven dataflow timing, where dynamic
//! instances are numbered per static PC and the [`mds_core::SyncUnit`]
//! synchronizes predicted-dependent pairs.
//!
//! The model is deliberately lean — fixed operation latencies, one memory
//! port, a dispatch-width frontend, squash-and-replay on violation — it
//! exists to *compare policies on one more processor shape* (the paper's
//! table/figure reproductions use the full Multiscalar model in
//! `mds-multiscalar`).

use mds_core::{DepEdge, LoadDecision, Policy, PredictionBreakdown, SyncUnit, SyncUnitConfig};
use mds_emu::DynInst;
use mds_harness::hash::FxHashMap;
use mds_isa::{Addr, FuClass, Pc};
use std::collections::VecDeque;

/// Configuration of the superscalar model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Instruction window (ROB) size.
    pub window: usize,
    /// Instructions dispatched per cycle.
    pub dispatch_width: u32,
    /// Memory operations started per cycle.
    pub mem_ports: u32,
    /// Load-to-use latency (cache hit assumed).
    pub mem_latency: u64,
    /// Cycles lost re-filling the pipeline after a violation squash.
    pub squash_penalty: u64,
    /// The speculation policy.
    pub policy: Policy,
    /// MDPT entries for predictor-driven policies.
    pub mdpt_entries: usize,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            window: 128,
            dispatch_width: 4,
            mem_ports: 2,
            mem_latency: 2,
            squash_penalty: 8,
            policy: Policy::Always,
            mdpt_entries: 64,
        }
    }
}

/// The result of a superscalar timing run.
#[derive(Debug, Clone, Default)]
pub struct OooResult {
    /// Total cycles.
    pub cycles: u64,
    /// Committed instructions.
    pub instructions: u64,
    /// Committed loads.
    pub loads: u64,
    /// Memory dependence violations (squashes).
    pub misspeculations: u64,
    /// Loads delayed by the synchronization machinery.
    pub synchronized_loads: u64,
    /// Predicted-vs-actual accounting.
    pub breakdown: PredictionBreakdown,
}

impl OooResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct StoreRecord {
    seq: u64,
    pc: Pc,
    instance: u64,
    complete: u64,
}

/// The superscalar OOO timing simulator. Feed committed instructions in
/// order via [`OooSim::observe`], then call [`OooSim::finish`].
///
/// # Examples
///
/// ```
/// use mds_isa::{ProgramBuilder, Reg};
/// use mds_emu::Emulator;
/// use mds_ooo::{OooConfig, OooSim};
/// use mds_core::Policy;
///
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::T0, 50);
/// b.label("loop");
/// b.addi(Reg::T0, Reg::T0, -1);
/// b.bne(Reg::T0, Reg::ZERO, "loop");
/// b.halt();
/// let p = b.build()?;
///
/// let mut sim = OooSim::new(OooConfig { policy: Policy::Always, ..Default::default() });
/// Emulator::new(&p).run_with(|d| sim.observe(d))?;
/// let r = sim.finish();
/// assert!(r.ipc() > 0.5);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct OooSim {
    config: OooConfig,
    unit: SyncUnit,
    // Dataflow availability per architectural register (dense index).
    reg_avail: [u64; 64],
    // Completion times of in-flight window slots, oldest first.
    retire_queue: VecDeque<u64>,
    // Dispatch clock.
    cur_cycle: u64,
    dispatched_this_cycle: u32,
    // Earliest-free time per memory port (issue ports are independent:
    // a late-resolving store must not serialize unrelated early loads).
    mem_port_free: Vec<u64>,
    // Squash barrier: no instruction may dispatch before this.
    restart_after: u64,
    // Youngest store per word / byte address.
    word_stores: FxHashMap<Addr, StoreRecord>,
    byte_stores: FxHashMap<Addr, StoreRecord>,
    // Per-PC dynamic instance numbering (the superscalar instance scheme).
    instance_no: FxHashMap<Pc, u64>,
    // Running max of store address-ready / completion times.
    all_stores_addr_ready: u64,
    all_stores_complete: u64,
    last_complete: u64,
    result: OooResult,
    ldid_counter: u32,
}

impl OooSim {
    /// Creates the simulator.
    pub fn new(config: OooConfig) -> Self {
        OooSim {
            unit: SyncUnit::new(SyncUnitConfig {
                stages: 8,
                mdpt: mds_core::MdptConfig {
                    capacity: config.mdpt_entries,
                    ..Default::default()
                },
                esync: config.policy == Policy::Esync,
                ..Default::default()
            }),
            config,
            reg_avail: [0; 64],
            retire_queue: VecDeque::with_capacity(config.window),
            cur_cycle: 0,
            dispatched_this_cycle: 0,
            mem_port_free: vec![0; config.mem_ports as usize],
            restart_after: 0,
            word_stores: FxHashMap::default(),
            byte_stores: FxHashMap::default(),
            instance_no: FxHashMap::default(),
            all_stores_addr_ready: 0,
            all_stores_complete: 0,
            last_complete: 0,
            result: OooResult::default(),
            ldid_counter: 0,
        }
    }

    fn op_latency(&self, d: &DynInst) -> u64 {
        match d.inst.op.fu_class() {
            FuClass::SimpleInt | FuClass::Branch => 1,
            FuClass::ComplexInt => {
                if d.inst.op == mds_isa::Opcode::Mul {
                    4
                } else {
                    12
                }
            }
            FuClass::Fp => 4,
            FuClass::Mem => self.config.mem_latency,
        }
    }

    fn dispatch_slot(&mut self) -> u64 {
        // Window occupancy: wait for the oldest slot to retire.
        let window_free = if self.retire_queue.len() >= self.config.window {
            self.retire_queue.pop_front().expect("non-empty")
        } else {
            0
        };
        let mut t = self.cur_cycle.max(window_free).max(self.restart_after);
        if t > self.cur_cycle {
            self.cur_cycle = t;
            self.dispatched_this_cycle = 0;
        }
        if self.dispatched_this_cycle >= self.config.dispatch_width {
            self.cur_cycle += 1;
            self.dispatched_this_cycle = 0;
            t = self.cur_cycle;
        }
        self.dispatched_this_cycle += 1;
        t
    }

    fn mem_port_slot(&mut self, ready: u64) -> u64 {
        let idx = self
            .mem_port_free
            .iter()
            .enumerate()
            .min_by_key(|(_, &f)| f)
            .map(|(i, _)| i)
            .expect("mem_ports > 0");
        let start = ready.max(self.mem_port_free[idx]);
        self.mem_port_free[idx] = start + 1;
        start
    }

    fn producer_of(&self, addr: Addr, size: u8) -> Option<StoreRecord> {
        let mut best: Option<StoreRecord> = None;
        let mut consider = |s: Option<&StoreRecord>| {
            if let Some(s) = s {
                if best.is_none_or(|b| s.seq > b.seq) {
                    best = Some(*s);
                }
            }
        };
        if size == 1 {
            consider(self.byte_stores.get(&addr));
            consider(self.word_stores.get(&(addr & !7)));
        } else {
            consider(self.word_stores.get(&(addr & !7)));
            if !self.byte_stores.is_empty() {
                for b in 0..8 {
                    consider(self.byte_stores.get(&(addr + b)));
                }
            }
        }
        best
    }

    /// Feeds the next committed instruction.
    pub fn observe(&mut self, d: &DynInst) {
        self.result.instructions += 1;
        let dispatch = self.dispatch_slot();
        // Operand readiness from register dataflow.
        let mut ready = dispatch;
        for r in d.reads().into_iter().flatten() {
            ready = ready.max(self.reg_avail[r.dense_index()]);
        }
        let latency = self.op_latency(d);

        let complete = if let Some(mem) = d.mem {
            let instance = {
                let n = self.instance_no.entry(d.pc).or_insert(0);
                *n += 1;
                *n
            };
            if mem.is_store {
                let start = self.mem_port_slot(ready);
                let complete = start + latency;
                let rec = StoreRecord {
                    seq: d.seq,
                    pc: d.pc,
                    instance,
                    complete,
                };
                if mem.size == 1 {
                    self.byte_stores.insert(mem.addr, rec);
                } else {
                    self.word_stores.insert(mem.addr & !7, rec);
                }
                self.all_stores_addr_ready = self.all_stores_addr_ready.max(ready);
                self.all_stores_complete = self.all_stores_complete.max(complete);
                if self.config.policy.uses_predictor() {
                    self.unit.on_store_issue(d.pc, instance, d.seq as u32);
                }
                complete
            } else {
                self.result.loads += 1;
                self.observe_load(d, mem, instance, ready, latency)
            }
        } else {
            ready + latency
        };

        self.reg_avail_update(d, complete);
        self.retire_queue.push_back(complete);
        self.last_complete = self.last_complete.max(complete);
    }

    fn observe_load(
        &mut self,
        d: &DynInst,
        mem: mds_emu::MemAccess,
        instance: u64,
        mut ready: u64,
        latency: u64,
    ) -> u64 {
        let producer = self.producer_of(mem.addr, mem.size);
        let in_window = producer.is_some_and(|p| d.seq - p.seq < self.config.window as u64);
        let actual_dependence = in_window && producer.is_some_and(|p| p.complete > ready);

        match self.config.policy {
            Policy::Never => {
                ready = ready.max(self.all_stores_addr_ready);
                if let Some(p) = producer {
                    ready = ready.max(p.complete);
                }
            }
            Policy::Wait => {
                if in_window {
                    ready = ready.max(self.all_stores_addr_ready);
                    if let Some(p) = producer {
                        ready = ready.max(p.complete);
                    }
                }
            }
            Policy::PSync => {
                if let Some(p) = producer.filter(|_| in_window) {
                    ready = ready.max(p.complete);
                }
            }
            Policy::Always => {
                if actual_dependence {
                    let p = producer.expect("dependence implies producer");
                    self.violate(d, &p);
                    ready = ready.max(p.complete);
                }
            }
            Policy::Sync | Policy::Esync => {
                self.ldid_counter = self.ldid_counter.wrapping_add(1);
                let ldid = self.ldid_counter;
                // Note: because this model processes the committed stream
                // in program order, a producing store has always *visited*
                // the MDST before its load even when it completes later in
                // time — so `Proceed` and `Wait` both mean "synchronize
                // with the predicted store"; the timing wait below uses the
                // store's completion time either way.
                let decision = self.unit.on_load_ready(d.pc, instance, ldid, None);
                let predicted = decision != LoadDecision::NotPredicted;
                self.result.breakdown.record(predicted, actual_dependence);
                if predicted {
                    self.result.synchronized_loads += 1;
                    let predicted_right = producer.is_some_and(|p| {
                        self.unit.mdpt().iter().any(|e| {
                            e.edge
                                == DepEdge {
                                    load_pc: d.pc,
                                    store_pc: p.pc,
                                }
                        })
                    });
                    if predicted_right && in_window {
                        // Successful synchronization: wake at the store's
                        // completion, no squash.
                        let p = producer.expect("checked");
                        ready = ready.max(p.complete);
                        self.unit.release_load(ldid);
                        self.unit.train(
                            DepEdge {
                                load_pc: d.pc,
                                store_pc: p.pc,
                            },
                            actual_dependence,
                        );
                    } else {
                        // False dependence prediction: the load stalls
                        // until the deadlock-avoidance release (all prior
                        // store addresses known), and the predictions that
                        // held it are weakened.
                        ready = ready.max(self.all_stores_addr_ready);
                        for e in self.unit.release_load(ldid) {
                            self.unit.train(e, false);
                        }
                        if actual_dependence {
                            // A dependence on an *unpredicted* store still
                            // violates if the store completes after the
                            // (delayed) load issues.
                            let p = producer.expect("dependence implies producer");
                            if p.complete > ready {
                                self.violate(d, &p);
                            }
                            ready = ready.max(p.complete);
                        }
                    }
                } else if actual_dependence {
                    let p = producer.expect("dependence implies producer");
                    self.violate(d, &p);
                    ready = ready.max(p.complete);
                }
            }
        }
        let start = self.mem_port_slot(ready);
        start + latency
    }

    fn violate(&mut self, d: &DynInst, p: &StoreRecord) {
        self.result.misspeculations += 1;
        self.restart_after = self
            .restart_after
            .max(p.complete + self.config.squash_penalty);
        if self.config.policy.uses_predictor() {
            let load_instance = self.instance_no.get(&d.pc).copied().unwrap_or(1);
            let dist = load_instance.saturating_sub(p.instance).max(1) as u32;
            self.unit.record_misspeculation(
                DepEdge {
                    load_pc: d.pc,
                    store_pc: p.pc,
                },
                dist,
                None,
            );
        }
    }

    fn reg_avail_update(&mut self, d: &DynInst, complete: u64) {
        if let Some(w) = d.inst.writes() {
            self.reg_avail[w.dense_index()] = complete;
        }
    }

    /// Finishes the run and returns the result.
    pub fn finish(mut self) -> OooResult {
        self.result.cycles = self.last_complete.max(self.cur_cycle) + 1;
        self.result
    }
}

/// Replays one committed stream under several configurations in a single
/// trace walk, returning results in input order.
///
/// Each simulator is independent; the fusion saves the repeated record
/// iteration (and its cache traffic) when a grid cell evaluates many
/// policies over the same workload. Results are identical to running
/// each configuration through [`OooSim::observe`] separately.
pub fn run_fused(records: &[DynInst], configs: &[OooConfig]) -> Vec<OooResult> {
    let mut sims: Vec<OooSim> = configs.iter().map(|&c| OooSim::new(c)).collect();
    for d in records {
        for sim in &mut sims {
            sim.observe(d);
        }
    }
    sims.into_iter().map(OooSim::finish).collect()
}

// Forward `reads` from the record for operand collection.
trait Reads {
    fn reads(&self) -> [Option<mds_isa::RegRef>; 2];
}

impl Reads for DynInst {
    fn reads(&self) -> [Option<mds_isa::RegRef>; 2] {
        self.inst.reads()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_emu::Emulator;
    use mds_isa::{Program, ProgramBuilder, Reg};

    /// A loop whose loads are independent of its stores, but whose store
    /// addresses resolve slowly (through a divide) — exactly the situation
    /// where refusing to speculate (NEVER) stalls every load behind
    /// unrelated stores while blind speculation sails through.
    fn independent_loop(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("src", 4096);
        b.alloc("dst", 4096);
        b.la(Reg::S0, "src");
        b.la(Reg::S1, "dst");
        b.li(Reg::T0, iters);
        b.li(Reg::T6, 1);
        b.mv(Reg::T4, Reg::S1);
        b.label("loop");
        // The store's address was computed (slowly) from the previous
        // iteration's load. Under NEVER, the *next* load must wait for it.
        b.sd(Reg::T0, Reg::T4, 0);
        b.ld(Reg::T5, Reg::S0, 0); // load from a disjoint array
        b.div(Reg::T2, Reg::T5, Reg::T6); // 12-cycle address computation
        b.andi(Reg::T2, Reg::T2, 0xff8);
        b.add(Reg::T4, Reg::S1, Reg::T2);
        b.addi(Reg::S0, Reg::S0, 8);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    /// A loop with a tight store->load recurrence through one cell.
    fn recurrence_loop(iters: i32) -> Program {
        let mut b = ProgramBuilder::new();
        b.alloc("cell", 1);
        b.la(Reg::S0, "cell");
        b.li(Reg::T0, iters);
        b.label("loop");
        b.ld(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T1, Reg::T1, 1);
        b.sd(Reg::T1, Reg::S0, 0);
        b.addi(Reg::T0, Reg::T0, -1);
        b.bne(Reg::T0, Reg::ZERO, "loop");
        b.halt();
        b.build().unwrap()
    }

    fn run(p: &Program, policy: Policy) -> OooResult {
        let mut sim = OooSim::new(OooConfig {
            policy,
            ..Default::default()
        });
        Emulator::new(p).run_with(|d| sim.observe(d)).unwrap();
        sim.finish()
    }

    #[test]
    fn always_beats_never_on_independent_work() {
        let p = independent_loop(500);
        let never = run(&p, Policy::Never);
        let always = run(&p, Policy::Always);
        assert!(
            always.cycles < never.cycles,
            "ALWAYS {} should beat NEVER {}",
            always.cycles,
            never.cycles
        );
        assert_eq!(always.misspeculations, 0);
    }

    #[test]
    fn blind_speculation_squashes_on_recurrences() {
        let p = recurrence_loop(500);
        let always = run(&p, Policy::Always);
        assert!(
            always.misspeculations > 100,
            "got {}",
            always.misspeculations
        );
    }

    #[test]
    fn psync_never_squashes_and_is_no_slower_than_blind() {
        let p = recurrence_loop(500);
        let always = run(&p, Policy::Always);
        let psync = run(&p, Policy::PSync);
        assert_eq!(psync.misspeculations, 0);
        assert!(
            psync.cycles <= always.cycles,
            "PSYNC {} vs ALWAYS {}",
            psync.cycles,
            always.cycles
        );
    }

    #[test]
    fn sync_predictor_eliminates_most_squashes() {
        let p = recurrence_loop(1000);
        let always = run(&p, Policy::Always);
        let sync = run(&p, Policy::Sync);
        assert!(
            sync.misspeculations * 10 <= always.misspeculations,
            "SYNC {} vs ALWAYS {}",
            sync.misspeculations,
            always.misspeculations
        );
        assert!(sync.synchronized_loads > 0);
        assert!(sync.cycles <= always.cycles);
    }

    #[test]
    fn instructions_counted_identically_across_policies() {
        let p = recurrence_loop(100);
        let counts: Vec<u64> = Policy::ALL
            .iter()
            .map(|&pol| run(&p, pol).instructions)
            .collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn breakdown_only_populated_for_predictor_policies() {
        let p = recurrence_loop(100);
        assert_eq!(run(&p, Policy::Always).breakdown.total(), 0);
        assert!(run(&p, Policy::Sync).breakdown.total() > 0);
    }

    #[test]
    fn ipc_is_positive_and_bounded_by_width() {
        let p = independent_loop(200);
        let r = run(&p, Policy::Always);
        assert!(r.ipc() > 0.0);
        assert!(r.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn fused_walk_matches_independent_runs() {
        let p = recurrence_loop(150);
        let records = Emulator::new(&p).run().unwrap();
        let configs: Vec<OooConfig> = Policy::ALL
            .into_iter()
            .map(|policy| OooConfig {
                policy,
                ..Default::default()
            })
            .collect();
        let fused = run_fused(&records, &configs);
        for (config, got) in configs.iter().zip(&fused) {
            let mut sim = OooSim::new(*config);
            for d in &records {
                sim.observe(d);
            }
            let expect = sim.finish();
            assert_eq!(got.cycles, expect.cycles, "{}", config.policy);
            assert_eq!(got.instructions, expect.instructions);
            assert_eq!(got.loads, expect.loads);
            assert_eq!(got.misspeculations, expect.misspeculations);
            assert_eq!(got.synchronized_loads, expect.synchronized_loads);
            assert_eq!(got.breakdown, expect.breakdown);
        }
    }
}
