//! The paper's "unrealistic OOO" model and a standalone superscalar
//! timing model.
//!
//! §5 of the paper introduces an idealized out-of-order execution model to
//! show that the dynamic behaviour of memory dependences is not an
//! artifact of the Multiscalar organization: *"a processor that is capable
//! of establishing a perfect, continuous window of a given size. Under
//! this model and for a window size of n, a load is always mis-speculated
//! if a preceding store, on which it is data dependent, appears within
//! less than n instructions apart in the sequential execution order."*
//!
//! [`WindowAnalyzer`] implements exactly that over a committed instruction
//! stream, for many window sizes at once, and feeds the paper's
//! measurements:
//!
//! - table 3 — mis-speculation counts per window size,
//! - table 4 — how many static edges cover 99.9 % of mis-speculations,
//! - table 5 — DDC miss rates per window size and DDC size.
//!
//! [`timing`] adds a small superscalar timing model with the same
//! speculation policies as the Multiscalar simulator — the paper's
//! "other processing models" direction (§6) — used by the ablation
//! benches.
//!
//! # Examples
//!
//! ```
//! use mds_isa::{ProgramBuilder, Reg};
//! use mds_emu::Emulator;
//! use mds_ooo::{WindowAnalyzer, WindowConfig};
//!
//! // A loop with a tight store->load recurrence through memory.
//! let mut b = ProgramBuilder::new();
//! b.alloc("cell", 1);
//! b.la(Reg::S0, "cell");
//! b.li(Reg::T0, 100);
//! b.label("loop");
//! b.ld(Reg::T1, Reg::S0, 0);
//! b.addi(Reg::T1, Reg::T1, 1);
//! b.sd(Reg::T1, Reg::S0, 0);
//! b.addi(Reg::T0, Reg::T0, -1);
//! b.bne(Reg::T0, Reg::ZERO, "loop");
//! b.halt();
//! let program = b.build()?;
//!
//! let mut analyzer = WindowAnalyzer::new(WindowConfig::default());
//! Emulator::new(&program).run_with(|d| analyzer.observe(d))?;
//! let report = analyzer.finish();
//! // The recurrence is 5 instructions apart: visible in every window >= 8.
//! assert!(report.for_window(8).unwrap().misspeculations > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timing;
pub mod window;

pub use timing::{run_fused, OooConfig, OooResult, OooSim};
pub use window::{WindowAnalyzer, WindowConfig, WindowReport, WindowStats};
