//! A set-associative cache model with LRU replacement.

use mds_harness::json::{Json, ToJson};

type Addr = u64;

/// Geometry of a [`Cache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (1 = direct mapped).
    pub ways: usize,
    /// Line size in bytes (power of two).
    pub block_bytes: usize,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (non-power-of-two block, or
    /// size not divisible by `ways * block_bytes`).
    pub fn sets(&self) -> usize {
        assert!(
            self.block_bytes.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(self.ways > 0, "associativity must be positive");
        let per_way = self.size_bytes / self.ways;
        assert!(
            per_way.is_multiple_of(self.block_bytes) && per_way > 0,
            "cache size must be divisible by ways * block"
        );
        let sets = per_way / self.block_bytes;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        sets
    }
}

impl ToJson for CacheConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("size_bytes", self.size_bytes)
            .field("ways", self.ways)
            .field("block_bytes", self.block_bytes)
    }
}

/// Hit/miss counters for a cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (line then allocated).
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }
}

impl ToJson for CacheStats {
    fn to_json(&self) -> Json {
        Json::object()
            .field("hits", self.hits)
            .field("misses", self.misses)
            .field("miss_rate", self.miss_rate())
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: Addr,
    valid: bool,
    last_use: u64,
}

/// A behavioral set-associative cache: tags and LRU state only (data lives
/// in the functional emulator). Misses allocate on both reads and writes.
///
/// Latency is the caller's concern — see [`crate::BankedCache`] for the
/// timed wrapper.
///
/// # Examples
///
/// ```
/// use mds_mem::{Cache, CacheConfig};
/// // The paper's data bank: 8 KiB direct-mapped, 64-byte blocks.
/// let mut bank = Cache::new(CacheConfig { size_bytes: 8 * 1024, ways: 1, block_bytes: 64 });
/// bank.access(0, true);
/// assert_eq!(bank.stats().misses, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    config: CacheConfig,
    /// All lines, flattened: set `s` occupies `lines[s*ways .. (s+1)*ways]`.
    lines: Vec<Line>,
    ways: usize,
    set_mask: Addr,
    set_shift: u32,
    block_shift: u32,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on an inconsistent [`CacheConfig`] (see [`CacheConfig::sets`]).
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        Cache {
            config,
            lines: vec![
                Line {
                    tag: 0,
                    valid: false,
                    last_use: 0
                };
                sets * config.ways
            ],
            ways: config.ways,
            set_mask: (sets - 1) as Addr,
            set_shift: sets.trailing_zeros(),
            block_shift: config.block_bytes.trailing_zeros(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated hit/miss counts.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Accesses `addr`; returns `true` on a hit. A miss allocates the line
    /// (evicting LRU). `is_write` is accepted for symmetry/statistics; the
    /// model is write-allocate and tag behavior is identical.
    pub fn access(&mut self, addr: Addr, is_write: bool) -> bool {
        let _ = is_write;
        self.tick += 1;
        let block = addr >> self.block_shift;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        if self.ways == 1 {
            // Direct-mapped fast path: one candidate line, no LRU search.
            // Hot in the simulators (the paper's data banks are 1-way).
            let line = &mut self.lines[set_idx];
            if line.valid && line.tag == tag {
                line.last_use = self.tick;
                self.stats.hits += 1;
                return true;
            }
            self.stats.misses += 1;
            *line = Line {
                tag,
                valid: true,
                last_use: self.tick,
            };
            return false;
        }
        let set = &mut self.lines[set_idx * self.ways..][..self.ways];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = self.tick;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.last_use } else { 0 })
            .expect("ways > 0");
        victim.tag = tag;
        victim.valid = true;
        victim.last_use = self.tick;
        false
    }

    /// Probes without modifying state; returns `true` if `addr` is present.
    pub fn probe(&self, addr: Addr) -> bool {
        let block = addr >> self.block_shift;
        let set_idx = (block & self.set_mask) as usize;
        let tag = block >> self.set_shift;
        self.lines[set_idx * self.ways..][..self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything (e.g. between independent simulations).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mds_harness::prelude::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 16-byte blocks = 64 bytes.
        Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 2,
            block_bytes: 16,
        })
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(15, false)); // same block
        assert!(!c.access(16, false)); // next block, other set
        assert_eq!(c.stats(), CacheStats { hits: 2, misses: 2 });
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Set 0 holds blocks whose (block % 2 == 0): addresses 0, 32, 64...
        c.access(0, false); // A
        c.access(32, false); // B
        c.access(0, false); // touch A; B is LRU
        c.access(64, false); // evicts B
        assert!(c.probe(0));
        assert!(!c.probe(32));
        assert!(c.probe(64));
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 32,
            ways: 1,
            block_bytes: 16,
        });
        assert!(!c.access(0, false));
        assert!(!c.access(32, false)); // same set, evicts
        assert!(!c.access(0, false)); // conflict miss
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = tiny();
        c.access(0, true);
        c.flush();
        assert!(!c.probe(0));
        assert!(!c.access(0, false));
    }

    #[test]
    fn miss_rate_computation() {
        let mut c = tiny();
        c.access(0, false);
        c.access(0, false);
        c.access(0, false);
        c.access(16, false);
        assert_eq!(c.stats().accesses(), 4);
        assert_eq!(c.stats().miss_rate(), 0.5);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn paper_bank_geometry_is_valid() {
        let c = CacheConfig {
            size_bytes: 8 * 1024,
            ways: 1,
            block_bytes: 64,
        };
        assert_eq!(c.sets(), 128);
        let i = CacheConfig {
            size_bytes: 32 * 1024,
            ways: 2,
            block_bytes: 64,
        };
        assert_eq!(i.sets(), 256);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_block_size_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 64,
            ways: 1,
            block_bytes: 24,
        });
    }

    properties! {
        /// A cache larger than the touched footprint never misses twice on
        /// the same block.
        #[test]
        fn no_capacity_misses_when_footprint_fits(
            addrs in vec_of(0u64..1024, 1..200)
        ) {
            // 4 KiB, fully covers 1 KiB of addresses at 16-byte blocks.
            let mut c = Cache::new(CacheConfig { size_bytes: 4096, ways: 4, block_bytes: 16 });
            let mut seen = std::collections::HashSet::new();
            for a in addrs {
                let hit = c.access(a, false);
                let block = a >> 4;
                prop_assert_eq!(hit, !seen.insert(block));
            }
        }

        /// Probe agrees with the most recent access outcome.
        #[test]
        fn probe_after_access_is_true(a in any::<u64>()) {
            let mut c = tiny();
            c.access(a, false);
            prop_assert!(c.probe(a));
        }
    }
}
